//! Hybrid SRAM/NVM LLC demo — the adaptive-placement direction the paper
//! catalogues in its related work (references [7], [8]).
//!
//! ```text
//! cargo run --release --example hybrid_cache [workload]
//! ```
//!
//! Races a 4-SRAM/12-NVM-way hybrid against the pure configurations and
//! sweeps the SRAM way count.

use nvm_llc::prelude::*;
use nvm_llc::sim::simulate_hybrid;

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "ft".to_owned());
    let Some(workload) = workloads::by_name(&target) else {
        eprintln!("unknown workload `{target}`");
        std::process::exit(2);
    };
    let trace = workload.generate(2019, workload.scaled_accesses(120_000));

    let models = reference::fixed_capacity();
    let sram = reference::by_name(&models, "SRAM").unwrap();
    let xue = reference::by_name(&models, "Xue").unwrap();
    let arch = ArchConfig::gainestown(sram.clone());

    println!(
        "Hybrid SRAM/Xue_S LLC on `{}` ({:.0}% writes)\n",
        workload.name(),
        (1.0 - workload.read_fraction()) * 100.0
    );

    let pure_sram = System::new(ArchConfig::gainestown(sram.clone())).run(&trace);
    let pure_nvm = System::new(ArchConfig::gainestown(xue.clone())).run(&trace);
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "configuration", "time [ms]", "energy [mJ]", "NVM writes"
    );
    for (label, r, writes) in [
        ("pure SRAM", &pure_sram, 0u64),
        (
            "pure Xue_S",
            &pure_nvm,
            pure_nvm.stats.llc_writes + pure_nvm.stats.llc_fills,
        ),
    ] {
        println!(
            "{:<22} {:>10.4} {:>12.4} {:>12}",
            label,
            r.exec_time.value() * 1e3,
            r.llc_energy().value() * 1e3,
            writes
        );
    }

    for sram_ways in [2u32, 4, 8] {
        let mut config = HybridConfig::four_of_sixteen(sram.clone(), xue.clone());
        config.sram_ways = sram_ways;
        let hybrid = simulate_hybrid(&arch, &config, &trace);
        println!(
            "{:<22} {:>10.4} {:>12.4} {:>12}   ({} migrations, {} SRAM hits)",
            format!("hybrid {sram_ways}/16 SRAM"),
            hybrid.result.exec_time.value() * 1e3,
            hybrid.result.llc_energy().value() * 1e3,
            hybrid.hybrid.nvm_writes,
            hybrid.hybrid.migrations,
            hybrid.hybrid.sram_hits,
        );
    }
    println!(
        "\nThe SRAM ways absorb the write stream (writebacks + migrations), cutting \
         NVM array writes versus the pure NVM cache while keeping leakage far below \
         pure SRAM."
    );
}
