//! Architecture-agnostic workload characterization (the PRISM role).
//!
//! ```text
//! cargo run --release --example workload_characterization
//! ```
//!
//! Generates every characterized workload's trace, extracts the Table VI
//! features, and prints the measured table next to per-column extremes.

use nvm_llc::prelude::*;

fn main() {
    let scale = Scale::DEFAULT;
    println!(
        "Characterizing {} workloads...\n",
        workloads::characterized().len()
    );

    let mut rows: Vec<FeatureVector> = Vec::new();
    for w in workloads::characterized() {
        let trace = w.generate(scale.seed, w.scaled_accesses(scale.base_accesses / 4));
        rows.push(profiler::characterize(w.name(), &trace));
    }

    println!(
        "{:<11} {:>6} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "bmk",
        "H_rg",
        "H_rl",
        "H_wg",
        "H_wl",
        "r_uniq",
        "w_uniq",
        "90%ft_r",
        "90%ft_w",
        "r_total",
        "w_total"
    );
    for f in &rows {
        print!("{:<11}", f.name());
        for kind in FeatureKind::ALL {
            let v = f.get(kind);
            if matches!(
                kind,
                FeatureKind::GlobalReadEntropy
                    | FeatureKind::LocalReadEntropy
                    | FeatureKind::GlobalWriteEntropy
                    | FeatureKind::LocalWriteEntropy
            ) {
                print!(" {v:>6.2}");
            } else {
                print!(" {v:>9.0}");
            }
        }
        println!();
    }

    // Per-column extremes, the "heatmap" reading of Table VI.
    println!("\nPer-feature extremes:");
    for kind in FeatureKind::ALL {
        let max = rows
            .iter()
            .max_by(|a, b| a.get(kind).partial_cmp(&b.get(kind)).unwrap())
            .unwrap();
        let min = rows
            .iter()
            .min_by(|a, b| a.get(kind).partial_cmp(&b.get(kind)).unwrap())
            .unwrap();
        println!(
            "  {:<9} max {:<11} ({:.3e})   min {:<11} ({:.3e})",
            kind.label(),
            max.name(),
            max.get(kind),
            min.name(),
            min.get(kind)
        );
    }

    println!(
        "\nPaper reference rows (Table VI) are available via nvm_llc::prism::reference::table_6()."
    );
}
