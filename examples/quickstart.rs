//! Quickstart: the whole pipeline in one page.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Load the paper's released NVM cell models (Table II).
//! 2. Derive an LLC model with the circuit modeler (Table III role).
//! 3. Replay an AI workload against SRAM and the NVM (Figure 1 role).

use nvm_llc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Cell models ---------------------------------------------------
    let catalog = Catalog::paper();
    catalog.validate_all()?;
    println!("Loaded {} cell models:", catalog.len());
    for cell in catalog.iter() {
        println!("  {cell}");
    }

    // --- 2. Circuit-level LLC model -------------------------------------
    let zhang = catalog.get("Zhang")?.clone();
    let modeler = CacheModeler::new(zhang);
    let llc_2mb = modeler.model(2 * 1024 * 1024)?;
    println!("\nGenerated 2 MB model:\n  {llc_2mb}");
    let llc_budget = fixed_area::paper_fixed_area_model(&modeler)?;
    println!("Largest cache in the SRAM area budget:\n  {llc_budget}");

    // --- 3. System simulation ------------------------------------------
    let models = reference::fixed_capacity();
    let sram = reference::by_name(&models, "SRAM").expect("SRAM row");
    let nvms: Vec<LlcModel> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    let deepsjeng = workloads::by_name("deepsjeng").expect("Table V workload");
    let row = Evaluator::new(sram, nvms)
        .base_accesses(40_000)
        .run_workload(&deepsjeng);

    println!("\ndeepsjeng (AI) on the quad-core Gainestown, 2 MB LLCs:");
    println!("  baseline {}", row.baseline);
    println!(
        "  {:<12} {:>8} {:>8} {:>8}",
        "technology", "speedup", "energy", "ED^2P"
    );
    for e in &row.entries {
        println!(
            "  {:<12} {:>8.3} {:>8.3} {:>8.3}",
            e.llc, e.speedup, e.energy, e.ed2p
        );
    }
    let best = row.best_energy().expect("non-empty row");
    println!(
        "\nMost energy-efficient NVM for deepsjeng: {} ({:.1}% of SRAM LLC energy)",
        best.llc,
        best.energy * 100.0
    );
    Ok(())
}
