//! LLC design-space exploration with the circuit modeler.
//!
//! ```text
//! cargo run --release --example llc_design_space
//! ```
//!
//! Sweeps capacity and optimization targets for every Table II
//! technology, then reports each technology's largest cache within the
//! paper's 6.55 mm² SRAM footprint (the fixed-area study of
//! Section IV-C).

use nvm_llc::cell::technologies;
use nvm_llc::circuit::{fixed_area, CacheModeler, OptimizationTarget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MB: u64 = 1024 * 1024;

    println!("== Capacity sweep (read-latency-optimized, per technology) ==");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "technology", "capacity", "read [ns]", "write [ns]", "E_wr [nJ]", "area[mm2]"
    );
    let mut cells = technologies::all_nvms();
    cells.push(technologies::sram_baseline());
    for cell in &cells {
        let modeler = CacheModeler::new(cell.clone());
        for capacity in [MB, 2 * MB, 8 * MB, 32 * MB] {
            let m = modeler.model(capacity)?;
            println!(
                "{:<12} {:>8} MB {:>12.3} {:>12.3} {:>12.3} {:>10.3}",
                m.display_name(),
                m.capacity.value(),
                m.read_latency.value(),
                m.write_latency().value(),
                m.write_energy.value(),
                m.area.value()
            );
        }
        println!();
    }

    println!("== Optimization-target tradeoffs (Chung_S, 2 MB) ==");
    for target in [
        OptimizationTarget::ReadLatency,
        OptimizationTarget::ReadEdp,
        OptimizationTarget::Area,
        OptimizationTarget::Leakage,
    ] {
        let m = CacheModeler::new(technologies::chung())
            .target(target)
            .solve_optimal(2 * MB)?;
        println!(
            "{target:>12?}: read {:.3} ns, hit {:.3} nJ, area {:.3} mm², leak {:.3} W",
            m.read_latency.value(),
            m.hit_energy.value(),
            m.area.value(),
            m.leakage.value()
        );
    }

    println!("\n== Fixed-area: largest cache in the SRAM footprint (6.55 mm²) ==");
    for cell in technologies::all_nvms() {
        let modeler = CacheModeler::new(cell);
        let m = fixed_area::paper_fixed_area_model(&modeler)?;
        println!(
            "{:<12} {:>6} MB in {:>6.3} mm²  (read {:>6.3} ns, leak {:>6.3} W)",
            m.display_name(),
            m.capacity.value(),
            m.area.value(),
            m.read_latency.value(),
            m.leakage.value()
        );
    }
    Ok(())
}
