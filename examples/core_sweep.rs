//! Section V-C core sweep, runnable standalone.
//!
//! ```text
//! cargo run --release --example core_sweep
//! ```
//!
//! Scales the system from 1 to 16 cores on two capacity-hungry NPB
//! workloads and prints per-technology speedup and energy against the
//! SRAM baseline, reproducing the Section V-C tradeoffs: density wins as
//! capacity pressure grows; Jan_S trades leakage for speed.

use nvm_llc::experiments::core_sweep;
use nvm_llc::Scale;

fn main() {
    let sweep = core_sweep::run_with(
        Scale {
            base_accesses: 60_000,
            seed: 2019,
        },
        &[1, 2, 4, 8, 16],
        &["mg", "ft"],
    );
    println!("{}", sweep.render());

    // The Section V-C narrative, measured:
    for workload in ["mg", "ft"] {
        let at = |cores: u32, nvm: &str| {
            sweep
                .point(workload, cores)
                .and_then(|p| p.row.entry(nvm).map(|e| (e.speedup, e.energy)))
                .expect("sweep point")
        };
        let (jan_s, jan_e) = at(16, "Jan_S");
        let (haya_s, haya_e) = at(16, "Hayakawa_R");
        println!(
            "{workload} @16 cores: Jan_S ({jan_s:.2}×, {jan_e:.2} E) vs Hayakawa_R \
             ({haya_s:.2}×, {haya_e:.2} E) — capacity {} leakage",
            if haya_s > jan_s { "beats" } else { "loses to" }
        );
    }
}
