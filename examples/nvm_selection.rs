//! NVM technology selection for a target use case — the design flow the
//! paper's Section VI motivates: given a workload's memory behaviour,
//! which NVM should the LLC use?
//!
//! ```text
//! cargo run --release --example nvm_selection [workload]
//! ```

use nvm_llc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "leela".to_owned());
    let Some(workload) = workloads::by_name(&target) else {
        eprintln!("unknown workload `{target}`; known workloads:");
        for w in workloads::all() {
            eprintln!("  {}", w.name());
        }
        std::process::exit(2);
    };

    println!(
        "Selecting an LLC technology for `{}` ({}, {})",
        workload.name(),
        workload.suite(),
        workload.description()
    );

    // Characterize the use case first (what a designer would profile).
    let trace = workload.generate(2019, workload.scaled_accesses(30_000));
    let features = profiler::characterize(workload.name(), &trace);
    println!("\nMemory behaviour:");
    println!(
        "  write entropy {:.2} bits (global), unique writes {:.0}, 90% write footprint {:.0}",
        features[FeatureKind::GlobalWriteEntropy],
        features[FeatureKind::UniqueWrites],
        features[FeatureKind::WriteFootprint90],
    );

    // Evaluate both sizing strategies.
    for configuration in Configuration::ALL {
        let models = configuration.models();
        let sram = reference::by_name(&models, "SRAM").expect("SRAM row");
        let nvms: Vec<LlcModel> = models.into_iter().filter(|m| m.name != "SRAM").collect();
        let row = Evaluator::new(sram, nvms)
            .base_accesses(30_000)
            .run_workload(&workload);

        println!("\n== {configuration} ==");
        println!(
            "  {:<12} {:>8} {:>8} {:>8}",
            "technology", "speedup", "energy", "ED^2P"
        );
        let mut entries = row.entries.clone();
        entries.sort_by(|a, b| a.ed2p.partial_cmp(&b.ed2p).expect("finite"));
        for e in &entries {
            println!(
                "  {:<12} {:>8.3} {:>8.3} {:>8.3}",
                e.llc, e.speedup, e.energy, e.ed2p
            );
        }
        let pick = &entries[0];
        println!(
            "  -> pick {} ({}× less LLC energy than SRAM at {:+.1}% performance)",
            pick.llc,
            (1.0 / pick.energy).round(),
            (pick.speedup - 1.0) * 100.0
        );
    }
    Ok(())
}
