//! NVM write-endurance and lifetime analysis — the paper's Section VII
//! future-work direction, made runnable.
//!
//! ```text
//! cargo run --release --example lifetime_analysis
//! ```
//!
//! For a write-heavy workload, estimates how long each NVM LLC survives
//! its write traffic, how uneven the wear is, and how much a Start-Gap-
//! style wear-leveling remap (the paper's reference [20] category) and a
//! dead-block fill bypass buy back.

use nvm_llc::prelude::*;
use nvm_llc::sim::{SimResult, WearPolicy};

fn run(
    llc: LlcModel,
    trace: &nvm_llc::trace::Trace,
    policy: WearPolicy,
    bypass: bool,
) -> SimResult {
    let mut config = ArchConfig::gainestown(llc);
    if bypass {
        config = config.with_llc_bypass();
    }
    System::new(config)
        .with_endurance_tracking(policy)
        .with_warmup(0.25)
        .run(trace)
}

fn main() {
    let workload = workloads::by_name("ft").expect("write-balanced NPB workload");
    let trace = workload.generate(2019, workload.scaled_accesses(120_000));
    println!(
        "Endurance analysis on `{}` ({} accesses, {:.0}% writes)\n",
        workload.name(),
        trace.len(),
        (1.0 - workload.read_fraction()) * 100.0
    );

    println!("== Baseline lifetime per technology (no mitigation) ==");
    for model in reference::fixed_capacity() {
        if model.name == "SRAM" {
            continue;
        }
        let name = model.display_name();
        let result = run(model, &trace, WearPolicy::None, false);
        let report = result.endurance.as_ref().expect("tracking enabled");
        println!("  {name:<12} {report}");
    }

    // Mitigations shine on a workload with a large dead-on-arrival
    // footprint: deepsjeng's cold transposition table.
    let dead_heavy = workloads::by_name("deepsjeng").unwrap();
    let trace = dead_heavy.generate(2019, dead_heavy.scaled_accesses(120_000));
    println!(
        "\n== Mitigations on Kang_P (PCRAM) running `{}` ==",
        dead_heavy.name()
    );
    let kang = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
    let cases: [(&str, WearPolicy, bool); 4] = [
        ("baseline", WearPolicy::None, false),
        (
            "wear leveling (rotate/4096)",
            WearPolicy::RotateXor { period: 4096 },
            false,
        ),
        ("dead-block bypass", WearPolicy::None, true),
        ("both", WearPolicy::RotateXor { period: 4096 }, true),
    ];
    for (label, policy, bypass) in cases {
        let result = run(kang.clone(), &trace, policy, bypass);
        let report = result.endurance.as_ref().unwrap();
        println!(
            "  {label:<28} lifetime {:>10.3e} y   imbalance {:>6.1}x   array writes {:>8}",
            report.lifetime_years,
            report.imbalance(),
            report.total_writes
        );
    }

    println!(
        "\nEndurance limits (Section II): PCRAM 1e8, RRAM 1e10, STTRAM ~1e15 writes; \
         lifetimes scale the observed worst-cell write rate against those limits."
    );
}
