//! End-to-end tests of the `nvm-llcd` evaluation service: concurrent
//! clients coalesce onto one evaluation, every response is
//! byte-identical to evaluating directly, and a daemon restart serves
//! warm requests from the persistent store.

use std::sync::{Arc, Barrier};

use nvm_llc::prelude::*;
use nvm_llc::serve::{http, json, ServeConfig, Server};

/// Extracts the integer field `"name":N` that follows `anchor` in a
/// rendered `/statsz` body (crude, but the format is ours).
fn field_after(stats: &str, anchor: &str, name: &str) -> u64 {
    let start = stats.find(anchor).unwrap_or(0);
    let pattern = format!("\"{name}\":");
    let at = stats[start..].find(&pattern).expect(&pattern) + start + pattern.len();
    stats[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer field")
}

fn direct_row(workload: &str, accesses: usize) -> MatrixRow {
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    Evaluator::new(baseline, nvms)
        .base_accesses(accesses)
        .run_workload(&workloads::by_name(workload).unwrap())
}

use nvm_llc::sim::MatrixRow;

#[test]
fn overlapping_identical_requests_coalesce_and_stay_bit_identical() {
    const CLIENTS: usize = 8;
    // Large enough that the leader's cold evaluation (trace generation +
    // functional record + batched replay) stays in flight while the
    // other clients' requests land, even with the replay kernels fast
    // and every thread contending for one CPU.
    const ACCESSES: usize = 200_000;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: CLIENTS,
        max_evals: CLIENTS,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Hammer the daemon with identical requests released together.
    // The expected row is computed only afterwards: evaluating it here
    // would warm the process-wide trace and tape caches, making the
    // leader's evaluation too fast for the others to overlap with.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let target = format!("/row?workload=tonto&accesses={ACCESSES}");
    let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let target = target.clone();
                scope.spawn(move || {
                    barrier.wait();
                    http::get(addr, &target).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let expected = json::render_row(&direct_row("tonto", ACCESSES));
    for (status, body) in &responses {
        assert_eq!(*status, 200);
        assert_eq!(
            body, &expected,
            "a served row must be byte-identical to the direct evaluation"
        );
    }
    let (_, stats) = http::get(addr, "/statsz").unwrap();
    let coalesced = field_after(&stats, "", "coalesce_hits");
    let evaluations = field_after(&stats, "", "evaluations");
    assert!(
        coalesced >= 1,
        "{CLIENTS} overlapping identical requests must coalesce: {stats}"
    );
    assert!(
        evaluations < CLIENTS as u64,
        "coalescing must save whole evaluations: {stats}"
    );
    assert_eq!(coalesced + evaluations, CLIENTS as u64, "{stats}");
    server.shutdown();
}

#[test]
fn single_cell_matches_direct_evaluation() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let jan = reference::by_name(&models, "Jan").unwrap();
    let row = Evaluator::new(baseline, vec![jan])
        .base_accesses(6_000)
        .run_workload(&workloads::by_name("x264").unwrap());
    let expected = json::render_cell(&row.workload, &row.entries[0]);
    let (status, body) =
        http::get(server.addr(), "/eval?workload=x264&tech=Jan&accesses=6000").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, expected);
    server.shutdown();
}

#[test]
fn a_policy_param_selects_the_replacement_policy_and_bad_names_answer_400() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // A served row under `policy=srrip` is byte-identical to the direct
    // evaluation with that policy threaded through the evaluator.
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    let row = Evaluator::new(baseline, nvms)
        .base_accesses(5_000)
        .policy(PolicyKind::Srrip)
        .run_workload(&workloads::by_name("leela").unwrap());
    let expected = json::render_row(&row);
    let (status, body) = http::get(addr, "/row?workload=leela&accesses=5000&policy=srrip").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, expected, "policy=srrip must reach the evaluator");

    // The same request without a policy is the LRU default — a distinct
    // cache identity, so the bodies must differ functionally.
    let (status, lru_body) = http::get(addr, "/row?workload=leela&accesses=5000").unwrap();
    assert_eq!(status, 200);
    assert_ne!(
        lru_body, body,
        "srrip and the lru default must not alias one cache entry"
    );

    // Unknown policy names are rejected up front, before any evaluation.
    let (status, body) = http::get(addr, "/row?workload=leela&accesses=5000&policy=clock").unwrap();
    assert_eq!(status, 400);
    assert!(
        body.contains("unknown policy \"clock\""),
        "the 400 must name the bad value: {body}"
    );
    server.shutdown();
}

#[test]
fn warm_requests_survive_a_daemon_restart_via_the_store() {
    let dir = std::env::temp_dir().join(format!("nvm-llcd-restart-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let target = "/row?workload=ua&accesses=6000";

    // First daemon: cold request computes and persists every cell.
    let first = Server::start(config()).unwrap();
    let (status, cold) = http::get(first.addr(), target).unwrap();
    assert_eq!(status, 200);
    let (_, stats) = http::get(first.addr(), "/statsz").unwrap();
    assert!(
        field_after(&stats, "\"store\":", "insertions") >= 11,
        "cold run persists all 11 results: {stats}"
    );
    first.shutdown();

    // Second daemon, same directory: the row comes back bit-identical,
    // with every cell a store hit — no cell was re-evaluated.
    let second = Server::start(config()).unwrap();
    let (status, warm) = http::get(second.addr(), target).unwrap();
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "restart must not change a single byte");
    let (_, stats) = http::get(second.addr(), "/statsz").unwrap();
    assert!(
        field_after(&stats, "\"store\":", "hits") >= 11,
        "warm run serves all 11 results from disk: {stats}"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Starts a small daemon and hands back a raw client stream plus a
/// response reader over a clone of it, for transport-level tests that
/// need byte-exact control of what goes on the wire.
fn raw_client(server: &Server) -> (std::net::TcpStream, http::ClientConn) {
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let reader = http::ClientConn::from_stream(stream.try_clone().unwrap());
    (stream, reader)
}

#[test]
fn pipelined_requests_in_one_segment_get_ordered_responses() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut stream, mut reader) = raw_client(&server);
    // Three requests in one write: the connection loop must parse and
    // answer all of them, in order, on the same connection.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /nope HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();
    let first = reader.recv().unwrap();
    assert_eq!((first.status, first.body.as_str()), (200, "ok\n"));
    assert!(!first.close, "pipelined responses must keep the connection");
    assert_eq!(reader.recv().unwrap().status, 404);
    let third = reader.recv().unwrap();
    assert_eq!((third.status, third.body.as_str()), (200, "ok\n"));
    server.shutdown();
}

#[test]
fn a_request_split_across_writes_still_parses() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut stream, mut reader) = raw_client(&server);
    // The head arrives in three fragments, the last one splitting the
    // terminating blank line.
    for fragment in [
        "GET /hea".as_bytes(),
        "lthz HTTP/1.1\r\nHost".as_bytes(),
        ": x\r\n\r\n".as_bytes(),
    ] {
        stream.write_all(fragment).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let response = reader.recv().unwrap();
    assert_eq!((response.status, response.body.as_str()), (200, "ok\n"));
    server.shutdown();
}

#[test]
fn an_oversized_head_answers_431_and_closes() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut stream, mut reader) = raw_client(&server);
    let mut head = b"GET /healthz HTTP/1.1\r\n".to_vec();
    head.extend_from_slice(format!("X-Padding: {}\r\n", "y".repeat(20_000)).as_bytes());
    // No terminating blank line needed: the head is already oversized.
    stream.write_all(&head).unwrap();
    let response = reader.recv().unwrap();
    assert_eq!(response.status, 431);
    assert!(response.close, "431 must close: no boundary to recover at");
    server.shutdown();
}

#[test]
fn a_malformed_request_line_answers_400_without_killing_the_connection() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let (mut stream, mut reader) = raw_client(&server);
    // Garbage request line, then a valid request, in one segment: the
    // bad head is consumed and answered 400, the good one still served.
    stream
        .write_all(b"TOTAL GARBAGE\r\nHost: x\r\n\r\nGET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let bad = reader.recv().unwrap();
    assert_eq!(bad.status, 400);
    assert!(!bad.close, "a parse error must not kill the connection");
    let good = reader.recv().unwrap();
    assert_eq!((good.status, good.body.as_str()), (200, "ok\n"));
    server.shutdown();
}

#[test]
fn keep_alive_connections_honor_the_request_cap_and_close_header() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut conn = http::ClientConn::connect(server.addr()).unwrap();
    // Requests 1 and 2 keep the connection; request 3 hits the cap and
    // carries `Connection: close`.
    for _ in 0..2 {
        conn.send("/healthz", &[]).unwrap();
    }
    conn.flush().unwrap();
    assert!(!conn.recv().unwrap().close);
    assert!(!conn.recv().unwrap().close);
    conn.send("/healthz", &[]).unwrap();
    conn.flush().unwrap();
    assert!(conn.recv().unwrap().close, "request cap must close");

    let (_, stats) = http::get(server.addr(), "/statsz").unwrap();
    assert!(
        field_after(&stats, "", "connections") >= 2,
        "connections must be counted: {stats}"
    );
    assert!(
        field_after(&stats, "", "requests") >= 4,
        "keep-alive requests must all be counted: {stats}"
    );
    server.shutdown();
}

/// `/metricsz` serves the whole registry in Prometheus text exposition
/// format: every line is a `# HELP`, a `# TYPE`, or a parsable sample,
/// and the inventory spans the evaluator, both caches, the store, and
/// the server itself.
#[test]
fn metricsz_is_valid_prometheus_with_a_full_inventory() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    // Drive one evaluation so the serve/eval counters have moved.
    let (status, _) = http::get(addr, "/eval?workload=lu&tech=Kang&accesses=4000").unwrap();
    assert_eq!(status, 200);

    let (status, body) = http::get(addr, "/metricsz").unwrap();
    assert_eq!(status, 200);
    let mut families = std::collections::HashSet::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with("# HELP ") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown type: {line}"
            );
            families.insert(name.to_owned());
        } else {
            let (lhs, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
            let name = lhs.split('{').next().unwrap();
            assert!(name.starts_with("nvmllc_"), "off-scheme name: {line}");
        }
    }
    assert!(
        families.len() >= 12,
        "expected >= 12 metric families, got {}: {families:?}",
        families.len()
    );
    for family in [
        "nvmllc_eval_runs_total",
        "nvmllc_eval_run_all_seconds",
        "nvmllc_tape_cache_misses_total",
        "nvmllc_tape_replay_batch_seconds",
        "nvmllc_trace_cache_misses_total",
        "nvmllc_store_hits_total",
        "nvmllc_serve_requests_total",
        "nvmllc_serve_handle_seconds",
        "nvmllc_serve_connections_total",
        "nvmllc_serve_requests_per_conn",
        "nvmllc_serve_proxy_hops_total",
    ] {
        assert!(families.contains(family), "missing {family}: {families:?}");
    }
    server.shutdown();
}

/// `/statsz` carries uptime, build info, cumulative per-status-class
/// request counts, and the registry dump — appended after the original
/// fields so existing consumers keep working.
#[test]
fn statsz_reports_uptime_build_info_and_status_classes() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let (status, _) = http::get(addr, "/no-such-endpoint").unwrap();
    assert_eq!(status, 404);

    let (_, stats) = http::get(addr, "/statsz").unwrap();
    let _uptime = field_after(&stats, "", "uptime_seconds");
    assert!(stats.contains(&format!(
        "\"build\":{{\"version\":\"{}\",\"git_hash\":\"",
        env!("CARGO_PKG_VERSION")
    )));
    // Built from a clone (as here), the build script resolves the real
    // commit; `unknown` is reserved for source-tarball builds.
    let in_git_clone = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .map(|out| out.status.success())
        .unwrap_or(false);
    if in_git_clone {
        assert!(
            !stats.contains("\"git_hash\":\"unknown\""),
            "clone builds must report a real commit: {stats}"
        );
    }
    assert!(stats.contains("\"metrics\":{"), "registry dump missing");
    assert!(
        field_after(&stats, "\"requests_by_class\":", "4xx") >= 1,
        "the 404 above must be counted: {stats}"
    );
    let ok_before = field_after(&stats, "\"requests_by_class\":", "2xx");

    // The first /statsz response itself lands in the 2xx class.
    let (_, stats) = http::get(addr, "/statsz").unwrap();
    assert!(
        field_after(&stats, "\"requests_by_class\":", "2xx") > ok_before,
        "2xx class must keep counting: {stats}"
    );
    server.shutdown();
}

/// Extracts the unlabeled sample `NAME <value>` from a `/metricsz` body.
fn metric_value(body: &str, name: &str) -> f64 {
    body.lines()
        .find(|line| {
            line.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|line| line.rsplit_once(' '))
        .map(|(_, value)| value.parse().expect("metric value"))
        .unwrap_or_else(|| panic!("no sample for {name}"))
}

/// Every early-return path — 400 malformed, 431 oversized, 503 shed,
/// 429 busy, idle-timeout close — must leave the queue-depth and
/// inflight-evals gauges balanced at zero and account the connection in
/// `requests_per_conn`.
#[test]
fn early_return_paths_leave_gauges_balanced() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_evals: 0, // every evaluation leader answers 429
        idle_timeout_ms: 150,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // 400: malformed head, connection survives for the next request.
    let (mut stream, mut reader) = raw_client(&server);
    stream
        .write_all(b"GARBAGE\r\nHost: x\r\n\r\nGET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    assert_eq!(reader.recv().unwrap().status, 400);
    assert_eq!(reader.recv().unwrap().status, 200);
    drop((stream, reader));

    // 429: the zero in-flight cap rejects every evaluation.
    let (status, _) = http::get(addr, "/eval?workload=lu&tech=Kang&accesses=4000").unwrap();
    assert_eq!(status, 429);

    // 431 closes after one response; that connection must still land in
    // the requests_per_conn histogram (served = 1, not 0). The registry
    // is process-global, so assert a >= +1 delta rather than equality.
    let (_, before_scrape) = http::get(addr, "/metricsz").unwrap();
    let before = metric_value(&before_scrape, "nvmllc_serve_requests_per_conn_sum");
    let (mut stream, mut reader) = raw_client(&server);
    stream
        .write_all(format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n", "y".repeat(20_000)).as_bytes())
        .unwrap();
    assert_eq!(reader.recv().unwrap().status, 431);
    drop((stream, reader));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let (_, scrape) = http::get(addr, "/metricsz").unwrap();
        if metric_value(&scrape, "nvmllc_serve_requests_per_conn_sum") >= before + 1.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the 431 connection never recorded into requests_per_conn"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Idle timeout: one served request, then the server closes the
    // quiet connection.
    let (mut stream, mut reader) = raw_client(&server);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    assert_eq!(reader.recv().unwrap().status, 200);
    assert!(
        reader.recv().is_err(),
        "the idle connection must be closed by the server"
    );

    // 503: a zero-capacity queue sheds every connection at accept.
    let shedding = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let (status, _) = http::get(shedding.addr(), "/healthz").unwrap();
    assert_eq!(status, 503);
    shedding.shutdown();

    // After every error path above: both load gauges balanced at zero.
    let (_, stats) = http::get(addr, "/statsz").unwrap();
    assert_eq!(
        field_after(&stats, "", "queue_depth"),
        0,
        "queue_depth must return to zero: {stats}"
    );
    assert_eq!(
        field_after(&stats, "", "inflight_evals"),
        0,
        "inflight_evals must return to zero: {stats}"
    );
    server.shutdown();
}

/// `/statsz` surfaces p50/p95/p99 of the handler-latency and queue-wait
/// histograms, plus the tail-sampling summary.
#[test]
fn statsz_reports_latency_quantiles_and_trace_summary() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let (status, _) = http::get(addr, "/eval?workload=lu&tech=Kang&accesses=4000").unwrap();
    assert_eq!(status, 200);

    let (_, stats) = http::get(addr, "/statsz").unwrap();
    assert!(
        stats.contains("\"latency\":{\"request\":{\"p50_us\":"),
        "request latency quantiles missing: {stats}"
    );
    assert!(
        stats.contains("\"queue_wait\":{\"p50_us\":"),
        "queue-wait quantiles missing: {stats}"
    );
    let p50 = field_after(&stats, "\"latency\":", "p50_us");
    let p99 = field_after(&stats, "\"latency\":", "p99_us");
    assert!(p99 >= p50, "quantiles must be monotone: {stats}");
    // The trace block always renders, capture or not.
    let _ = field_after(&stats, "\"trace\":", "captured");
    let _ = field_after(&stats, "\"trace\":", "slow_threshold_us");
    server.shutdown();
}

/// Serializes the tests that toggle or depend on the process-global
/// span-timing flag ([`nvm_llc::obs::set_enabled`]).
static ENABLED_FLAG: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// With `--trace-slow-ms 0` every traced request is tail-sampled into
/// `/tracez`, complete with the synthetic queue/parse spans and the
/// handler span tree; errors are retained regardless of latency.
#[test]
fn tracez_captures_slow_and_error_requests_with_phase_spans() {
    let _enabled = ENABLED_FLAG.lock().unwrap();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        trace_slow_ms: Some(0),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let (status, _) = http::get(addr, "/eval?workload=lu&tech=Kang&accesses=4000").unwrap();
    assert_eq!(status, 200);

    let (status, tracez) = http::get(addr, "/tracez").unwrap();
    assert_eq!(status, 200);
    assert!(
        tracez.starts_with("{\"node\":\"node\","),
        "tracez must lead with the server's lane label: {tracez}"
    );
    assert!(field_after(&tracez, "", "captured") >= 1, "{tracez}");
    assert!(tracez.contains("\"reason\":\"slow\""), "{tracez}");
    for span in ["serve_handle", "queue", "parse", "tape_fetch"] {
        assert!(
            tracez.contains(&format!("\"name\":\"{span}\"")),
            "span {span} missing from the retained tree: {tracez}"
        );
    }

    // Errors are retained regardless of latency or threshold.
    let (status, _) = http::get(addr, "/eval?workload=nope&tech=Kang").unwrap();
    assert_eq!(status, 400);
    let (_, tracez) = http::get(addr, "/tracez").unwrap();
    assert!(tracez.contains("\"reason\":\"error\""), "{tracez}");
    assert!(tracez.contains("\"status\":400"), "{tracez}");

    // The chrome export renders complete events with a named lane.
    let (status, chrome) = http::get(addr, "/tracez?format=chrome").unwrap();
    assert_eq!(status, 200);
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    assert!(chrome.contains("\"name\":\"serve_handle\""), "{chrome}");
    assert!(chrome.contains("\"name\":\"process_name\""), "{chrome}");
    server.shutdown();
}

/// A standalone node federates itself: `/clusterz` is valid Prometheus
/// with the shard breakdown collapsed to `shard="self"`.
#[test]
fn clusterz_on_a_standalone_node_reports_itself() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let (status, _) = http::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let (status, clusterz) = http::get(addr, "/clusterz").unwrap();
    assert_eq!(status, 200);
    assert!(
        clusterz.contains("nvmllc_cluster_shard_up{shard=\"self\"} 1"),
        "{clusterz}"
    );
    assert!(
        clusterz.contains("nvmllc_serve_requests_total{"),
        "the merged registry must carry the serve families: {clusterz}"
    );
    assert!(
        clusterz.contains("nvmllc_cluster_shard_requests_total{shard=\"self\"}"),
        "{clusterz}"
    );
    server.shutdown();
}

/// With span timing disabled the server emits no trace headers at all:
/// a hop-marked traced request and the same request untraced produce
/// byte-identical response heads, so tracing is free to turn off.
#[test]
fn disabled_span_timing_emits_no_trace_headers_and_identical_bytes() {
    let _enabled = ENABLED_FLAG.lock().unwrap();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        trace_slow_ms: Some(0),
        ..ServeConfig::default()
    })
    .unwrap();
    let context = "000102030405060708090a0b0c0d0e0f-0011223344556677-1";
    let target = "/eval?workload=x264&tech=Jan&accesses=4000";
    let send = |headers: &[(&str, &str)]| {
        let mut conn = http::ClientConn::connect(server.addr()).unwrap();
        conn.send(target, headers).unwrap();
        conn.flush().unwrap();
        conn.recv().unwrap()
    };

    // Enabled: a hop-marked request gets its spans back in a header.
    assert!(nvm_llc::obs::enabled(), "span timing defaults on");
    let traced = send(&[(nvm_llc::obs::trace::TRACE_HEADER, context)]);
    assert_eq!(traced.status, 200);
    assert!(
        traced.header(nvm_llc::obs::trace::SPANS_HEADER).is_some(),
        "a traced hop must return its span records"
    );

    // Disabled: the same request carries no trace header, and its whole
    // response (status, headers, body) matches an untraced request's.
    nvm_llc::obs::set_enabled(false);
    let off = send(&[(nvm_llc::obs::trace::TRACE_HEADER, context)]);
    let plain = send(&[]);
    nvm_llc::obs::set_enabled(true);
    assert_eq!(off.status, 200);
    assert!(
        off.header(nvm_llc::obs::trace::SPANS_HEADER).is_none(),
        "disabled tracing must emit no trace headers"
    );
    assert_eq!(off.body, traced.body, "tracing must never change a body");
    assert_eq!(
        off.headers, plain.headers,
        "with tracing off the wire heads must be identical"
    );
    server.shutdown();
}
