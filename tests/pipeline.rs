//! End-to-end pipeline test: literature values → heuristics → circuit
//! model → system simulation → correlation, with nothing taken from the
//! reference dataset except the SRAM baseline for normalization.

use nvm_llc::analysis::Outcome;
use nvm_llc::prelude::*;

#[test]
fn full_pipeline_from_reported_values_to_correlations() {
    // 1. Complete cell models from reported-only values.
    let engine = HeuristicEngine::new(nvm_llc::cell::technologies::all_nvms_reported());
    let (zhang, log) = engine
        .complete(nvm_llc::cell::technologies::zhang_reported())
        .expect("zhang completes");
    assert!(zhang.validate().is_ok());
    assert!(!log.is_empty());

    // 2. Round-trip the model through the .cell release format.
    let text = nvm_llc::cell::cellfile::to_string(&zhang);
    let parsed = nvm_llc::cell::cellfile::from_str(&text).expect("cell file parses");
    assert_eq!(parsed, zhang);

    // 3. Circuit-level model, fixed-capacity and fixed-area.
    let modeler = CacheModeler::new(zhang);
    let fixed_cap = modeler.model(2 * 1024 * 1024).expect("2 MB model");
    let fixed_area_model =
        nvm_llc::circuit::fixed_area::paper_fixed_area_model(&modeler).expect("fits budget");
    assert!(fixed_cap.is_physical());
    assert!(fixed_area_model.capacity.value() > fixed_cap.capacity.value());

    // 4. Simulate three AI workloads against the SRAM baseline using the
    //    *generated* model.
    let sram = reference::by_name(&reference::fixed_capacity(), "SRAM").unwrap();
    let eval = Evaluator::new(sram, vec![fixed_cap]).base_accesses(6_000);
    let mut observations = Vec::new();
    for name in ["deepsjeng", "leela", "exchange2"] {
        let w = workloads::by_name(name).unwrap();
        let row = eval.run_workload(&w);
        let entry = &row.entries[0];
        assert!(entry.speedup > 0.5 && entry.speedup < 1.5, "{name}");
        let trace = w.generate(2019, w.scaled_accesses(6_000));
        observations.push(Observation {
            features: profiler::characterize(name, &trace),
            energy: entry.result.llc_energy().value(),
            speedup: entry.speedup,
        });
    }

    // 5. Correlate: with three observations the matrix is well-formed and
    //    bounded.
    let matrix = CorrelationMatrix::compute("generated Zhang_R", &observations);
    assert_eq!(matrix.observations(), 3);
    for kind in FeatureKind::ALL {
        for outcome in Outcome::ALL {
            let v = matrix.get(kind, outcome);
            assert!((0.0..=1.0).contains(&v), "{kind} {outcome}: {v}");
        }
    }
}

#[test]
fn generated_and_reference_models_agree_in_simulation() {
    // Simulating with our generated Xue model must land near the
    // reference-model simulation (same trace, same baseline).
    let sram = reference::by_name(&reference::fixed_capacity(), "SRAM").unwrap();
    let reference_xue = reference::by_name(&reference::fixed_capacity(), "Xue").unwrap();
    let generated_xue = CacheModeler::new(nvm_llc::cell::technologies::xue())
        .model(2 * 1024 * 1024)
        .unwrap();

    let w = workloads::by_name("tonto").unwrap();
    let row_ref = Evaluator::new(sram.clone(), vec![reference_xue])
        .base_accesses(8_000)
        .run_workload(&w);
    let row_gen = Evaluator::new(sram, vec![generated_xue])
        .base_accesses(8_000)
        .run_workload(&w);

    let (r, g) = (&row_ref.entries[0], &row_gen.entries[0]);
    assert!(
        (r.speedup - g.speedup).abs() < 0.1,
        "{} vs {}",
        r.speedup,
        g.speedup
    );
    let energy_ratio = g.energy / r.energy;
    assert!(
        (0.2..=5.0).contains(&energy_ratio),
        "energy ratio {energy_ratio}"
    );
}

#[test]
fn catalog_cell_release_round_trips_in_bulk() {
    let catalog = Catalog::paper();
    let bundle = nvm_llc::cell::cellfile::catalog_to_string(&catalog);
    let cells = nvm_llc::cell::cellfile::parse_many(&bundle).expect("bulk parse");
    assert_eq!(cells.len(), 11);
    let rebuilt: Catalog = cells.into_iter().collect();
    assert_eq!(rebuilt.len(), catalog.len());
    for cell in catalog.iter() {
        assert_eq!(rebuilt.get(cell.name()).unwrap(), cell);
    }
}
