//! The paper's headline claims, checked end-to-end at evaluation scale.
//! Each test cites the section whose claim it verifies. Expensive
//! experiment runs are computed once per binary and shared.

use std::sync::OnceLock;

use nvm_llc::experiments::{core_sweep, fig1, fig2, fig4, table5, Configuration};
use nvm_llc::Scale;

fn fixed_capacity() -> &'static fig1::Figure {
    static CELL: OnceLock<fig1::Figure> = OnceLock::new();
    CELL.get_or_init(|| fig1::run(Scale::DEFAULT))
}

fn fixed_area() -> &'static fig1::Figure {
    static CELL: OnceLock<fig1::Figure> = OnceLock::new();
    CELL.get_or_init(|| fig2::run(Scale::DEFAULT))
}

/// Abstract: "NVM-based LLC energy use is up to an order of magnitude
/// less than that of an SRAM-based LLC".
#[test]
fn abstract_order_of_magnitude_energy_savings() {
    let fig = fixed_capacity();
    let best = fig
        .all_rows()
        .flat_map(|r| r.entries.iter())
        .map(|e| e.energy)
        .fold(f64::INFINITY, f64::min);
    assert!(best <= 0.12, "best normalized energy {best}");
}

/// Abstract: "ED²P is generally on par" — the median NVM ED²P is within
/// an order of magnitude of SRAM and usually better.
#[test]
fn abstract_ed2p_on_par() {
    let fig = fixed_capacity();
    let mut values: Vec<f64> = fig
        .all_rows()
        .flat_map(|r| r.entries.iter())
        .map(|e| e.ed2p)
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = values[values.len() / 2];
    assert!(median < 1.0, "median normalized ED²P {median}");
}

/// §V-A.7: write latency is hidden — even 300 ns-write technologies stay
/// within a few percent of SRAM at fixed capacity.
#[test]
fn write_latency_is_off_the_critical_path() {
    let fig = fixed_capacity();
    for row in fig.all_rows() {
        let zhang = row.entry("Zhang_R").unwrap();
        assert!(
            zhang.speedup > 0.9,
            "{}: Zhang_R speedup {}",
            row.workload,
            zhang.speedup
        );
    }
}

/// §V-B: fixed-area flips the picture — dense technologies win big
/// somewhere, and the *same* technology can lose elsewhere (the paper's
/// Zhang_R +20% on bzip2 / −40% on gobmk contrast).
#[test]
fn fixed_area_creates_winners_and_losers() {
    let fig = fixed_area();
    let mut dense_best: f64 = f64::NEG_INFINITY;
    let mut zhang_best: f64 = f64::NEG_INFINITY;
    let mut zhang_worst: f64 = f64::INFINITY;
    for row in fig.all_rows() {
        let z = row.entry("Zhang_R").unwrap().speedup;
        zhang_best = zhang_best.max(z);
        zhang_worst = zhang_worst.min(z);
        for name in ["Hayakawa_R", "Zhang_R", "Xue_S", "Chung_S"] {
            dense_best = dense_best.max(row.entry(name).unwrap().speedup);
        }
    }
    assert!(dense_best > 1.1, "best dense speedup {dense_best}");
    assert!(
        zhang_worst < zhang_best - 0.05,
        "no Zhang spread: {zhang_worst}..{zhang_best}"
    );
}

/// §V-B.7: for gobmk, Hayakawa_R outperforms every technology — its
/// 32 MB capacity plus modest read latency beats both smaller/faster and
/// bigger/slower rivals.
#[test]
fn fixed_area_gobmk_prefers_hayakawa() {
    let row = fixed_area().row("gobmk").unwrap();
    let hayakawa = row.entry("Hayakawa_R").unwrap().speedup;
    let best = row.best_speedup().unwrap();
    assert!(
        hayakawa >= best.speedup - 0.02,
        "Hayakawa {hayakawa} vs best {} ({})",
        best.speedup,
        best.llc
    );
    // And Zhang_R's slow reads cost it there (paper: −40%).
    let zhang = row.entry("Zhang_R").unwrap().speedup;
    assert!(zhang < hayakawa, "Zhang {zhang} vs Hayakawa {hayakawa}");
}

/// §V-C: weak scaling grows capacity pressure with the core count; dense
/// NVMs cope, capacity-starved ones suffer.
#[test]
fn core_sweep_capacity_pressure() {
    let sweep = core_sweep::run_with(Scale::DEFAULT, &[1, 8], &["mg"]);
    let mpki = |cores: u32, nvm: &str| {
        sweep
            .point("mg", cores)
            .unwrap()
            .row
            .entry(nvm)
            .unwrap()
            .result
            .stats
            .llc_mpki()
    };
    // Jan_S (1 MB) drowns as cores grow; Hayakawa_R (32 MB) holds on.
    assert!(mpki(8, "Jan_S") > mpki(1, "Jan_S"));
    assert!(mpki(8, "Hayakawa_R") < mpki(8, "Jan_S"));
    let speedup = |cores: u32, nvm: &str| {
        sweep
            .point("mg", cores)
            .unwrap()
            .row
            .entry(nvm)
            .unwrap()
            .speedup
    };
    assert!(
        speedup(8, "Hayakawa_R") > speedup(8, "Jan_S"),
        "dense {} vs capacity-starved {}",
        speedup(8, "Hayakawa_R"),
        speedup(8, "Jan_S")
    );
}

/// Table V selection criterion reproduced: every workload's measured LLC
/// mpki exceeds 5 on the SRAM baseline, and the measured ordering tracks
/// the paper's.
#[test]
fn table5_selection_bar_holds() {
    let t = table5::run(Scale::DEFAULT);
    for row in &t.rows {
        assert!(
            row.measured_mpki() > 5.0,
            "{}: {}",
            row.workload.name(),
            row.measured_mpki()
        );
    }
    assert!(
        t.rank_agreement() > 0.6,
        "rank agreement {}",
        t.rank_agreement()
    );
}

/// §VI: for AI use cases, write-side features predict energy far better
/// than total access counts; for the general-purpose case totals carry
/// real signal.
#[test]
fn section6_correlation_story() {
    let f = fig4::run(Scale::DEFAULT);
    assert!(f.ai_write_feature_strength() > f.ai_totals_strength());
    assert!(f.general_totals_strength() > 0.25);
    // Six panels of each kind, as in Figures 4a–4f.
    assert_eq!(f.ai_panels.len(), 6);
    for nvm in fig4::STUDY_NVMS {
        assert!(f.ai_panel(nvm, Configuration::FixedCapacity).is_some());
        assert!(f.ai_panel(nvm, Configuration::FixedArea).is_some());
    }
}
