//! Cross-crate consistency: the datasets that must stay in lockstep —
//! cell catalog names, Table III reference rows, workload lists, and
//! Table VI feature rows — actually do.

use nvm_llc::prelude::*;

#[test]
fn catalog_and_table3_cover_the_same_technologies() {
    let catalog = Catalog::paper();
    for models in [reference::fixed_capacity(), reference::fixed_area()] {
        assert_eq!(models.len(), catalog.len());
        for model in &models {
            let cell = catalog.get(&model.name).expect("catalog has the row");
            assert_eq!(cell.class(), model.class, "{}", model.name);
            assert_eq!(cell.display_name(), model.display_name());
        }
    }
}

#[test]
fn table6_reference_rows_match_characterized_workloads() {
    let characterized = workloads::characterized();
    let table6 = nvm_llc::prism::reference::table_6();
    assert_eq!(characterized.len(), table6.len());
    for w in &characterized {
        assert!(
            nvm_llc::prism::reference::by_name(w.name()).is_some(),
            "{} missing from Table VI",
            w.name()
        );
    }
}

#[test]
fn correlation_study_nvms_exist_everywhere() {
    // circuit::reference names the study NVMs; sim rows expose them under
    // display names; fig4 uses the display names.
    let models = reference::fixed_capacity();
    for name in nvm_llc::circuit::reference::CORRELATION_STUDY_NVMS {
        let m = reference::by_name(&models, name).expect("study NVM in Table III");
        let display = m.display_name();
        assert!(
            nvm_llc::experiments::fig4::STUDY_NVMS.contains(&display.as_str()),
            "{display} not in fig4 study set"
        );
    }
}

#[test]
fn fixed_capacity_llc_models_drive_consistent_simulator_configs() {
    for model in reference::fixed_capacity() {
        let config = ArchConfig::gainestown(model.clone());
        assert_eq!(config.llc_capacity_bytes(), model.capacity.bytes());
        assert!(config.llc_read_cycles() >= 1);
        assert!(config.llc_write_cycles() >= 1);
    }
}

#[test]
fn every_workload_simulates_on_every_fixed_capacity_model() {
    // The full 20 × 11 matrix stays runnable (tiny traces).
    let models = reference::fixed_capacity();
    for w in workloads::all() {
        let trace = w.generate(7, 300);
        for model in &models {
            let result = System::new(ArchConfig::gainestown(model.clone())).run(&trace);
            assert!(
                result.exec_time.value() > 0.0,
                "{}/{}",
                w.name(),
                model.name
            );
            assert!(
                result.llc_energy().value() > 0.0,
                "{}/{}",
                w.name(),
                model.name
            );
        }
    }
}

#[test]
fn trace_instruction_accounting_matches_simulator() {
    let w = workloads::by_name("ft").unwrap();
    let trace = w.generate(3, 2_000);
    let result = System::new(ArchConfig::gainestown(reference::sram_baseline())).run(&trace);
    assert_eq!(result.stats.instructions, trace.total_instructions());
    assert_eq!(result.stats.accesses, trace.len() as u64);
}

#[test]
fn reuse_distance_curve_predicts_simulated_llc_miss_ratio() {
    // The prism crate's stack-distance histogram and the sim crate's LLC
    // were built independently; at the 2 MB point they must agree. The
    // MRC models a fully-associative LRU cache fed the raw access stream,
    // while the simulator's LLC is 16-way and shielded by L1/L2 — so
    // compare the MRC prediction against the *stream-level* miss count
    // (LLC misses over all accesses), allowing modeling slack.
    let workload = workloads::by_name("gobmk").unwrap();
    let trace = workload.generate(2019, 60_000);
    let histogram = nvm_llc::prism::reuse::reuse_histogram(&trace);
    let predicted = histogram.miss_ratio_at(32 * 1024); // 2 MB of 64 B blocks

    let result = System::new(ArchConfig::gainestown(reference::sram_baseline())).run(&trace);
    let simulated = result.stats.llc_misses as f64 / result.stats.accesses as f64;

    assert!(
        (predicted - simulated).abs() < 0.15,
        "MRC predicts {predicted:.3}, simulator measured {simulated:.3}"
    );
}

#[test]
fn trace_io_round_trip_preserves_simulation_results() {
    let workload = workloads::by_name("leela").unwrap();
    let trace = workload.generate(5, 10_000);
    let mut bytes = Vec::new();
    nvm_llc::trace::io::write_trace(&mut bytes, &trace).expect("serializes");
    let restored = nvm_llc::trace::io::read_trace(bytes.as_slice()).expect("parses");

    let system = System::new(ArchConfig::gainestown(reference::sram_baseline()));
    assert_eq!(system.run(&trace), system.run(&restored));
}

#[test]
fn scaled_cells_model_smaller_caches() {
    // Projecting Jan to 22 nm must shrink the modeled cache area.
    use nvm_llc::cell::units::Nanometers;
    use nvm_llc::cell::{scaling, technologies};
    let jan = technologies::jan();
    let jan22 = scaling::project_to_node(&jan, Nanometers::new(22.0)).unwrap();
    let m90 = CacheModeler::new(jan).model(2 * 1024 * 1024).unwrap();
    let m22 = CacheModeler::new(jan22).model(2 * 1024 * 1024).unwrap();
    assert!(m22.area.value() < m90.area.value() / 4.0);
    assert!(m22.read_latency.value() < m90.read_latency.value());
}

#[test]
fn committed_model_release_matches_the_code() {
    // The `models/` directory is the repo's copy of the paper's public
    // cell-model release; it must stay in lockstep with the compiled-in
    // dataset (regenerate with `cargo run -p nvm-llc-cell --example
    // export_models`).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let released = nvm_llc::cell::cellfile::read_catalog_dir(&dir)
        .expect("models/ directory present and parseable");
    let catalog = Catalog::paper();
    assert_eq!(released.len(), catalog.len());
    for cell in catalog.iter() {
        assert_eq!(released.get(cell.name()).unwrap(), cell, "{}", cell.name());
    }
}
