//! Parallel evaluation engine, end to end: the scoped worker pool must be
//! bit-identical to the serial path, and the process-wide trace cache
//! must hand every same-key consumer the same `Arc<Trace>`.

use std::sync::Arc;

use nvm_llc::prelude::*;

fn evaluator() -> Evaluator {
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    Evaluator::new(baseline, nvms).base_accesses(8_000)
}

/// The determinism guarantee: a 3-workload × 11-technology matrix run
/// serially and with eight workers is `PartialEq`-identical — every
/// timing, energy, and statistics field, not just the shape.
#[test]
fn serial_and_eight_worker_matrices_are_identical() {
    let ws: Vec<_> = ["tonto", "leela", "ft"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();
    let serial = evaluator().threads(1).run_all(&ws);
    let parallel = evaluator().threads(8).run_all(&ws);
    assert_eq!(serial.len(), 3);
    for (row, w) in serial.iter().zip(&ws) {
        assert_eq!(row.workload, w.name());
        assert_eq!(row.entries.len(), 10); // + baseline = 11 technologies
    }
    assert_eq!(serial, parallel);
}

/// `run_workload` is a one-row `run_all`, so it inherits the same
/// guarantee at any worker count.
#[test]
fn single_row_is_worker_count_invariant() {
    let w = workloads::by_name("bzip2").unwrap();
    let serial = evaluator().threads(1).run_workload(&w);
    let parallel = evaluator().threads(4).run_workload(&w);
    assert_eq!(serial, parallel);
}

/// Two fetches of the same `(workload, seed, accesses)` key return
/// pointer-equal `Arc`s — the trace was generated exactly once.
#[test]
fn trace_cache_fetches_are_pointer_equal() {
    let w = workloads::by_name("tonto").unwrap();
    let a = nvm_llc::trace::cache::fetch(&w, 2019, 4_000);
    let b = nvm_llc::trace::cache::fetch(&w, 2019, 4_000);
    assert!(Arc::ptr_eq(&a, &b));
    assert_eq!(a.events(), w.generate(2019, 4_000).events());
}

/// Evaluations going through `generate_shared` populate the same cache:
/// a later direct fetch sees the already-generated trace.
#[test]
fn evaluator_runs_share_the_trace_cache() {
    let w = workloads::by_name("leela").unwrap();
    let accesses = w.scaled_accesses(8_000);
    let _ = evaluator().threads(2).run_workload(&w);
    let cached = nvm_llc::trace::cache::fetch(&w, 2019, accesses);
    let again = w.generate_shared(2019, accesses);
    assert!(Arc::ptr_eq(&cached, &again));
}
