//! Parallel evaluation engine, end to end: the scoped worker pool must be
//! bit-identical to the serial path, the process-wide trace cache must
//! hand every same-key consumer the same `Arc<Trace>`, and the
//! tape-replay paths behind `run_all` — batched lockstep replay for
//! shared-geometry groups, `System::run_cached` for singletons — must
//! agree exactly with direct `System::run` at every worker count.

use std::sync::Arc;

use nvm_llc::prelude::*;

fn evaluator() -> Evaluator {
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    Evaluator::new(baseline, nvms).base_accesses(8_000)
}

/// The determinism guarantee: a 3-workload × 11-technology matrix run
/// serially and with eight workers is `PartialEq`-identical — every
/// timing, energy, and statistics field, not just the shape.
#[test]
fn serial_and_eight_worker_matrices_are_identical() {
    let ws: Vec<_> = ["tonto", "leela", "ft"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();
    let serial = evaluator().threads(1).run_all(&ws);
    let parallel = evaluator().threads(8).run_all(&ws);
    assert_eq!(serial.len(), 3);
    for (row, w) in serial.iter().zip(&ws) {
        assert_eq!(row.workload, w.name());
        assert_eq!(row.entries.len(), 10); // + baseline = 11 technologies
    }
    assert_eq!(serial, parallel);
}

/// `run_workload` is a one-row `run_all`, so it inherits the same
/// guarantee at any worker count.
#[test]
fn single_row_is_worker_count_invariant() {
    let w = workloads::by_name("bzip2").unwrap();
    let serial = evaluator().threads(1).run_workload(&w);
    let parallel = evaluator().threads(4).run_workload(&w);
    assert_eq!(serial, parallel);
}

/// Two fetches of the same `(workload, seed, accesses)` key return
/// pointer-equal `Arc`s — the trace was generated exactly once.
#[test]
fn trace_cache_fetches_are_pointer_equal() {
    let w = workloads::by_name("tonto").unwrap();
    let a = nvm_llc::trace::cache::fetch(&w, 2019, 4_000);
    let b = nvm_llc::trace::cache::fetch(&w, 2019, 4_000);
    assert!(Arc::ptr_eq(&a, &b));
    assert_eq!(a.events(), w.generate(2019, 4_000).events());
}

/// Evaluations going through `generate_shared` populate the same cache:
/// a later direct fetch sees the already-generated trace.
#[test]
fn evaluator_runs_share_the_trace_cache() {
    let w = workloads::by_name("leela").unwrap();
    let accesses = w.scaled_accesses(8_000);
    let _ = evaluator().threads(2).run_workload(&w);
    let cached = nvm_llc::trace::cache::fetch(&w, 2019, accesses);
    let again = w.generate_shared(2019, accesses);
    assert!(Arc::ptr_eq(&cached, &again));
}

/// The functional/timing split behind `run_all`: matrices computed via
/// cached outcome tapes are bit-identical at every worker count, and
/// every single cell agrees exactly with a fresh, cache-free
/// `System::run` over an independently generated trace.
#[test]
fn tape_replay_matrix_matches_direct_runs_at_every_worker_count() {
    let ws: Vec<_> = ["tonto", "mg"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();
    let reference_rows = evaluator().threads(1).run_all(&ws);
    for threads in [2, 4, 8] {
        assert_eq!(evaluator().threads(threads).run_all(&ws), reference_rows);
    }
    // Cross-check the whole 11-technology matrix against the fused
    // single-pass path, cell by cell. The traces are re-generated (not
    // fetched from the cache), so these runs share nothing with the
    // matrix above except the math.
    let models = reference::fixed_capacity();
    for (row, w) in reference_rows.iter().zip(&ws) {
        let trace = w.generate(2019, w.scaled_accesses(8_000));
        for model in &models {
            let direct = System::new(ArchConfig::gainestown(model.clone()))
                .with_warmup(nvm_llc::sim::runner::DEFAULT_WARMUP)
                .run(&trace);
            let from_matrix = if model.name == "SRAM" {
                &row.baseline
            } else {
                &row.entry(&model.name).expect("matrix covers model").result
            };
            assert_eq!(&direct, from_matrix, "{} on {}", model.name, row.workload);
        }
    }
}

/// The batched replay engine behind `run_all` (one decode driving all
/// eleven timing engines in lockstep) is bit-identical to the
/// per-technology reference path at every worker count — and both are
/// worker-count invariant themselves.
#[test]
fn batched_and_per_technology_matrices_agree_at_every_worker_count() {
    let ws: Vec<_> = ["leela", "cg"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();
    let reference_rows = evaluator().threads(1).batched(false).run_all(&ws);
    for threads in [1, 2, 4, 8] {
        assert_eq!(
            evaluator().threads(threads).run_all(&ws),
            reference_rows,
            "batched path with {threads} workers"
        );
        assert_eq!(
            evaluator().threads(threads).batched(false).run_all(&ws),
            reference_rows,
            "per-technology path with {threads} workers"
        );
    }
}

/// `run_cached` is replay-backed: repeated fetches reuse one recorded
/// tape (pointer-equal through the cache) and still reproduce `run`.
#[test]
fn run_cached_reuses_one_tape_per_geometry() {
    let w = workloads::by_name("ft").unwrap();
    let trace = w.generate_shared(7, 4_000);
    let models = reference::fixed_capacity();
    let sram = System::new(ArchConfig::gainestown(
        reference::by_name(&models, "SRAM").unwrap(),
    ));
    let kang = System::new(ArchConfig::gainestown(
        reference::by_name(&models, "Kang").unwrap(),
    ));
    // Same trace + same 2 MB geometry: one tape serves both systems.
    let tape_a = nvm_llc::sim::tape::cache::fetch(&sram, &trace);
    let tape_b = nvm_llc::sim::tape::cache::fetch(&kang, &trace);
    assert!(Arc::ptr_eq(&tape_a, &tape_b));
    assert_eq!(sram.run_cached(&trace), sram.run(&trace));
    assert_eq!(kang.run_cached(&trace), kang.run(&trace));
}

mod policy_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The policy axis composes with everything the pool already
        /// guarantees: for random policies, technology subsets, and
        /// worker counts, a multi-worker `run_all` is bit-identical to
        /// the serial path under the same policy.
        #[test]
        fn any_policy_matrix_is_worker_count_invariant(
            policy_idx in 0usize..6,
            threads in 2usize..6,
            subset in 1u32..1024,
            workload_idx in 0usize..3,
        ) {
            let policy = PolicyKind::ALL[policy_idx];
            let models = reference::fixed_capacity();
            let baseline = reference::by_name(&models, "SRAM").unwrap();
            let nvms: Vec<_> = models
                .into_iter()
                .filter(|m| m.name != "SRAM")
                .enumerate()
                .filter(|(i, _)| subset & (1 << i) != 0)
                .map(|(_, m)| m)
                .collect();
            prop_assume!(!nvms.is_empty());
            let make = || {
                Evaluator::new(baseline.clone(), nvms.clone())
                    .base_accesses(3_000)
                    .policy(policy)
            };
            let w = workloads::by_name(["tonto", "leela", "bzip2"][workload_idx]).unwrap();
            let serial = make().threads(1).run_workload(&w);
            let parallel = make().threads(threads).run_workload(&w);
            prop_assert_eq!(serial, parallel);
        }
    }
}
