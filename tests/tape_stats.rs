//! Tape-cache effectiveness, asserted on process-wide counters.
//!
//! This file holds exactly one test and therefore compiles to its own
//! test binary (its own process): the `nvm_llc::sim::tape::cache`
//! hit/miss counters are global, so the assertion that an evaluation
//! matrix performs *exactly one* functional pass per distinct geometry
//! only holds when no concurrent test is populating the same cache.

use nvm_llc::prelude::*;
use std::collections::HashSet;

/// The tentpole's headline accounting, end to end:
///
/// * fixed-capacity matrix (11 technologies, one shared 2 MB geometry):
///   the batched path fetches the tape *once per group*, so a cold run
///   is one tape-cache miss (= one functional pass) per workload and no
///   hits at all — the ten extra technologies ride the single decode;
/// * the per-technology reference path (`batched(false)`) keeps PR 2's
///   per-cell accounting: rerun warm, all eleven fetches hit;
/// * fixed-area matrix (capacities differ per technology): one miss per
///   *distinct* LLC capacity — each capacity forms one batched group;
/// * the replayed results stay bit-identical to direct `System::run`.
#[test]
fn matrix_records_one_functional_pass_per_distinct_geometry() {
    let cache = nvm_llc::sim::tape::cache::stats;
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models
        .iter()
        .filter(|m| m.name != "SRAM")
        .cloned()
        .collect();
    let ws: Vec<_> = ["tonto", "leela"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();

    let before = cache();
    let rows = Evaluator::new(baseline.clone(), nvms.clone())
        .base_accesses(8_000)
        .threads(4)
        .run_all(&ws);
    let after = cache();

    // All 11 fixed-capacity technologies share the 2 MB LLC geometry, so
    // each workload is a single batched group: exactly one functional
    // pass per workload and one decode shared by all eleven engines —
    // no per-technology cache traffic at all.
    assert_eq!(
        after.misses - before.misses,
        ws.len() as u64,
        "one functional pass per workload"
    );
    assert_eq!(
        after.hits - before.hits,
        0,
        "batched groups fetch the tape once, at recording time"
    );
    assert!(after.bytes > before.bytes, "tapes report their footprint");
    assert!(
        after.raw_bytes >= after.bytes,
        "varint side arrays never report more than their flat-u64 size"
    );
    assert_eq!(after.evictions, 0, "default budget fits the test tapes");
    assert_eq!(nvm_llc::sim::tape::cache::len(), ws.len());

    // The per-technology reference path keeps PR 2's accounting: rerun
    // the same matrix warm with batching disabled and every cell fetches
    // its tape individually — eleven hits per workload, no new passes.
    let before = cache();
    let unbatched = Evaluator::new(baseline, nvms)
        .base_accesses(8_000)
        .threads(4)
        .batched(false)
        .run_all(&ws);
    let after = cache();
    assert_eq!(
        after.misses - before.misses,
        0,
        "warm rerun records nothing"
    );
    assert_eq!(
        after.hits - before.hits,
        (ws.len() * 11) as u64,
        "per-technology path fetches once per matrix cell"
    );
    assert_eq!(rows, unbatched, "both paths produce bit-identical rows");

    // Replays are bit-identical to direct runs over a freshly generated
    // (cache-independent) copy of the same trace.
    let models = reference::fixed_capacity();
    for (row, w) in rows.iter().zip(&ws) {
        let trace = w.generate(2019, w.scaled_accesses(8_000));
        for model in &models {
            let direct = System::new(ArchConfig::gainestown(model.clone()))
                .with_warmup(nvm_llc::sim::runner::DEFAULT_WARMUP)
                .run(&trace);
            let from_matrix = if model.name == "SRAM" {
                &row.baseline
            } else {
                &row.entry(&model.name).expect("matrix covers model").result
            };
            assert_eq!(&direct, from_matrix, "{} on {}", model.name, row.workload);
        }
    }

    // Fixed-area models size each LLC by its cell's density, so only
    // technologies that land on the same capacity share a tape — and
    // under batching each distinct capacity is exactly one group, hence
    // exactly one cache fetch (a cold miss) regardless of group size.
    let fa = reference::fixed_area();
    let distinct_capacities: HashSet<u64> = fa.iter().map(|m| m.capacity.bytes()).collect();
    let fa_baseline = reference::by_name(&fa, "SRAM").unwrap();
    let fa_nvms: Vec<_> = fa.iter().filter(|m| m.name != "SRAM").cloned().collect();
    let w = workloads::by_name("gobmk").unwrap();
    let before = cache();
    let _ = Evaluator::new(fa_baseline, fa_nvms)
        .base_accesses(8_000)
        .threads(4)
        .run_workload(&w);
    let after = cache();
    assert_eq!(
        after.misses - before.misses,
        distinct_capacities.len() as u64,
        "one functional pass per distinct fixed-area capacity"
    );
    assert_eq!(
        after.hits - before.hits,
        0,
        "one fetch per capacity group: recording is the only cache touch"
    );
}
