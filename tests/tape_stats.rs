//! Tape-cache effectiveness, asserted on process-wide counters.
//!
//! This file holds exactly one test and therefore compiles to its own
//! test binary (its own process): the `nvm_llc::sim::tape::cache`
//! hit/miss counters are global, so the assertion that an evaluation
//! matrix performs *exactly one* functional pass per distinct geometry
//! only holds when no concurrent test is populating the same cache.

use nvm_llc::prelude::*;
use std::collections::HashSet;

/// The tentpole's headline accounting, end to end:
///
/// * fixed-capacity matrix (11 technologies, one shared 2 MB geometry):
///   one tape-cache miss (= one functional pass) per workload, and one
///   hit for each of the other ten technologies;
/// * fixed-area matrix (capacities differ per technology): one miss per
///   *distinct* LLC capacity, hits for the rest;
/// * the replayed results stay bit-identical to direct `System::run`.
#[test]
fn matrix_records_one_functional_pass_per_distinct_geometry() {
    let cache = nvm_llc::sim::tape::cache::stats;
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models
        .iter()
        .filter(|m| m.name != "SRAM")
        .cloned()
        .collect();
    let ws: Vec<_> = ["tonto", "leela"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();

    let before = cache();
    let rows = Evaluator::new(baseline, nvms)
        .base_accesses(8_000)
        .threads(4)
        .run_all(&ws);
    let after = cache();

    // All 11 fixed-capacity technologies share the 2 MB LLC geometry:
    // exactly one functional pass per workload, everything else replays.
    assert_eq!(
        after.misses - before.misses,
        ws.len() as u64,
        "one functional pass per workload"
    );
    assert_eq!(
        after.hits - before.hits,
        (ws.len() * 10) as u64,
        "ten replays per workload ride the recorded tape"
    );
    assert!(after.bytes > before.bytes, "tapes report their footprint");
    assert_eq!(nvm_llc::sim::tape::cache::len(), ws.len());

    // Replays are bit-identical to direct runs over a freshly generated
    // (cache-independent) copy of the same trace.
    let models = reference::fixed_capacity();
    for (row, w) in rows.iter().zip(&ws) {
        let trace = w.generate(2019, w.scaled_accesses(8_000));
        for model in &models {
            let direct = System::new(ArchConfig::gainestown(model.clone()))
                .with_warmup(nvm_llc::sim::runner::DEFAULT_WARMUP)
                .run(&trace);
            let from_matrix = if model.name == "SRAM" {
                &row.baseline
            } else {
                &row.entry(&model.name).expect("matrix covers model").result
            };
            assert_eq!(&direct, from_matrix, "{} on {}", model.name, row.workload);
        }
    }

    // Fixed-area models size each LLC by its cell's density, so only
    // technologies that land on the same capacity share a tape.
    let fa = reference::fixed_area();
    let distinct_capacities: HashSet<u64> = fa.iter().map(|m| m.capacity.bytes()).collect();
    let fa_baseline = reference::by_name(&fa, "SRAM").unwrap();
    let fa_nvms: Vec<_> = fa.iter().filter(|m| m.name != "SRAM").cloned().collect();
    let w = workloads::by_name("gobmk").unwrap();
    let before = cache();
    let _ = Evaluator::new(fa_baseline, fa_nvms)
        .base_accesses(8_000)
        .threads(4)
        .run_workload(&w);
    let after = cache();
    assert_eq!(
        after.misses - before.misses,
        distinct_capacities.len() as u64,
        "one functional pass per distinct fixed-area capacity"
    );
    assert_eq!(
        (after.hits - before.hits) + (after.misses - before.misses),
        fa.len() as u64,
        "every cell either recorded or replayed"
    );
}
