//! Byte-budget LRU eviction in the outcome-tape cache, asserted on
//! process-wide counters.
//!
//! Like `tape_stats.rs`, this file holds exactly one test so it compiles
//! to its own test binary (its own process): the cache counters and the
//! residency budget are global, and `NVM_LLC_TAPE_CACHE_MB` is read once
//! at the cache's first touch, so the assertions only hold when no
//! concurrent test shares the cache.

use nvm_llc::prelude::*;
use nvm_llc::sim::tape::cache;

#[test]
fn byte_budget_evicts_lru_and_rerecords_on_refetch() {
    // The env override is read at first cache touch; set it before any
    // fetch so this process starts with a 1 MiB budget.
    std::env::set_var(cache::BUDGET_ENV, "1");

    let models = reference::fixed_capacity();
    let sram = System::new(ArchConfig::gainestown(
        reference::by_name(&models, "SRAM").unwrap(),
    ));
    let ws: Vec<_> = ["tonto", "leela", "gobmk", "mg", "cg", "ft"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();
    let traces: Vec<_> = ws.iter().map(|w| w.generate_shared(11, 20_000)).collect();

    assert_eq!(cache::byte_budget(), 1 << 20, "env override in MiB");

    // Record all six tapes unbounded, then shrink the budget to two
    // largest-tapes' worth: the LRU sweep must shed the oldest entries.
    cache::set_byte_budget(u64::MAX);
    let first = cache::fetch(&sram, &traces[0]);
    let tapes: Vec<_> = traces.iter().map(|t| cache::fetch(&sram, t)).collect();
    let largest = tapes.iter().map(|t| t.bytes() as u64).max().unwrap();
    assert!(largest > 0);
    cache::set_byte_budget(largest * 2);

    let stats = cache::stats();
    assert!(
        stats.evictions > 0,
        "six tapes through a two-tape budget must evict: {stats:?}"
    );
    assert!(
        stats.resident_bytes <= cache::byte_budget(),
        "residency settles under the budget: {stats:?}"
    );
    assert!(
        cache::len() < ws.len(),
        "some tapes were shed, found {}",
        cache::len()
    );

    // traces[0] was the least recently used, so it was evicted first;
    // re-fetching records a fresh functional pass (a miss, not a hit)
    // and the new tape is byte-identical to the evicted one.
    let misses_before = cache::stats().misses;
    let again = cache::fetch(&sram, &traces[0]);
    assert_eq!(cache::stats().misses, misses_before + 1, "re-record");
    assert_eq!(again.bytes(), first.bytes());
    assert_eq!(sram.replay(&again), sram.replay(&first));

    // A budget smaller than any single tape still serves fetches: the
    // key being recorded is exempt from its own eviction sweep, so the
    // replayed result stays correct — the cache just can't retain it
    // once the next key arrives.
    cache::set_byte_budget(1);
    let tape = cache::fetch(&sram, &traces[1]);
    assert_eq!(sram.replay(&tape), sram.run(&traces[1]));
    let _ = cache::fetch(&sram, &traces[2]);
    assert!(cache::len() <= 1, "nothing fits a one-byte budget for long");

    // Lifting the bound stops eviction entirely.
    cache::set_byte_budget(u64::MAX);
    let evictions_before = cache::stats().evictions;
    for trace in &traces {
        let _ = cache::fetch(&sram, trace);
    }
    assert_eq!(cache::stats().evictions, evictions_before);
    assert_eq!(cache::len(), ws.len());
}
