//! End-to-end tests of consistent-hash cluster serving: a 3-shard
//! cluster plus a thin router serves `/row` byte-identical to a direct
//! evaluation, every shard takes traffic, a non-owner shard proxies (or
//! falls back) transparently, and a shard restart warm-reloads from its
//! store.

use std::net::{SocketAddr, TcpListener};

use nvm_llc::prelude::*;
use nvm_llc::serve::cluster::{ClusterConfig, RouterConfig, ShardMap};
use nvm_llc::serve::{http, json, ServeConfig, Server};
use nvm_llc::sim::persist;

const SHARDS: usize = 3;
const ACCESSES: usize = 6_000;

/// Extracts the integer field `"name":N` that follows `anchor` in a
/// rendered `/statsz` body.
fn field_after(stats: &str, anchor: &str, name: &str) -> u64 {
    let start = stats.find(anchor).unwrap_or(0);
    let pattern = format!("\"{name}\":");
    let at = stats[start..].find(&pattern).expect(&pattern) + start + pattern.len();
    stats[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer field")
}

/// Reserves `n` distinct loopback ports: bind, record, drop.
fn reserve_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr"))
        .collect()
}

fn shard_config(dir: &std::path::Path, peers: &[String], id: usize) -> ServeConfig {
    ServeConfig {
        addr: peers[id].clone(),
        workers: 4,
        base_accesses: ACCESSES,
        store_dir: Some(dir.join(format!("shard-{id}"))),
        cluster: Some(ClusterConfig {
            shard_id: id,
            shard_count: peers.len(),
            peers: peers.to_vec(),
        }),
        ..ServeConfig::default()
    }
}

fn start_cluster(dir: &std::path::Path) -> (Vec<Server>, Server, Vec<String>) {
    let peers: Vec<String> = reserve_ports(SHARDS)
        .into_iter()
        .map(|a| a.to_string())
        .collect();
    let shards: Vec<Server> = (0..SHARDS)
        .map(|id| Server::start(shard_config(dir, &peers, id)).expect("start shard"))
        .collect();
    let router = Server::start_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        peers: peers.clone(),
        // Tail-sample every traced request so the tests below can
        // assert on stitched span trees deterministically.
        trace_slow_ms: Some(0),
        ..RouterConfig::default()
    })
    .expect("start router");
    (shards, router, peers)
}

/// One `(workload, accesses)` row request owned by each shard — the
/// ring is deterministic, so so is this search.
fn rows_covering_all_shards() -> Vec<(String, usize)> {
    let map = ShardMap::new(SHARDS);
    let mut picks: Vec<Option<(String, usize)>> = vec![None; SHARDS];
    for workload in ["tonto", "x264", "milc", "leela", "ua", "lu"] {
        for step in 0..SHARDS {
            let accesses = ACCESSES + step * 500;
            let key = persist::request_key(
                "fixed_capacity",
                workload,
                None,
                accesses,
                nvm_llc::sim::PolicyKind::Lru,
            );
            if picks[map.owner(&key)].is_none() {
                picks[map.owner(&key)] = Some((workload.to_owned(), accesses));
            }
        }
    }
    picks
        .into_iter()
        .map(|p| p.expect("a row owned by every shard"))
        .collect()
}

fn expected_row(workload: &str, accesses: usize) -> String {
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    let row = Evaluator::new(baseline, nvms)
        .base_accesses(accesses)
        .run_workload(&workloads::by_name(workload).unwrap());
    json::render_row(&row)
}

#[test]
fn routed_rows_are_byte_identical_and_every_shard_serves() {
    let dir = std::env::temp_dir().join(format!("nvm-llc-cluster-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (shards, router, _) = start_cluster(&dir);

    let rows = rows_covering_all_shards();
    for (workload, accesses) in &rows {
        let target = format!("/row?workload={workload}&accesses={accesses}");
        let (status, via_router) = http::get(router.addr(), &target).unwrap();
        assert_eq!(status, 200, "{target}: {via_router}");
        assert_eq!(
            via_router,
            expected_row(workload, *accesses),
            "routed row must be byte-identical to a direct evaluation ({target})"
        );
    }

    // Every shard answered its routed row (plus this /statsz probe).
    for (id, shard) in shards.iter().enumerate() {
        let (status, stats) = http::get(shard.addr(), "/statsz").unwrap();
        assert_eq!(status, 200);
        assert!(
            field_after(&stats, "", "requests") >= 2,
            "shard {id} served nothing: {stats}"
        );
        assert!(
            stats.contains("\"role\":\"shard\""),
            "shard statsz must carry the cluster block: {stats}"
        );
        assert!(stats.contains("\"map\":{\"shard_count\":3"), "{stats}");
    }
    let (status, stats) = http::get(router.addr(), "/statsz").unwrap();
    assert_eq!(status, 200);
    assert!(stats.contains("\"role\":\"router\""), "{stats}");

    // A non-owner shard answers a key it does not own, identically:
    // single-hop proxying (or local fallback) is invisible to clients.
    let (workload, accesses) = &rows[0];
    let target = format!("/row?workload={workload}&accesses={accesses}");
    let map = ShardMap::new(SHARDS);
    let owner = map.owner(&persist::request_key(
        "fixed_capacity",
        workload,
        None,
        *accesses,
        nvm_llc::sim::PolicyKind::Lru,
    ));
    let non_owner = (owner + 1) % SHARDS;
    let (status, via_non_owner) = http::get(shards[non_owner].addr(), &target).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        via_non_owner,
        expected_row(workload, *accesses),
        "a non-owner shard must still answer the right bytes"
    );

    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_restarted_shard_warm_reloads_from_its_store() {
    let dir = std::env::temp_dir().join(format!("nvm-llc-restart-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut shards, router, peers) = start_cluster(&dir);

    // Pick the row owned by shard 0 and serve it cold through the
    // router: the owner computes and persists it.
    let rows = rows_covering_all_shards();
    let (workload, accesses) = rows[0].clone();
    let target = format!("/row?workload={workload}&accesses={accesses}");
    let owner = ShardMap::new(SHARDS).owner(&persist::request_key(
        "fixed_capacity",
        &workload,
        None,
        accesses,
        nvm_llc::sim::PolicyKind::Lru,
    ));
    let (status, cold) = http::get(router.addr(), &target).unwrap();
    assert_eq!(status, 200);

    // Stop the owner (the in-process equivalent of SIGTERM: stop
    // accepting, drain, exit). The router must keep answering the same
    // bytes by falling back to a surviving shard.
    shards.remove(owner).shutdown();
    let (status, during_outage) = http::get(router.addr(), &target).unwrap();
    assert_eq!(status, 200, "router must survive a dead shard");
    assert_eq!(
        during_outage, cold,
        "failover must not change a single byte"
    );

    // Restart the owner on the same address and store directory: the
    // routed row comes back identical, and entirely from disk.
    let restarted = Server::start(shard_config(&dir, &peers, owner)).expect("restart shard");
    let (status, after_restart) = http::get(router.addr(), &target).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        after_restart, cold,
        "a restart must not change a single byte"
    );
    let (_, stats) = http::get(restarted.addr(), "/statsz").unwrap();
    assert!(
        field_after(&stats, "\"store\":", "hits") >= 11,
        "the restarted owner must reload all 11 cells from its store: {stats}"
    );

    router.shutdown();
    restarted.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One request through the router must come back as ONE stitched trace:
/// the router's local spans plus the owning shard's remote spans under
/// a single trace id, rendered in chrome format as distinct process
/// lanes per node.
#[test]
fn a_routed_request_stitches_one_trace_and_clusterz_federates_all_shards() {
    let dir = std::env::temp_dir().join(format!("nvm-llc-trace-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (shards, router, _) = start_cluster(&dir);

    // Drive one row per shard through the router so every shard serves
    // (and at least one request genuinely crosses processes).
    for (workload, accesses) in rows_covering_all_shards() {
        let target = format!("/row?workload={workload}&accesses={accesses}");
        let (status, _) = http::get(router.addr(), &target).unwrap();
        assert_eq!(status, 200, "{target}");
    }

    // The router retained every request (threshold 0); each tree must
    // hold the router's own spans AND the shard's remote spans.
    let (status, tracez) = http::get(router.addr(), "/tracez").unwrap();
    assert_eq!(status, 200);
    assert!(
        field_after(&tracez, "", "captured") >= SHARDS as u64,
        "router must retain one trace per routed row: {tracez}"
    );
    assert!(
        tracez.contains("\"name\":\"proxy_upstream\""),
        "router-local proxy span missing: {tracez}"
    );
    assert!(
        tracez.contains("\"node\":\"shard-"),
        "remote shard spans must be stitched into the router's trees: {tracez}"
    );
    assert!(
        tracez.contains("\"name\":\"serve_handle\""),
        "the shard's handler span must ride back in the response header: {tracez}"
    );

    // Chrome export: one process lane per node label, so a cross-process
    // request renders at least two distinct pids (router + shard).
    let (status, chrome) = http::get(router.addr(), "/tracez?format=chrome").unwrap();
    assert_eq!(status, 200);
    let pids: std::collections::HashSet<String> = chrome
        .split("\"pid\":")
        .skip(1)
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .collect();
    assert!(
        pids.len() >= 2,
        "chrome export must show >= 2 process lanes, got {pids:?}: {chrome}"
    );

    // /clusterz on the router: all shards up, and the merged counters
    // equal the sum of the per-shard breakdown rendered from the very
    // same scrape pass.
    let (status, clusterz) = http::get(router.addr(), "/clusterz").unwrap();
    assert_eq!(status, 200);
    for shard in 0..SHARDS {
        assert!(
            clusterz.contains(&format!("nvmllc_cluster_shard_up{{shard=\"{shard}\"}} 1")),
            "shard {shard} must scrape as up: {clusterz}"
        );
    }
    let sum_of = |prefix: &str| -> f64 {
        clusterz
            .lines()
            .filter(|line| line.starts_with(prefix))
            .map(|line| line.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap())
            .sum()
    };
    let merged = sum_of("nvmllc_serve_requests_total");
    let per_shard = sum_of("nvmllc_cluster_shard_requests_total");
    assert!(merged > 0.0, "{clusterz}");
    assert_eq!(
        merged, per_shard,
        "merged request total must equal the per-shard breakdown: {clusterz}"
    );
    assert!(
        clusterz.contains("nvmllc_cluster_shard_request_seconds{shard=\"0\",quantile=\"0.99\"}"),
        "per-shard latency quantiles missing: {clusterz}"
    );

    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
