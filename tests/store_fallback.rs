//! A persistent store whose records have been damaged on disk must
//! never change results: every truncated record is detected, dropped,
//! and recomputed, bit-identically to a store-less run.

use std::sync::Arc;

use nvm_llc::prelude::*;
use nvm_llc::store::Store;

fn evaluator() -> Evaluator {
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    Evaluator::new(baseline, nvms).base_accesses(6_000)
}

#[test]
fn truncated_store_records_fall_back_to_recompute() {
    let dir = std::env::temp_dir().join(format!("nvm-llc-store-fallback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workload = workloads::by_name("cg").unwrap();
    let fresh = evaluator().run_workload(&workload);

    // Populate the store, then truncate every record mid-payload.
    {
        let store = Arc::new(Store::open(&dir).unwrap());
        let cold = evaluator()
            .store(Arc::clone(&store))
            .run_workload(&workload);
        assert_eq!(cold, fresh, "the store tier must not change results");
        // The outcome tape may be served by the in-process memory tier
        // (the `fresh` run recorded it), so only the 11 finished
        // results are guaranteed to reach disk here.
        assert!(store.stats().insertions >= 11, "{:?}", store.stats());
    }
    let mut truncated = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rec") {
            let len = std::fs::metadata(&path).unwrap().len();
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(len - len / 2).unwrap();
            truncated += 1;
        }
    }
    assert!(
        truncated >= 11,
        "expected persisted records, found {truncated}"
    );

    // Reopen: every lookup sees the damage, discards the record, and
    // recomputes — the results stay bit-identical.
    let store = Arc::new(Store::open(&dir).unwrap());
    let warm = evaluator()
        .store(Arc::clone(&store))
        .run_workload(&workload);
    assert_eq!(warm, fresh, "corruption must never leak into results");
    assert!(
        store.stats().corrupt > 0,
        "the truncation must actually be detected: {:?}",
        store.stats()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
