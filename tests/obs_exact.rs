//! Exactness of the process-wide metrics registry under the evaluation
//! engine's scoped worker pool: counters and span histograms fed from
//! many threads must sum to exactly the work done, at every worker
//! count.
//!
//! The registry is process-global, so this file holds a single `#[test]`
//! — its own process — to keep deltas attributable.

use nvm_llc::prelude::*;
use nvm_llc::sim::runner::metrics;

fn evaluator() -> (Evaluator, usize) {
    let models = reference::fixed_capacity();
    let baseline = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    let width = 1 + nvms.len();
    (Evaluator::new(baseline, nvms).base_accesses(4_000), width)
}

#[test]
fn run_all_counter_and_histogram_updates_sum_exactly() {
    let ws: Vec<_> = ["tonto", "leela"]
        .iter()
        .map(|n| workloads::by_name(n).unwrap())
        .collect();
    let run_hist = nvm_llc::obs::metrics::histogram(
        "nvmllc_eval_run_all_seconds",
        "Wall time of the `eval_run_all` span.",
    );
    let replay_hist = nvm_llc::obs::metrics::histogram(
        "nvmllc_tape_replay_seconds",
        "Wall time of the `tape_replay` span.",
    );
    let batch_hist = nvm_llc::obs::metrics::histogram(
        "nvmllc_tape_replay_batch_seconds",
        "Wall time of the `tape_replay_batch` span.",
    );

    for threads in [1, 2, 4, 8] {
        let runs = metrics::runs().get();
        let cells = metrics::cells().get();
        let groups = metrics::groups().get();
        let run_spans = run_hist.count();
        let replay_spans = replay_hist.count() + batch_hist.count();

        let (ev, width) = evaluator();
        let rows = ev.threads(threads).run_all(&ws);
        assert_eq!(rows.len(), ws.len());

        // One run, exactly one cell per (workload, technology) pair, no
        // double counting and no drops regardless of worker count.
        let d_runs = metrics::runs().get() - runs;
        let d_cells = metrics::cells().get() - cells;
        let d_groups = metrics::groups().get() - groups;
        assert_eq!(d_runs, 1, "{threads} workers");
        assert_eq!(d_cells, (ws.len() * width) as u64, "{threads} workers");
        assert!(
            (ws.len() as u64..=d_cells).contains(&d_groups),
            "{threads} workers: {d_groups} groups for {d_cells} cells"
        );

        // Span histograms observe exactly one sample per span: one
        // eval_run_all per run, and one replay (single or batched) per
        // scheduled group.
        assert_eq!(run_hist.count() - run_spans, 1, "{threads} workers");
        assert_eq!(
            replay_hist.count() + batch_hist.count() - replay_spans,
            d_groups,
            "{threads} workers"
        );
    }
}
