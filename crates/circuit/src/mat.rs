//! Mat-level timing, energy, and area.
//!
//! A *mat* is NVSim's unit of array decomposition: a self-contained
//! subarray with its own row decoder, wordline drivers, bitlines, sense
//! amplifiers, and (for NVMs) write drivers. The paper's equations (4) and
//! (5) split cache latency into an H-tree routing component and a
//! `t_{read/write,mat}` component — this module produces the latter, plus
//! the mat's dynamic energies, leakage, and area.

use nvm_llc_cell::{CellParams, MemClass};

use crate::error::CircuitError;
use crate::organization::CacheOrganization;
use crate::technology::ProcessTech;

/// Fraction of mat area occupied by storage cells (the rest is decoders,
/// sense amplifiers, and drivers).
pub const ARRAY_EFFICIENCY: f64 = 0.75;

/// Fixed periphery area per mat at the 45 nm anchor, mm² (row/column
/// decoders, sense-amp stripe, write drivers); scales as `(s/45)²`.
pub const PERIPHERY_AREA_MM2_PER_MAT_AT_ANCHOR: f64 = 0.029;

/// Class-specific sense-time multiplier over the SRAM sense amplifier.
///
/// Resistive and magnetoresistive sensing resolves a much smaller signal
/// margin than an SRAM cell's full differential swing, which is why
/// Table III's NVM tag/read latencies exceed SRAM's even at smaller
/// process nodes.
pub fn sense_multiplier(class: MemClass) -> f64 {
    match class {
        MemClass::Sram => 1.0,
        // Current-sensed PCRAM has a comparatively large on/off ratio.
        MemClass::Pcram => 2.0,
        MemClass::Sttram => 8.0,
        MemClass::Rram => 9.0,
    }
}

/// Class-specific write-energy multiplier capturing write-driver and
/// charge-pump overheads on top of the raw `I·V·t` cell energy, fitted to
/// the published Table III models (documented in DESIGN.md §5).
pub fn write_energy_multiplier(class: MemClass) -> f64 {
    match class {
        MemClass::Sram => 1.0,
        MemClass::Pcram => 9.0,
        MemClass::Sttram => 3.0,
        MemClass::Rram => 1.5,
    }
}

/// Access voltage assumed for PCRAM write-energy derivation (PCRAM write
/// paths run from an elevated supply through the bitline selector).
pub const PCRAM_WRITE_VOLTAGE: f64 = 1.8;

/// Number of write pulses per bit. Metal-oxide RRAM writes are two-phase
/// (erase-to-known-state then program), which is visible in Table III:
/// Zhang's 300.8 ns write latency ≈ 2 × its 150 ns pulse.
pub fn write_pulses(class: MemClass) -> f64 {
    match class {
        MemClass::Rram => 2.0,
        _ => 1.0,
    }
}

/// SRAM per-bit access energy (full-swing differential write/read of a 6T
/// cell), pJ at the anchor node.
pub const SRAM_BIT_ENERGY_PJ_AT_ANCHOR: f64 = 0.9;

/// SRAM cell write pulse, ns at the anchor node.
pub const SRAM_WRITE_PULSE_NS_AT_ANCHOR: f64 = 0.2;

/// Timing/energy/area figures for one mat built from a given cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatModel {
    /// Read latency inside the mat (`t_{read,mat}` of equation (4)), ns.
    pub read_latency_ns: f64,
    /// SET-path write latency inside the mat, ns.
    pub write_latency_set_ns: f64,
    /// RESET-path write latency inside the mat, ns.
    pub write_latency_reset_ns: f64,
    /// Dynamic energy to read one block from the mat, nJ.
    pub read_energy_nj: f64,
    /// Dynamic energy to write one block into the mat, nJ.
    pub write_energy_nj: f64,
    /// Mat leakage, W.
    pub leakage_w: f64,
    /// Mat area, mm².
    pub area_mm2: f64,
}

/// Builds the mat model for `cell` under `org`.
///
/// # Errors
///
/// [`CircuitError::IncompleteCell`] if the cell lacks its process node,
/// cell size, or (for NVMs) the operating parameters of its class.
pub fn model_mat(cell: &CellParams, org: &CacheOrganization) -> Result<MatModel, CircuitError> {
    cell.validate()?;
    let process = cell
        .process()
        .ok_or_else(|| missing(cell, nvm_llc_cell::Param::Process))?;
    let cell_size = cell
        .cell_size()
        .ok_or_else(|| missing(cell, nvm_llc_cell::Param::CellSize))?;
    let tech = ProcessTech::at(process);
    let class = cell.class();
    let levels = cell.cell_levels();

    let rows = org.mat_rows(levels);
    let cols = org.mat_cols(levels);
    let cells_per_mat = rows * cols;
    let block_bits = u64::from(org.block_bytes()) * 8;

    // --- Area ------------------------------------------------------------
    let cell_area_mm2 = cell_size.physical_area(process).value();
    let array_area = cells_per_mat as f64 * cell_area_mm2 / ARRAY_EFFICIENCY;
    let shrink = process.value() / crate::technology::ANCHOR_NM;
    let periphery_area = PERIPHERY_AREA_MM2_PER_MAT_AT_ANCHOR * shrink * shrink;
    let area_mm2 = array_area + periphery_area;

    // --- Intra-mat wire lengths (assume square mat) ------------------------
    let side_mm = area_mm2.sqrt();
    let wordline_delay = tech.wire_delay_ns(side_mm);
    // Bitlines are loaded by a cell on every row — heavier RC than a plain
    // route; the factor 4 is the standard unrepeated-line penalty.
    let bitline_delay = 4.0 * tech.wire_delay_ns(side_mm);

    // --- Read path ---------------------------------------------------------
    let decoder_delay = tech.decoder_delay_ns(rows);
    let sense_delay = tech.sense_ns * sense_multiplier(class);
    let read_latency_ns = decoder_delay + wordline_delay + bitline_delay + sense_delay;

    // --- Write path ----------------------------------------------------
    let (set_pulse, reset_pulse) = match class {
        MemClass::Sram => (
            SRAM_WRITE_PULSE_NS_AT_ANCHOR * shrink,
            SRAM_WRITE_PULSE_NS_AT_ANCHOR * shrink,
        ),
        _ => {
            let set = cell
                .set_pulse()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::SetPulse))?
                .value();
            let reset = cell
                .reset_pulse()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::ResetPulse))?
                .value();
            (set, reset)
        }
    };
    let pulses = write_pulses(class);
    let write_overhead = decoder_delay + wordline_delay;
    // A two-phase (RRAM) write fires both transitions back to back.
    let (write_latency_set_ns, write_latency_reset_ns) = if pulses > 1.0 {
        let total = write_overhead + set_pulse + reset_pulse;
        (total, total)
    } else {
        (write_overhead + set_pulse, write_overhead + reset_pulse)
    };

    // --- Per-bit energies -----------------------------------------------
    let read_bit_pj = read_bit_energy_pj(cell, &tech)?;
    let write_bit_pj = write_bit_energy_pj(cell, &tech)?;

    let decoder_energy_nj = tech.decoder_energy_pj(rows) * 1e-3;
    let read_energy_nj =
        decoder_energy_nj + block_bits as f64 * (read_bit_pj + tech.sense_pj_per_bit) * 1e-3;
    let write_energy_nj = decoder_energy_nj
        + block_bits as f64 * write_bit_pj * write_energy_multiplier(class) * 1e-3;

    // --- Leakage ---------------------------------------------------------
    let mut leakage_w = tech.periphery_leak_mw_per_mat * 1e-3;
    if class == MemClass::Sram {
        leakage_w += cells_per_mat as f64 * tech.sram_cell_leak_nw * 1e-9;
    }

    Ok(MatModel {
        read_latency_ns,
        write_latency_set_ns,
        write_latency_reset_ns,
        read_energy_nj,
        write_energy_nj,
        leakage_w,
        area_mm2,
    })
}

/// Per-bit read energy, pJ: from the cell's reported read energy (PCRAM),
/// or read power × sense time (STTRAM/RRAM), or the SRAM swing energy.
fn read_bit_energy_pj(cell: &CellParams, tech: &ProcessTech) -> Result<f64, CircuitError> {
    let class = cell.class();
    Ok(match class {
        MemClass::Sram => {
            SRAM_BIT_ENERGY_PJ_AT_ANCHOR * tech.node.value() / crate::technology::ANCHOR_NM * 0.5
        }
        MemClass::Pcram => {
            cell.read_energy()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::ReadEnergy))?
                .value()
                * 0.25 // reduced-swing current sensing reads a fraction of
                       // the destructive-read figure VLSI papers report
        }
        MemClass::Sttram | MemClass::Rram => {
            let power = cell
                .read_power()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::ReadPower))?;
            let sense_ns = tech.sense_ns * sense_multiplier(class);
            power.value() * sense_ns * 1e-3
        }
    })
}

/// Per-bit write energy, pJ: the mean of the SET and RESET transition
/// energies (a block write flips roughly half its bits each way), derived
/// from reported energies where available and `I·V·t` otherwise.
fn write_bit_energy_pj(cell: &CellParams, tech: &ProcessTech) -> Result<f64, CircuitError> {
    let class = cell.class();
    match class {
        MemClass::Sram => {
            Ok(SRAM_BIT_ENERGY_PJ_AT_ANCHOR * tech.node.value() / crate::technology::ANCHOR_NM)
        }
        MemClass::Pcram => {
            let set = cell
                .set_current()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::SetCurrent))?
                .value()
                * PCRAM_WRITE_VOLTAGE
                * cell
                    .set_pulse()
                    .ok_or_else(|| missing(cell, nvm_llc_cell::Param::SetPulse))?
                    .value()
                * 1e-3;
            let reset = cell
                .reset_current()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::ResetCurrent))?
                .value()
                * PCRAM_WRITE_VOLTAGE
                * cell
                    .reset_pulse()
                    .ok_or_else(|| missing(cell, nvm_llc_cell::Param::ResetPulse))?
                    .value()
                * 1e-3;
            Ok(0.5 * (set + reset))
        }
        MemClass::Sttram | MemClass::Rram => {
            let set = cell
                .set_energy()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::SetEnergy))?
                .value();
            let reset = cell
                .reset_energy()
                .ok_or_else(|| missing(cell, nvm_llc_cell::Param::ResetEnergy))?
                .value();
            // Two-phase RRAM writes pay both transitions on every bit.
            if write_pulses(class) > 1.0 {
                Ok(set + reset)
            } else {
                Ok(0.5 * (set + reset))
            }
        }
    }
}

fn missing(cell: &CellParams, param: nvm_llc_cell::Param) -> CircuitError {
    CircuitError::IncompleteCell(nvm_llc_cell::CellError::MissingParam {
        technology: cell.name().to_owned(),
        param,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_cell::technologies;

    fn org_2mb() -> CacheOrganization {
        CacheOrganization::gainestown_llc(2 * 1024 * 1024, 4, 4).unwrap()
    }

    #[test]
    fn sram_mat_is_fast_and_leaky() {
        let m = model_mat(&technologies::sram_baseline(), &org_2mb()).unwrap();
        assert!(m.read_latency_ns < 1.5, "{}", m.read_latency_ns);
        assert!(m.write_latency_set_ns < 1.0);
        // One of 16 mats of a 2 MB SRAM leaks ≳ 100 mW.
        assert!(m.leakage_w > 0.1, "{}", m.leakage_w);
    }

    #[test]
    fn nvm_mats_leak_far_less_than_sram() {
        let sram = model_mat(&technologies::sram_baseline(), &org_2mb()).unwrap();
        for cell in technologies::all_nvms() {
            let m = model_mat(&cell, &org_2mb()).unwrap();
            assert!(
                m.leakage_w < sram.leakage_w / 5.0,
                "{}: {} vs {}",
                cell.name(),
                m.leakage_w,
                sram.leakage_w
            );
        }
    }

    #[test]
    fn pcram_write_latency_tracks_pulse_widths() {
        let m = model_mat(&technologies::kang(), &org_2mb()).unwrap();
        // Kang: 300 ns set, 50 ns reset, plus ~1 ns of periphery.
        assert!(m.write_latency_set_ns > 300.0 && m.write_latency_set_ns < 305.0);
        assert!(m.write_latency_reset_ns > 50.0 && m.write_latency_reset_ns < 55.0);
    }

    #[test]
    fn rram_write_is_two_phase() {
        let m = model_mat(&technologies::zhang(), &org_2mb()).unwrap();
        // Zhang: 150 ns pulses, two phases ≈ 300 ns (Table III: 300.8).
        assert!(m.write_latency_set_ns > 300.0 && m.write_latency_set_ns < 310.0);
        assert_eq!(m.write_latency_set_ns, m.write_latency_reset_ns);
    }

    #[test]
    fn pcram_write_energy_dwarfs_sttram() {
        let kang = model_mat(&technologies::kang(), &org_2mb()).unwrap();
        let xue = model_mat(&technologies::xue(), &org_2mb()).unwrap();
        assert!(
            kang.write_energy_nj > 20.0 * xue.write_energy_nj,
            "kang {} vs xue {}",
            kang.write_energy_nj,
            xue.write_energy_nj
        );
    }

    #[test]
    fn nvm_read_latency_exceeds_sram_at_same_node() {
        // Xue is also at 45 nm; resistive sensing must cost it latency.
        let sram = model_mat(&technologies::sram_baseline(), &org_2mb()).unwrap();
        let xue = model_mat(&technologies::xue(), &org_2mb()).unwrap();
        assert!(xue.read_latency_ns > sram.read_latency_ns);
    }

    #[test]
    fn zhang_mat_area_is_tiny() {
        let zhang = model_mat(&technologies::zhang(), &org_2mb()).unwrap();
        let sram = model_mat(&technologies::sram_baseline(), &org_2mb()).unwrap();
        assert!(zhang.area_mm2 < sram.area_mm2 / 5.0);
    }

    #[test]
    fn incomplete_cell_is_rejected() {
        let partial = technologies::chung_reported();
        assert!(matches!(
            model_mat(&partial, &org_2mb()),
            Err(CircuitError::IncompleteCell(_))
        ));
    }

    #[test]
    fn energies_and_latencies_are_positive_and_finite() {
        for cell in technologies::all_nvms() {
            let m = model_mat(&cell, &org_2mb()).unwrap();
            for v in [
                m.read_latency_ns,
                m.write_latency_set_ns,
                m.write_latency_reset_ns,
                m.read_energy_nj,
                m.write_energy_nj,
                m.leakage_w,
                m.area_mm2,
            ] {
                assert!(v.is_finite() && v > 0.0, "{}: {v}", cell.name());
            }
        }
    }
}
