//! Cache array organization: how a capacity is decomposed into banks,
//! mats, and subarray rows/columns.
//!
//! NVSim explores this space automatically; [`crate::solve::CacheModeler`]
//! does the same over [`CacheOrganization::candidates`].

use nvm_llc_cell::units::Mebibytes;

use crate::error::CircuitError;

/// Physical address width assumed for tag sizing, in bits.
pub const ADDRESS_BITS: u32 = 48;

/// Per-block status bits (valid, dirty, coherence state).
pub const STATUS_BITS: u32 = 3;

/// One concrete array organization for a cache of a given capacity.
///
/// # Examples
///
/// ```
/// use nvm_llc_circuit::organization::CacheOrganization;
///
/// let org = CacheOrganization::new(2 * 1024 * 1024, 64, 16, 4, 4)?;
/// assert_eq!(org.sets(), 2048);
/// assert_eq!(org.total_mats(), 16);
/// # Ok::<(), nvm_llc_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOrganization {
    capacity_bytes: u64,
    block_bytes: u32,
    associativity: u32,
    banks: u32,
    mats_per_bank: u32,
}

impl CacheOrganization {
    /// Builds an organization, validating that every geometric parameter
    /// is a power of two and that at least one set exists.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NotPowerOfTwo`] or [`CircuitError::TooSmall`].
    pub fn new(
        capacity_bytes: u64,
        block_bytes: u32,
        associativity: u32,
        banks: u32,
        mats_per_bank: u32,
    ) -> Result<Self, CircuitError> {
        for (what, value) in [
            ("capacity", capacity_bytes),
            ("block size", u64::from(block_bytes)),
            ("associativity", u64::from(associativity)),
            ("banks", u64::from(banks)),
            ("mats per bank", u64::from(mats_per_bank)),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(CircuitError::NotPowerOfTwo { what, value });
            }
        }
        let set_bytes = u64::from(block_bytes) * u64::from(associativity);
        if capacity_bytes < set_bytes {
            return Err(CircuitError::TooSmall {
                capacity_bytes,
                block_bytes,
                associativity,
            });
        }
        Ok(CacheOrganization {
            capacity_bytes,
            block_bytes,
            associativity,
            banks,
            mats_per_bank,
        })
    }

    /// The paper's LLC geometry (Table IV): 64 B blocks, 16-way.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheOrganization::new`] errors for tiny capacities.
    pub fn gainestown_llc(
        capacity_bytes: u64,
        banks: u32,
        mats_per_bank: u32,
    ) -> Result<Self, CircuitError> {
        Self::new(capacity_bytes, 64, 16, banks, mats_per_bank)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Total capacity.
    pub fn capacity(&self) -> Mebibytes {
        Mebibytes::from_bytes(self.capacity_bytes)
    }

    /// Cache block (line) size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Set associativity.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Mats per bank.
    pub fn mats_per_bank(&self) -> u32 {
        self.mats_per_bank
    }

    /// Total mats across all banks.
    pub fn total_mats(&self) -> u32 {
        self.banks * self.mats_per_bank
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.block_bytes) * u64::from(self.associativity))
    }

    /// Data bits stored per mat.
    pub fn data_bits_per_mat(&self) -> u64 {
        self.capacity_bytes * 8 / u64::from(self.total_mats())
    }

    /// Tag bits per block: address tag + status.
    pub fn tag_bits_per_block(&self) -> u32 {
        let index_bits = (self.sets().max(2) as f64).log2().ceil() as u32;
        let offset_bits = (f64::from(self.block_bytes)).log2().ceil() as u32;
        ADDRESS_BITS.saturating_sub(index_bits + offset_bits) + STATUS_BITS
    }

    /// Total tag-array bits.
    pub fn tag_bits_total(&self) -> u64 {
        self.sets() * u64::from(self.associativity) * u64::from(self.tag_bits_per_block())
    }

    /// Rows in one mat's subarray, assuming a square-ish aspect: the mat
    /// holds `data_bits_per_mat` cells (for SLC; MLC packs `levels` bits
    /// per cell) arranged with one block's bits along a row where
    /// possible.
    pub fn mat_rows(&self, cell_levels: u8) -> u64 {
        let cells = self.data_bits_per_mat() / u64::from(cell_levels.max(1));
        let row_bits = u64::from(self.block_bytes) * 8 / u64::from(cell_levels.max(1));
        (cells / row_bits.max(1)).max(1)
    }

    /// Columns (bitlines) in one mat's subarray.
    pub fn mat_cols(&self, cell_levels: u8) -> u64 {
        u64::from(self.block_bytes) * 8 / u64::from(cell_levels.max(1))
    }

    /// Candidate organizations for a capacity, enumerating bank/mat splits
    /// the solver scores. Geometries that would leave a mat with fewer
    /// than one row are skipped.
    pub fn candidates(
        capacity_bytes: u64,
        block_bytes: u32,
        associativity: u32,
    ) -> Vec<CacheOrganization> {
        let mut out = Vec::new();
        for banks_log2 in 0..=4u32 {
            for mats_log2 in 0..=6u32 {
                let banks = 1 << banks_log2;
                let mats = 1 << mats_log2;
                if let Ok(org) =
                    CacheOrganization::new(capacity_bytes, block_bytes, associativity, banks, mats)
                {
                    // A mat must hold at least one full block row.
                    if org.data_bits_per_mat() >= u64::from(block_bytes) * 8 {
                        out.push(org);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_mb() -> CacheOrganization {
        CacheOrganization::gainestown_llc(2 * 1024 * 1024, 4, 4).unwrap()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheOrganization::new(3_000_000, 64, 16, 4, 4),
            Err(CircuitError::NotPowerOfTwo {
                what: "capacity",
                ..
            })
        ));
        assert!(matches!(
            CacheOrganization::new(1 << 21, 64, 16, 3, 4),
            Err(CircuitError::NotPowerOfTwo { what: "banks", .. })
        ));
        assert!(matches!(
            CacheOrganization::new(1 << 21, 64, 16, 0, 4),
            Err(CircuitError::NotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn rejects_capacity_below_one_set() {
        assert!(matches!(
            CacheOrganization::new(512, 64, 16, 1, 1),
            Err(CircuitError::TooSmall { .. })
        ));
    }

    #[test]
    fn gainestown_2mb_geometry() {
        let org = two_mb();
        assert_eq!(org.sets(), 2048);
        assert_eq!(org.capacity().value(), 2.0);
        assert_eq!(org.block_bytes(), 64);
        assert_eq!(org.associativity(), 16);
        // 48-bit address: tag = 48 - 11 (index) - 6 (offset) + 3 status.
        assert_eq!(org.tag_bits_per_block(), 34);
    }

    #[test]
    fn data_bits_split_evenly_across_mats() {
        let org = two_mb();
        assert_eq!(
            org.data_bits_per_mat() * u64::from(org.total_mats()),
            2 * 1024 * 1024 * 8
        );
    }

    #[test]
    fn mlc_halves_rows_and_cols() {
        let org = two_mb();
        assert_eq!(
            org.mat_rows(2) * 2 * org.mat_cols(2),
            org.data_bits_per_mat()
        );
        assert_eq!(org.mat_cols(1), 512);
        assert_eq!(org.mat_cols(2), 256);
    }

    #[test]
    fn candidates_cover_multiple_geometries() {
        let c = CacheOrganization::candidates(2 * 1024 * 1024, 64, 16);
        assert!(c.len() > 10);
        assert!(c.iter().all(|o| o.capacity_bytes() == 2 * 1024 * 1024));
        // All candidate mats can hold at least one block.
        assert!(c.iter().all(|o| o.data_bits_per_mat() >= 512));
    }

    #[test]
    fn tag_bits_shrink_with_more_sets() {
        let small = CacheOrganization::gainestown_llc(1 << 21, 1, 1).unwrap();
        let large = CacheOrganization::gainestown_llc(1 << 27, 1, 1).unwrap();
        assert!(large.tag_bits_per_block() < small.tag_bits_per_block());
        assert!(large.tag_bits_total() > small.tag_bits_total());
    }
}
