//! Fixed-area capacity search (paper Section IV-C).
//!
//! In the *fixed-area* configuration the architecture is capacity-limited:
//! each NVM LLC is grown to the largest capacity whose area does not
//! exceed the SRAM baseline's footprint (6.55 mm² for the 2 MB, 45 nm
//! baseline). Dense technologies gain enormously — the paper's Zhang_R
//! reaches 128 MB in the SRAM budget.

use nvm_llc_cell::units::SquareMillimeters;

use crate::error::CircuitError;
use crate::model::LlcModel;
use crate::solve::CacheModeler;

/// The paper's area budget: the 2 MB / 45 nm SRAM LLC footprint, mm².
pub const SRAM_AREA_BUDGET_MM2: f64 = 6.55;

/// Finds the largest power-of-two capacity (in bytes, starting from
/// `min_capacity_bytes`) whose modeled area fits within `budget`, and
/// returns its model.
///
/// # Errors
///
/// [`CircuitError::NoFeasibleOrganization`] if even `min_capacity_bytes`
/// exceeds the budget, or any propagated modeling error.
pub fn max_capacity_model(
    modeler: &CacheModeler,
    budget: SquareMillimeters,
    min_capacity_bytes: u64,
    max_capacity_bytes: u64,
) -> Result<LlcModel, CircuitError> {
    let mut best: Option<LlcModel> = None;
    let mut capacity = min_capacity_bytes.next_power_of_two();
    while capacity <= max_capacity_bytes {
        match modeler.model(capacity) {
            Ok(m) if m.area.value() <= budget.value() => best = Some(m),
            Ok(_) => break, // area grows monotonically with capacity
            Err(e) => return Err(e),
        }
        capacity *= 2;
    }
    best.ok_or_else(|| {
        CircuitError::NoFeasibleOrganization(format!(
            "{}: even {} B exceeds the {:.2} mm² budget",
            modeler.cell().name(),
            min_capacity_bytes,
            budget.value()
        ))
    })
}

/// Convenience wrapper with the paper's limits: 1 MB to 256 MB under the
/// SRAM footprint.
///
/// # Errors
///
/// Same as [`max_capacity_model`].
pub fn paper_fixed_area_model(modeler: &CacheModeler) -> Result<LlcModel, CircuitError> {
    max_capacity_model(
        modeler,
        SquareMillimeters::new(SRAM_AREA_BUDGET_MM2),
        1024 * 1024,
        256 * 1024 * 1024,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_cell::technologies;

    #[test]
    fn dense_rram_reaches_tens_of_megabytes() {
        let modeler = CacheModeler::new(technologies::zhang());
        let m = paper_fixed_area_model(&modeler).unwrap();
        // Paper: 128 MB. Accept any multi-ten-MB figure from the
        // re-derived area model.
        assert!(m.capacity.value() >= 32.0, "{m}");
        assert!(m.area.value() <= SRAM_AREA_BUDGET_MM2);
    }

    #[test]
    fn fixed_area_capacity_ordering_matches_density() {
        // Denser per-bit cells must never end up with less capacity.
        let zhang = paper_fixed_area_model(&CacheModeler::new(technologies::zhang())).unwrap();
        let hayakawa =
            paper_fixed_area_model(&CacheModeler::new(technologies::hayakawa())).unwrap();
        let jan = paper_fixed_area_model(&CacheModeler::new(technologies::jan())).unwrap();
        assert!(zhang.capacity.value() >= hayakawa.capacity.value());
        assert!(hayakawa.capacity.value() > jan.capacity.value());
    }

    #[test]
    fn jan_is_capacity_limited_by_its_large_cell() {
        // Paper: Jan_S only reaches 1 MB in the SRAM budget.
        let jan = paper_fixed_area_model(&CacheModeler::new(technologies::jan())).unwrap();
        assert!(jan.capacity.value() <= 4.0, "{jan}");
    }

    #[test]
    fn budget_too_small_errors() {
        let modeler = CacheModeler::new(technologies::jan());
        let err = max_capacity_model(
            &modeler,
            SquareMillimeters::new(0.001),
            1024 * 1024,
            256 * 1024 * 1024,
        )
        .unwrap_err();
        assert!(matches!(err, CircuitError::NoFeasibleOrganization(_)));
    }

    #[test]
    fn every_nvm_fits_some_capacity_in_the_paper_budget() {
        for cell in technologies::all_nvms() {
            let modeler = CacheModeler::new(cell);
            let m = paper_fixed_area_model(&modeler)
                .unwrap_or_else(|e| panic!("{}: {e}", modeler.cell().name()));
            assert!(m.area.value() <= SRAM_AREA_BUDGET_MM2);
            assert!(m.capacity.value() >= 1.0);
        }
    }
}
