//! The circuit model's output: one row of the paper's Table III.

use std::fmt;

use nvm_llc_cell::units::{Mebibytes, Nanojoules, Nanoseconds, SquareMillimeters, Watts};
use nvm_llc_cell::MemClass;

/// Where an [`LlcModel`]'s numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelSource {
    /// Produced by this crate's analytical circuit model.
    #[default]
    Generated,
    /// Transcribed from the paper's published Table III (the authors'
    /// NVSim outputs) — the dataset that drives the system simulations,
    /// exactly as NVSim outputs drove the authors' Sniper runs.
    PaperReference,
}

impl fmt::Display for ModelSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelSource::Generated => f.write_str("generated"),
            ModelSource::PaperReference => f.write_str("paper reference"),
        }
    }
}

/// A complete LLC model: timing, energy, leakage, area, and capacity for
/// one memory technology (one column of Table III).
///
/// This is a passive data structure — every field is public — because it
/// is precisely the interface between the circuit level and the system
/// simulator, and downstream code reads every field.
#[derive(Debug, Clone, PartialEq)]
pub struct LlcModel {
    /// Citation name ("Zhang", "SRAM", ...).
    pub name: String,
    /// Memory technology class.
    pub class: MemClass,
    /// Cache capacity.
    pub capacity: Mebibytes,
    /// Total cache area.
    pub area: SquareMillimeters,
    /// Tag access latency.
    pub tag_latency: Nanoseconds,
    /// Data read latency (`t_read`, equation (4)).
    pub read_latency: Nanoseconds,
    /// Data write latency on the SET path (equation (5)).
    pub write_latency_set: Nanoseconds,
    /// Data write latency on the RESET path. Equal to
    /// [`Self::write_latency_set`] for technologies without a split.
    pub write_latency_reset: Nanoseconds,
    /// Cache hit dynamic energy (`E_dyn,hit`, equation (6)).
    pub hit_energy: Nanojoules,
    /// Cache miss dynamic energy (`E_dyn,miss` = tag energy, equation (7)).
    pub miss_energy: Nanojoules,
    /// Cache write dynamic energy (`E_dyn,write`, equation (8)).
    pub write_energy: Nanojoules,
    /// Total leakage power of the cache.
    pub leakage: Watts,
    /// Provenance of the numbers.
    pub source: ModelSource,
}

impl LlcModel {
    /// The paper's display name: citation name plus class subscript.
    pub fn display_name(&self) -> String {
        if self.class == MemClass::Sram {
            self.name.clone()
        } else {
            format!("{}_{}", self.name, self.class.subscript())
        }
    }

    /// Worst-case data write latency (max of SET and RESET paths) — what a
    /// conservative controller must budget per write.
    pub fn write_latency(&self) -> Nanoseconds {
        self.write_latency_set.max(self.write_latency_reset)
    }

    /// Mean data write latency assuming an even SET/RESET mix.
    pub fn mean_write_latency(&self) -> Nanoseconds {
        (self.write_latency_set + self.write_latency_reset) / 2.0
    }

    /// Read/write latency asymmetry: write ÷ read.
    pub fn write_read_latency_ratio(&self) -> f64 {
        self.write_latency() / self.read_latency
    }

    /// Read/write energy asymmetry: write ÷ hit energy.
    pub fn write_read_energy_ratio(&self) -> f64 {
        self.write_energy / self.hit_energy
    }

    /// Checks all figures are finite and positive.
    pub fn is_physical(&self) -> bool {
        self.capacity.is_physical()
            && self.area.is_physical()
            && self.tag_latency.is_physical()
            && self.read_latency.is_physical()
            && self.write_latency_set.is_physical()
            && self.write_latency_reset.is_physical()
            && self.hit_energy.is_physical()
            && self.miss_energy.is_physical()
            && self.write_energy.is_physical()
            && self.leakage.is_physical()
            && self.capacity.value() > 0.0
            && self.read_latency.value() > 0.0
    }
}

impl fmt::Display for LlcModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {:.0} MB, {:.3} mm², read {:.2} ns, write {:.2} ns, \
             hit {:.3} nJ, write {:.3} nJ, leak {:.3} W ({})",
            self.display_name(),
            self.class,
            self.capacity.value(),
            self.area.value(),
            self.read_latency.value(),
            self.write_latency().value(),
            self.hit_energy.value(),
            self.write_energy.value(),
            self.leakage.value(),
            self.source,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> LlcModel {
        LlcModel {
            name: "Demo".into(),
            class: MemClass::Pcram,
            capacity: Mebibytes::new(2.0),
            area: SquareMillimeters::new(4.0),
            tag_latency: Nanoseconds::new(0.7),
            read_latency: Nanoseconds::new(1.5),
            write_latency_set: Nanoseconds::new(180.0),
            write_latency_reset: Nanoseconds::new(11.0),
            hit_energy: Nanojoules::new(0.8),
            miss_energy: Nanojoules::new(0.04),
            write_energy: Nanojoules::new(225.0),
            leakage: Watts::new(0.06),
            source: ModelSource::Generated,
        }
    }

    #[test]
    fn write_latency_takes_worst_path() {
        let m = demo();
        assert_eq!(m.write_latency().value(), 180.0);
        assert!((m.mean_write_latency().value() - 95.5).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_ratios() {
        let m = demo();
        assert!((m.write_read_latency_ratio() - 120.0).abs() < 1e-9);
        assert!((m.write_read_energy_ratio() - 281.25).abs() < 1e-9);
    }

    #[test]
    fn display_name_and_physicality() {
        let m = demo();
        assert_eq!(m.display_name(), "Demo_P");
        assert!(m.is_physical());
        let mut broken = demo();
        broken.read_latency = Nanoseconds::new(f64::NAN);
        assert!(!broken.is_physical());
    }

    #[test]
    fn display_mentions_source() {
        assert!(demo().to_string().contains("generated"));
    }
}
