//! H-tree interconnect model.
//!
//! NVSim routes address and data between the cache port and its mats over
//! a balanced H-tree. The paper's equations (4) and (5) charge a read two
//! H-tree traversals (address in, data out) and a write one (address and
//! data travel together; completion is fire-and-forget):
//!
//! ```text
//! t_read  ≈ 2 · t_htree + t_read,mat      (4)
//! t_write ≈ 1 · t_htree + t_write,mat     (5)
//! ```

use crate::technology::ProcessTech;

/// Latency and per-traversal energy of a cache's H-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtreeModel {
    /// One-way traversal latency (`t_htree`), ns.
    pub latency_ns: f64,
    /// Energy of one traversal carrying one block of data, nJ.
    pub energy_nj: f64,
    /// Root-to-leaf routed distance, mm.
    pub distance_mm: f64,
}

/// Models the H-tree of a cache with `total_mats` mats spread over
/// `total_area_mm2`, moving `block_bits` bits per data traversal.
///
/// The root-to-leaf distance of a balanced H-tree over a square floorplan
/// is ≈ half the die side per level summed — bounded by one full side; we
/// use `sqrt(area)` as the routed distance, plus a 2-FO4 rebuffer per
/// tree level (`log4` of the mat count).
pub fn model_htree(
    tech: &ProcessTech,
    total_mats: u32,
    total_area_mm2: f64,
    block_bits: u32,
) -> HtreeModel {
    let distance_mm = total_area_mm2.max(0.0).sqrt();
    let levels = (f64::from(total_mats.max(1))).log2() / 2.0;
    let rebuffer_ns = 2.0 * levels.ceil().max(0.0) * tech.fo4_ns;
    let latency_ns = tech.wire_delay_ns(distance_mm) + rebuffer_ns;
    let energy_nj = tech.wire_energy_pj(distance_mm, block_bits) * 1e-3;
    HtreeModel {
        latency_ns,
        energy_nj,
        distance_mm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_cell::units::Nanometers;

    fn t45() -> ProcessTech {
        ProcessTech::at(Nanometers::new(45.0))
    }

    #[test]
    fn bigger_area_means_longer_htree() {
        let small = model_htree(&t45(), 16, 1.0, 512);
        let large = model_htree(&t45(), 16, 16.0, 512);
        assert!(large.latency_ns > small.latency_ns);
        assert!(large.energy_nj > small.energy_nj);
        assert!((large.distance_mm - 4.0).abs() < 1e-12);
    }

    #[test]
    fn more_mats_add_rebuffer_levels() {
        let few = model_htree(&t45(), 4, 4.0, 512);
        let many = model_htree(&t45(), 1024, 4.0, 512);
        assert!(many.latency_ns > few.latency_ns);
    }

    #[test]
    fn single_mat_tree_is_cheap_but_nonzero() {
        let h = model_htree(&t45(), 1, 0.25, 512);
        assert!(h.latency_ns > 0.0);
        assert!(h.latency_ns < 0.1);
    }

    #[test]
    fn energy_scales_with_block_width() {
        let narrow = model_htree(&t45(), 16, 4.0, 64);
        let wide = model_htree(&t45(), 16, 4.0, 512);
        assert!((wide.energy_nj / narrow.energy_nj - 8.0).abs() < 1e-9);
    }
}
