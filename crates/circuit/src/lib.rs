//! # nvm-llc-circuit — circuit-level NVM cache modeling (NVSim substitute)
//!
//! Implements the circuit-level half of the paper's pipeline: from a
//! [`nvm_llc_cell::CellParams`] cell model to a full LLC model — timing,
//! dynamic energy, leakage, area, capacity — via the paper's equations
//! (4)–(8), the way the authors used NVSim.
//!
//! Two ways to obtain a model:
//!
//! * [`solve::CacheModeler`] — the analytical model: mats
//!   ([`mat`]), an H-tree ([`htree`]), per-node technology constants
//!   ([`technology`]), and NVSim-style organization search.
//! * [`mod reference`](crate::reference) — the paper's published Table III numbers, which are
//!   the exact values that drove the paper's system simulations.
//!
//! The *fixed-capacity* vs *fixed-area* dichotomy of Section IV-C is
//! served by [`solve::CacheModeler::model`] (pick a capacity) and
//! [`fixed_area::paper_fixed_area_model`] (grow to the SRAM footprint).
//!
//! ## Example
//!
//! ```
//! use nvm_llc_cell::technologies;
//! use nvm_llc_circuit::{solve::CacheModeler, fixed_area};
//!
//! let modeler = CacheModeler::new(technologies::hayakawa());
//! let fixed_cap = modeler.model(2 * 1024 * 1024)?;          // 2 MB
//! let fixed_area = fixed_area::paper_fixed_area_model(&modeler)?; // ≫ 2 MB
//! assert!(fixed_area.capacity.value() > fixed_cap.capacity.value());
//! # Ok::<(), nvm_llc_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod fixed_area;
pub mod htree;
pub mod mat;
pub mod model;
pub mod organization;
pub mod reference;
pub mod solve;
pub mod sweep;
pub mod technology;

pub use error::CircuitError;
pub use model::{LlcModel, ModelSource};
pub use organization::CacheOrganization;
pub use solve::{CacheModeler, OptimizationTarget};

#[cfg(test)]
mod validation {
    //! Cross-validation of the analytical model against the paper's
    //! published Table III: the *shape* must hold even where absolute
    //! numbers drift.

    use crate::reference;
    use crate::solve::CacheModeler;
    use nvm_llc_cell::technologies;

    /// Generated and reference models agree on which technology classes
    /// pay the write-energy penalty.
    #[test]
    fn generated_write_energy_ordering_tracks_reference() {
        let reference = reference::fixed_capacity();
        for cell in technologies::all_nvms() {
            let name = cell.name().to_owned();
            let generated = CacheModeler::new(cell).model(2 * 1024 * 1024).unwrap();
            let reference = reference::by_name(&reference, &name).unwrap();
            // Same order of magnitude band: PCRAM tens-to-hundreds of nJ,
            // others around or below a few nJ.
            let gen_heavy = generated.write_energy.value() > 10.0;
            let ref_heavy = reference.write_energy.value() > 10.0;
            assert_eq!(gen_heavy, ref_heavy, "{name}");
        }
    }

    /// Generated latencies stay within a small factor of the reference.
    #[test]
    fn generated_write_latency_within_2x_of_reference() {
        let reference_models = reference::fixed_capacity();
        for cell in technologies::all_nvms() {
            let name = cell.name().to_owned();
            let generated = CacheModeler::new(cell).model(2 * 1024 * 1024).unwrap();
            let reference = reference::by_name(&reference_models, &name).unwrap();
            let ratio = generated.write_latency().value() / reference.write_latency().value();
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{name}: generated {} vs reference {}",
                generated.write_latency(),
                reference.write_latency()
            );
        }
    }

    /// Generated leakage is within 5× of the reference for every NVM and
    /// preserves the SRAM-dominates property.
    #[test]
    fn generated_leakage_shape_matches_reference() {
        let reference_models = reference::fixed_capacity();
        let sram_gen = CacheModeler::new(technologies::sram_baseline())
            .model(2 * 1024 * 1024)
            .unwrap();
        for cell in technologies::all_nvms() {
            let name = cell.name().to_owned();
            let generated = CacheModeler::new(cell).model(2 * 1024 * 1024).unwrap();
            let reference = reference::by_name(&reference_models, &name).unwrap();
            let ratio = generated.leakage.value() / reference.leakage.value();
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{name}: generated {} vs reference {}",
                generated.leakage,
                reference.leakage
            );
            assert!(generated.leakage.value() < sram_gen.leakage.value());
        }
    }

    /// Fixed-area capacities from the analytical model agree with the
    /// reference within a couple of power-of-two steps for the headline
    /// technologies.
    #[test]
    fn fixed_area_capacities_track_reference() {
        let reference_models = reference::fixed_area();
        for (name, cell) in [
            ("Zhang", technologies::zhang()),
            ("Hayakawa", technologies::hayakawa()),
            ("Xue", technologies::xue()),
            ("Jan", technologies::jan()),
        ] {
            let modeler = CacheModeler::new(cell);
            let generated = crate::fixed_area::paper_fixed_area_model(&modeler).unwrap();
            let reference = reference::by_name(&reference_models, name).unwrap();
            let ratio = generated.capacity.value() / reference.capacity.value();
            assert!(
                (0.25..=4.0).contains(&ratio),
                "{name}: generated {} MB vs reference {} MB",
                generated.capacity.value(),
                reference.capacity.value()
            );
        }
    }
}
