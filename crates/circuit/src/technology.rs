//! Process-technology constants used by the circuit model.
//!
//! The model is anchored at a 45 nm planar-CMOS node (the paper's SRAM
//! baseline process) and scaled to other nodes with first-order
//! constant-field scaling rules: gate delay shrinks roughly linearly with
//! feature size, wire RC per unit length worsens as the cross-section
//! shrinks, and subthreshold leakage per transistor grows at smaller
//! nodes.

use nvm_llc_cell::units::Nanometers;

/// Anchor node for all scaling relations (the paper's SRAM baseline).
pub const ANCHOR_NM: f64 = 45.0;

/// FO4 inverter delay at the anchor node, in nanoseconds.
pub const FO4_NS_AT_ANCHOR: f64 = 0.012;

/// Global-layer wire resistance per millimeter at the anchor node, in ohms.
pub const WIRE_RES_OHM_PER_MM_AT_ANCHOR: f64 = 400.0;

/// Global-layer wire capacitance per millimeter, in picofarads
/// (approximately node-independent).
pub const WIRE_CAP_PF_PER_MM: f64 = 0.20;

/// Energy to switch one millimeter of global wire at the anchor node, in
/// picojoules (½·C·V² with V ≈ 1 V and driver/repeater overhead folded in).
pub const WIRE_ENERGY_PJ_PER_MM_AT_ANCHOR: f64 = 0.15;

/// Sense-amplifier resolve time at the anchor node, in nanoseconds.
pub const SENSE_NS_AT_ANCHOR: f64 = 0.10;

/// Per-bit sense + bitline dynamic energy at the anchor node, picojoules.
pub const SENSE_PJ_PER_BIT_AT_ANCHOR: f64 = 0.020;

/// SRAM cell leakage at the anchor node, in nanowatts per cell.
///
/// Calibrated so a 2 MB SRAM data+tag array at 45 nm leaks ≈ 3.4 W
/// (Table III's SRAM row): 2 MiB = 16.8 M cells of data plus tags and
/// periphery.
pub const SRAM_CELL_LEAK_NW_AT_ANCHOR: f64 = 200.0;

/// Peripheral (decoder/sense/driver) leakage per mat at the anchor node,
/// in milliwatts. NVM arrays leak only through their periphery — the cells
/// themselves hold state without power — which is why Table III's NVM
/// leakage is one to two orders of magnitude below SRAM's.
pub const PERIPHERY_LEAK_MW_PER_MAT_AT_ANCHOR: f64 = 6.0;

/// A process node with derived electrical constants.
///
/// # Examples
///
/// ```
/// use nvm_llc_circuit::technology::ProcessTech;
/// use nvm_llc_cell::units::Nanometers;
///
/// let t45 = ProcessTech::at(Nanometers::new(45.0));
/// let t22 = ProcessTech::at(Nanometers::new(22.0));
/// // Gates get faster at smaller nodes, wires get slower per mm.
/// assert!(t22.fo4_ns < t45.fo4_ns);
/// assert!(t22.wire_res_ohm_per_mm > t45.wire_res_ohm_per_mm);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessTech {
    /// The node this instance describes.
    pub node: Nanometers,
    /// FO4 inverter delay, ns.
    pub fo4_ns: f64,
    /// Wire resistance, Ω/mm.
    pub wire_res_ohm_per_mm: f64,
    /// Wire capacitance, pF/mm.
    pub wire_cap_pf_per_mm: f64,
    /// Wire switching energy, pJ/mm.
    pub wire_energy_pj_per_mm: f64,
    /// Sense-amplifier resolve time, ns.
    pub sense_ns: f64,
    /// Per-bit sense/bitline energy, pJ.
    pub sense_pj_per_bit: f64,
    /// SRAM cell leakage, nW/cell.
    pub sram_cell_leak_nw: f64,
    /// Peripheral leakage per mat, mW.
    pub periphery_leak_mw_per_mat: f64,
}

impl ProcessTech {
    /// Derives the constants for an arbitrary node from the 45 nm anchor.
    ///
    /// Scaling rules (first-order, as used by CACTI/NVSim-class tools):
    ///
    /// * gate/sense delay ∝ `s / 45`;
    /// * wire resistance per mm ∝ `(45 / s)²` (cross-section shrinks in
    ///   both dimensions);
    /// * wire capacitance per mm constant; wire energy ∝ `s / 45`
    ///   (supply voltage drops slowly with node);
    /// * SRAM cell leakage per cell ∝ `(45 / s)` (lower Vt and thinner
    ///   oxide at small nodes outweigh the smaller device);
    /// * peripheral leakage per mat follows the same trend.
    pub fn at(node: Nanometers) -> Self {
        let s = node.value();
        let shrink = s / ANCHOR_NM; // >1 for older/larger nodes
        let grow = ANCHOR_NM / s; // >1 for newer/smaller nodes
        ProcessTech {
            node,
            fo4_ns: FO4_NS_AT_ANCHOR * shrink,
            wire_res_ohm_per_mm: WIRE_RES_OHM_PER_MM_AT_ANCHOR * grow * grow,
            wire_cap_pf_per_mm: WIRE_CAP_PF_PER_MM,
            wire_energy_pj_per_mm: WIRE_ENERGY_PJ_PER_MM_AT_ANCHOR * shrink,
            sense_ns: SENSE_NS_AT_ANCHOR * shrink,
            sense_pj_per_bit: SENSE_PJ_PER_BIT_AT_ANCHOR * shrink,
            sram_cell_leak_nw: SRAM_CELL_LEAK_NW_AT_ANCHOR * grow,
            periphery_leak_mw_per_mat: PERIPHERY_LEAK_MW_PER_MAT_AT_ANCHOR * grow,
        }
    }

    /// Elmore delay of a repeated wire of `mm` millimeters, in nanoseconds.
    ///
    /// Repeater insertion linearizes RC growth with distance; we use the
    /// standard `0.7·R·C` lumped estimate per repeated segment with 1 mm
    /// segments.
    pub fn wire_delay_ns(&self, mm: f64) -> f64 {
        let segments = mm.max(0.0);
        // Per-mm RC in (Ω · pF) = picoseconds; 0.7 factor for the Elmore
        // step response; convert ps -> ns.
        0.7 * self.wire_res_ohm_per_mm * self.wire_cap_pf_per_mm * segments * 1e-3
    }

    /// Energy to drive `mm` millimeters of wire carrying `bits` parallel
    /// bits, in picojoules.
    pub fn wire_energy_pj(&self, mm: f64, bits: u32) -> f64 {
        self.wire_energy_pj_per_mm * mm.max(0.0) * f64::from(bits)
    }

    /// Delay of a decoder resolving `entries` rows: modeled as a chain of
    /// `log2(entries)` 2-input stages of 2 FO4 each plus a wordline driver.
    pub fn decoder_delay_ns(&self, entries: u64) -> f64 {
        let stages = (entries.max(2) as f64).log2().ceil();
        (2.0 * stages + 4.0) * self.fo4_ns
    }

    /// Dynamic energy of one decode of `entries` rows, in picojoules.
    pub fn decoder_energy_pj(&self, entries: u64) -> f64 {
        let stages = (entries.max(2) as f64).log2().ceil();
        0.08 * stages * (self.node.value() / ANCHOR_NM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_node_reproduces_anchor_constants() {
        let t = ProcessTech::at(Nanometers::new(45.0));
        assert_eq!(t.fo4_ns, FO4_NS_AT_ANCHOR);
        assert_eq!(t.wire_res_ohm_per_mm, WIRE_RES_OHM_PER_MM_AT_ANCHOR);
        assert_eq!(t.sram_cell_leak_nw, SRAM_CELL_LEAK_NW_AT_ANCHOR);
    }

    #[test]
    fn gate_delay_scales_linearly_with_node() {
        let t90 = ProcessTech::at(Nanometers::new(90.0));
        let t45 = ProcessTech::at(Nanometers::new(45.0));
        assert!((t90.fo4_ns / t45.fo4_ns - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wire_resistance_scales_quadratically() {
        let t22 = ProcessTech::at(Nanometers::new(22.5));
        let t45 = ProcessTech::at(Nanometers::new(45.0));
        assert!((t22.wire_res_ohm_per_mm / t45.wire_res_ohm_per_mm - 4.0).abs() < 1e-12);
    }

    #[test]
    fn wire_delay_grows_with_distance() {
        let t = ProcessTech::at(Nanometers::new(45.0));
        assert!(t.wire_delay_ns(2.0) > t.wire_delay_ns(1.0));
        assert_eq!(t.wire_delay_ns(0.0), 0.0);
        assert_eq!(t.wire_delay_ns(-1.0), 0.0);
    }

    #[test]
    fn decoder_delay_grows_logarithmically() {
        let t = ProcessTech::at(Nanometers::new(45.0));
        let d256 = t.decoder_delay_ns(256);
        let d1024 = t.decoder_delay_ns(1024);
        assert!(d1024 > d256);
        // log2 growth: two extra stages of 2 FO4 each.
        assert!((d1024 - d256 - 4.0 * t.fo4_ns).abs() < 1e-12);
    }

    #[test]
    fn leakage_grows_at_smaller_nodes() {
        let t22 = ProcessTech::at(Nanometers::new(22.0));
        let t90 = ProcessTech::at(Nanometers::new(90.0));
        assert!(t22.sram_cell_leak_nw > t90.sram_cell_leak_nw);
        assert!(t22.periphery_leak_mw_per_mat > t90.periphery_leak_mw_per_mat);
    }

    #[test]
    fn wire_energy_scales_with_bits() {
        let t = ProcessTech::at(Nanometers::new(45.0));
        assert!((t.wire_energy_pj(1.0, 512) / t.wire_energy_pj(1.0, 1) - 512.0).abs() < 1e-9);
    }
}
