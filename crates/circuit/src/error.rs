//! Error types for the circuit-model crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing cache organizations or models.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A geometric parameter must be a power of two.
    NotPowerOfTwo {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// Capacity, block size, and associativity are inconsistent (fewer
    /// than one set).
    TooSmall {
        /// Capacity in bytes.
        capacity_bytes: u64,
        /// Block size in bytes.
        block_bytes: u32,
        /// Associativity.
        associativity: u32,
    },
    /// The cell model lacks a parameter the circuit model needs (process
    /// node or cell size, or any operating parameter for its class).
    IncompleteCell(nvm_llc_cell::CellError),
    /// No candidate organization satisfied the constraints (e.g. an area
    /// budget smaller than one mat).
    NoFeasibleOrganization(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            CircuitError::TooSmall {
                capacity_bytes,
                block_bytes,
                associativity,
            } => write!(
                f,
                "capacity {capacity_bytes} B cannot hold one set of {associativity} × {block_bytes} B blocks"
            ),
            CircuitError::IncompleteCell(e) => write!(f, "incomplete cell model: {e}"),
            CircuitError::NoFeasibleOrganization(why) => {
                write!(f, "no feasible cache organization: {why}")
            }
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::IncompleteCell(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nvm_llc_cell::CellError> for CircuitError {
    fn from(e: nvm_llc_cell::CellError) -> Self {
        CircuitError::IncompleteCell(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CircuitError::NotPowerOfTwo {
            what: "banks",
            value: 3,
        };
        assert!(e.to_string().contains("banks"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn cell_error_converts_and_chains() {
        let inner = nvm_llc_cell::CellError::UnknownTechnology("X".into());
        let outer: CircuitError = inner.clone().into();
        assert!(outer.to_string().contains("incomplete cell model"));
        assert!(Error::source(&outer).is_some());
    }
}
