//! Parameter sweeps over the cache design space.
//!
//! NVSim users explore geometry tradeoffs by editing config files and
//! re-running; this module makes the common sweeps first-class: capacity,
//! associativity, and block size against any cell model, returning the
//! full [`LlcModel`] at every point so callers can plot latency, energy,
//! area, or leakage curves (the `llc_design_space` example does).

use nvm_llc_cell::CellParams;

use crate::error::CircuitError;
use crate::model::LlcModel;
use crate::solve::CacheModeler;

/// Sweeps power-of-two capacities in `[min_bytes, max_bytes]`.
///
/// # Errors
///
/// Propagates the first modeling failure.
pub fn sweep_capacity(
    cell: &CellParams,
    min_bytes: u64,
    max_bytes: u64,
) -> Result<Vec<LlcModel>, CircuitError> {
    let modeler = CacheModeler::new(cell.clone());
    let mut out = Vec::new();
    let mut capacity = min_bytes.max(1024).next_power_of_two();
    while capacity <= max_bytes {
        out.push(modeler.model(capacity)?);
        capacity *= 2;
    }
    Ok(out)
}

/// Sweeps associativities at a fixed capacity.
///
/// # Errors
///
/// Propagates the first modeling failure.
pub fn sweep_associativity(
    cell: &CellParams,
    capacity_bytes: u64,
    ways: &[u32],
) -> Result<Vec<(u32, LlcModel)>, CircuitError> {
    ways.iter()
        .map(|&w| {
            let model = CacheModeler::new(cell.clone())
                .associativity(w)
                .model(capacity_bytes)?;
            Ok((w, model))
        })
        .collect()
}

/// Sweeps block sizes at a fixed capacity.
///
/// # Errors
///
/// Propagates the first modeling failure.
pub fn sweep_block_size(
    cell: &CellParams,
    capacity_bytes: u64,
    block_bytes: &[u32],
) -> Result<Vec<(u32, LlcModel)>, CircuitError> {
    block_bytes
        .iter()
        .map(|&b| {
            let model = CacheModeler::new(cell.clone())
                .block_bytes(b)
                .model(capacity_bytes)?;
            Ok((b, model))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_cell::technologies;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn capacity_sweep_grows_area_monotonically() {
        let models = sweep_capacity(&technologies::chung(), MB, 32 * MB).unwrap();
        assert_eq!(models.len(), 6); // 1,2,4,8,16,32 MB
        for pair in models.windows(2) {
            assert!(pair[1].area.value() > pair[0].area.value());
            assert!(pair[1].capacity.value() > pair[0].capacity.value());
        }
    }

    #[test]
    fn capacity_sweep_latency_is_nondecreasing() {
        let models = sweep_capacity(&technologies::zhang(), MB, 128 * MB).unwrap();
        for pair in models.windows(2) {
            assert!(
                pair[1].read_latency.value() >= pair[0].read_latency.value() * 0.95,
                "{} then {}",
                pair[0].read_latency,
                pair[1].read_latency
            );
        }
    }

    #[test]
    fn associativity_sweep_raises_tag_energy() {
        // More ways = more tags sensed per lookup (E_dyn,tag grows).
        let points = sweep_associativity(&technologies::xue(), 2 * MB, &[4, 8, 16, 32]).unwrap();
        for pair in points.windows(2) {
            assert!(
                pair[1].1.miss_energy.value() > pair[0].1.miss_energy.value(),
                "{}-way {} vs {}-way {}",
                pair[0].0,
                pair[0].1.miss_energy,
                pair[1].0,
                pair[1].1.miss_energy
            );
        }
    }

    #[test]
    fn block_size_sweep_raises_write_energy() {
        // Bigger blocks = more bits per array write.
        let points = sweep_block_size(&technologies::kang(), 2 * MB, &[32, 64, 128]).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].1.write_energy.value() > pair[0].1.write_energy.value());
        }
    }

    #[test]
    fn sweeps_reject_degenerate_geometry() {
        // A 3-way associativity is not a power of two.
        assert!(sweep_associativity(&technologies::xue(), 2 * MB, &[3]).is_err());
    }
}
