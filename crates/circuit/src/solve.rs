//! The cache modeler: cell parameters in, Table III row out.
//!
//! [`CacheModeler`] assembles the mat ([`crate::mat`]) and H-tree
//! ([`crate::htree`]) components into a full [`LlcModel`] using the
//! paper's equations (4)–(8), and can search the organization space like
//! NVSim's internal design-space exploration.

use nvm_llc_cell::units::{Mebibytes, Nanojoules, Nanoseconds, SquareMillimeters, Watts};
use nvm_llc_cell::CellParams;

use crate::error::CircuitError;
use crate::htree::model_htree;
use crate::mat::{model_mat, sense_multiplier};
use crate::model::{LlcModel, ModelSource};
use crate::organization::CacheOrganization;
use crate::technology::ProcessTech;

/// What the organization search optimizes, mirroring NVSim's
/// optimization-target knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizationTarget {
    /// Minimize `t_read` (latency-critical LLC — the paper's setting).
    #[default]
    ReadLatency,
    /// Minimize read energy-delay product.
    ReadEdp,
    /// Minimize total area.
    Area,
    /// Minimize leakage power.
    Leakage,
}

/// Builds [`LlcModel`]s for a memory technology.
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::technologies;
/// use nvm_llc_circuit::solve::CacheModeler;
///
/// let modeler = CacheModeler::new(technologies::zhang());
/// let llc = modeler.model(2 * 1024 * 1024)?;
/// assert!(llc.is_physical());
/// assert!(llc.area.value() < 1.0); // 4 F² at 22 nm is tiny
/// # Ok::<(), nvm_llc_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheModeler {
    cell: CellParams,
    block_bytes: u32,
    associativity: u32,
    target: OptimizationTarget,
}

impl CacheModeler {
    /// Creates a modeler for `cell` with the paper's LLC geometry
    /// (64 B blocks, 16-way).
    pub fn new(cell: CellParams) -> Self {
        CacheModeler {
            cell,
            block_bytes: 64,
            associativity: 16,
            target: OptimizationTarget::ReadLatency,
        }
    }

    /// Overrides the block size (must be a power of two; checked when a
    /// model is built).
    pub fn block_bytes(mut self, bytes: u32) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Overrides the associativity.
    pub fn associativity(mut self, ways: u32) -> Self {
        self.associativity = ways;
        self
    }

    /// Sets the design-space optimization target.
    pub fn target(mut self, target: OptimizationTarget) -> Self {
        self.target = target;
        self
    }

    /// The cell being modeled.
    pub fn cell(&self) -> &CellParams {
        &self.cell
    }

    /// Models a cache of `capacity_bytes` using the default NVSim-like
    /// organization heuristic (≈128 KiB data per mat, 4 banks).
    ///
    /// # Errors
    ///
    /// Propagates organization and cell-completeness errors.
    pub fn model(&self, capacity_bytes: u64) -> Result<LlcModel, CircuitError> {
        self.model_with(&self.default_organization(capacity_bytes)?)
    }

    /// The default organization for a capacity: 4 banks (1 for small
    /// caches), mats sized to hold ≈128 KiB of data each.
    ///
    /// # Errors
    ///
    /// [`CircuitError`] variants for degenerate capacities.
    pub fn default_organization(
        &self,
        capacity_bytes: u64,
    ) -> Result<CacheOrganization, CircuitError> {
        const TARGET_MAT_BYTES: u64 = 128 * 1024;
        let banks: u32 = if capacity_bytes >= 4 * 1024 * 1024 {
            4
        } else {
            2
        };
        let mats_total = (capacity_bytes / TARGET_MAT_BYTES).max(1);
        let mats_per_bank = (mats_total / u64::from(banks)).max(1).next_power_of_two() as u32;
        CacheOrganization::new(
            capacity_bytes,
            self.block_bytes,
            self.associativity,
            banks,
            mats_per_bank,
        )
    }

    /// Searches candidate organizations and returns the model minimizing
    /// the configured [`OptimizationTarget`].
    ///
    /// # Errors
    ///
    /// [`CircuitError::NoFeasibleOrganization`] if no candidate fits.
    pub fn solve_optimal(&self, capacity_bytes: u64) -> Result<LlcModel, CircuitError> {
        let candidates =
            CacheOrganization::candidates(capacity_bytes, self.block_bytes, self.associativity);
        let mut best: Option<LlcModel> = None;
        for org in &candidates {
            let Ok(model) = self.model_with(org) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some(b) => self.score(&model) < self.score(b),
            };
            if better {
                best = Some(model);
            }
        }
        best.ok_or_else(|| {
            CircuitError::NoFeasibleOrganization(format!(
                "no organization for {capacity_bytes} B of {}",
                self.cell.name()
            ))
        })
    }

    fn score(&self, m: &LlcModel) -> f64 {
        match self.target {
            OptimizationTarget::ReadLatency => m.read_latency.value(),
            OptimizationTarget::ReadEdp => m.read_latency.value() * m.hit_energy.value(),
            OptimizationTarget::Area => m.area.value(),
            OptimizationTarget::Leakage => m.leakage.value(),
        }
    }

    /// Models a cache with an explicit organization, applying equations
    /// (4)–(8).
    ///
    /// # Errors
    ///
    /// Propagates cell-completeness errors from the mat model.
    pub fn model_with(&self, org: &CacheOrganization) -> Result<LlcModel, CircuitError> {
        let cell = &self.cell;
        let process = cell.process().ok_or(CircuitError::IncompleteCell(
            nvm_llc_cell::CellError::MissingParam {
                technology: cell.name().to_owned(),
                param: nvm_llc_cell::Param::Process,
            },
        ))?;
        let tech = ProcessTech::at(process);
        let mat = model_mat(cell, org)?;
        let mats = org.total_mats();
        let block_bits = org.block_bytes() * 8;

        // --- Area -----------------------------------------------------------
        let data_area = mat.area_mm2 * f64::from(mats);
        let tag_area =
            data_area * org.tag_bits_total() as f64 / (org.capacity_bytes() as f64 * 8.0);
        let area_mm2 = data_area + tag_area;

        // --- H-tree and equations (4)/(5) ---------------------------------
        let htree = model_htree(&tech, mats, area_mm2, block_bits);
        let read_latency = Nanoseconds::new(2.0 * htree.latency_ns + mat.read_latency_ns);
        let write_latency_set = Nanoseconds::new(htree.latency_ns + mat.write_latency_set_ns);
        let write_latency_reset = Nanoseconds::new(htree.latency_ns + mat.write_latency_reset_ns);

        // --- Tag path -------------------------------------------------------
        let tag_latency = self.tag_latency(&tech, org, area_mm2);
        let tag_energy_nj = self.tag_energy_nj(&tech, org);

        // --- Equations (6)–(8) ---------------------------------------------
        let hit_energy = Nanojoules::new(tag_energy_nj + mat.read_energy_nj + htree.energy_nj);
        let miss_energy = Nanojoules::new(tag_energy_nj);
        let write_energy = Nanojoules::new(tag_energy_nj + mat.write_energy_nj + htree.energy_nj);

        // --- Leakage ----------------------------------------------------
        let tag_leak_scale =
            1.0 + org.tag_bits_total() as f64 / (org.capacity_bytes() as f64 * 8.0);
        let leakage = Watts::new(mat.leakage_w * f64::from(mats) * tag_leak_scale);

        Ok(LlcModel {
            name: cell.name().to_owned(),
            class: cell.class(),
            capacity: Mebibytes::from_bytes(org.capacity_bytes()),
            area: SquareMillimeters::new(area_mm2),
            tag_latency,
            read_latency,
            write_latency_set,
            write_latency_reset,
            hit_energy,
            miss_energy,
            write_energy,
            leakage,
            source: ModelSource::Generated,
        })
    }

    /// Tag lookup latency: set decode, tag sense, and comparison.
    fn tag_latency(
        &self,
        tech: &ProcessTech,
        org: &CacheOrganization,
        area_mm2: f64,
    ) -> Nanoseconds {
        let decode = tech.decoder_delay_ns(org.sets());
        let sense = tech.sense_ns * sense_multiplier(self.cell.class());
        let compare = 2.0 * tech.fo4_ns;
        // Tag macro sits by the port; charge a short wire, not the H-tree.
        let wire = tech.wire_delay_ns(area_mm2.sqrt() * 0.25);
        Nanoseconds::new(decode + sense + compare + wire)
    }

    /// Tag lookup energy (`E_dyn,tag`): decode plus sensing one set's tags.
    fn tag_energy_nj(&self, tech: &ProcessTech, org: &CacheOrganization) -> f64 {
        let bits = f64::from(org.associativity()) * f64::from(org.tag_bits_per_block());
        let decode = tech.decoder_energy_pj(org.sets()) * 1e-3;
        decode + bits * tech.sense_pj_per_bit * sense_multiplier(self.cell.class()) * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_cell::technologies;

    const MB: u64 = 1024 * 1024;

    fn model_of(cell: CellParams) -> LlcModel {
        CacheModeler::new(cell).model(2 * MB).unwrap()
    }

    #[test]
    fn all_table_2_cells_produce_physical_2mb_models() {
        for cell in technologies::all_nvms() {
            let m = model_of(cell);
            assert!(m.is_physical(), "{m}");
            assert_eq!(m.capacity.value(), 2.0);
        }
    }

    #[test]
    fn sram_model_matches_table_3_ballpark() {
        let m = model_of(technologies::sram_baseline());
        // Table III SRAM: area 6.548 mm², tag 0.439 ns, read 1.234 ns,
        // write 0.515 ns, leak 3.438 W. Accept ±50% for the analytical
        // re-derivation.
        assert!((m.area.value() - 6.548).abs() / 6.548 < 0.5, "{m}");
        assert!((m.tag_latency.value() - 0.439).abs() / 0.439 < 0.5, "{m}");
        assert!((m.read_latency.value() - 1.234).abs() / 1.234 < 0.6, "{m}");
        assert!((m.leakage.value() - 3.438).abs() / 3.438 < 0.5, "{m}");
    }

    #[test]
    fn pcram_write_energy_is_worst_in_class() {
        // Table III: Kang_P and Oh_P have the two highest write energies.
        let mut energies: Vec<(String, f64)> = technologies::all_nvms()
            .into_iter()
            .map(|c| {
                let m = model_of(c);
                (m.name.clone(), m.write_energy.value())
            })
            .collect();
        energies.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top2: Vec<&str> = energies[..2].iter().map(|e| e.0.as_str()).collect();
        assert!(top2.contains(&"Kang"), "{energies:?}");
        assert!(top2.contains(&"Oh"), "{energies:?}");
    }

    #[test]
    fn every_nvm_leaks_an_order_less_than_sram() {
        let sram = model_of(technologies::sram_baseline());
        for cell in technologies::all_nvms() {
            let m = model_of(cell);
            assert!(
                m.leakage.value() < sram.leakage.value() / 3.0,
                "{}: {} vs {}",
                m.name,
                m.leakage.value(),
                sram.leakage.value()
            );
        }
    }

    #[test]
    fn zhang_is_smallest_sram_write_is_fastest() {
        let models: Vec<_> = technologies::all_nvms().into_iter().map(model_of).collect();
        let sram = model_of(technologies::sram_baseline());
        let min_area = models
            .iter()
            .min_by(|a, b| a.area.value().partial_cmp(&b.area.value()).unwrap())
            .unwrap();
        assert_eq!(min_area.name, "Zhang");
        for m in &models {
            assert!(m.write_latency().value() > sram.write_latency().value());
        }
    }

    #[test]
    fn equations_4_and_5_hold_structurally() {
        // A read pays two H-tree traversals, a write one: for a slow-write
        // cell the difference (t_write − pulse) < t_read must reflect that.
        let m = model_of(technologies::xue());
        // Write latency strips one H-tree traversal relative to read: the
        // write path (1·htree + pulse + overhead) minus pulse must be less
        // than the full read path.
        assert!(m.write_latency_set.value() > 2.0); // ≥ pulse
        assert!(m.read_latency.value() > m.tag_latency.value());
    }

    #[test]
    fn solve_optimal_beats_or_matches_default_on_target() {
        let modeler = CacheModeler::new(technologies::xue());
        let default = modeler.model(2 * MB).unwrap();
        let optimal = modeler.solve_optimal(2 * MB).unwrap();
        assert!(optimal.read_latency.value() <= default.read_latency.value() + 1e-9);
    }

    #[test]
    fn optimization_targets_trade_off() {
        let area_opt = CacheModeler::new(technologies::chung())
            .target(OptimizationTarget::Area)
            .solve_optimal(2 * MB)
            .unwrap();
        let lat_opt = CacheModeler::new(technologies::chung())
            .target(OptimizationTarget::ReadLatency)
            .solve_optimal(2 * MB)
            .unwrap();
        assert!(area_opt.area.value() <= lat_opt.area.value() + 1e-12);
        assert!(lat_opt.read_latency.value() <= area_opt.read_latency.value() + 1e-12);
    }

    #[test]
    fn capacity_scales_area_and_leakage() {
        let modeler = CacheModeler::new(technologies::hayakawa());
        let small = modeler.model(2 * MB).unwrap();
        let large = modeler.model(32 * MB).unwrap();
        assert!(large.area.value() > 8.0 * small.area.value());
        assert!(large.leakage.value() > small.leakage.value());
        assert!(large.read_latency.value() > small.read_latency.value());
    }

    #[test]
    fn incomplete_cells_error_cleanly() {
        let modeler = CacheModeler::new(technologies::chung_reported());
        assert!(matches!(
            modeler.model(2 * MB),
            Err(CircuitError::IncompleteCell(_))
        ));
    }

    #[test]
    fn mlc_reduces_area_versus_hypothetical_slc() {
        // Xue stores 2 levels per cell; a 2 MB Xue cache uses half the
        // cells of an SLC design, so its area must undercut Jan's despite
        // a bigger cell at a similar node... (63 F² / 2 levels vs 50 F²).
        let xue = model_of(technologies::xue());
        let jan = model_of(technologies::jan());
        assert!(xue.area.value() < jan.area.value());
    }
}
