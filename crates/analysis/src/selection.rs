//! Feature selection on top of the correlation framework: which minimal
//! feature subset would a designer actually profile?
//!
//! The paper "learns which features are most useful in predicting
//! performance and energy" (Section VI, Figure 3); this module makes that
//! operational with greedy forward selection under a simple linear model:
//! repeatedly add the feature that most improves the fit (R² of
//! least-squares on the already-selected features plus the candidate),
//! stopping when the gain falls below a threshold.

use nvm_llc_prism::FeatureKind;

use crate::framework::Observation;

/// One step of the greedy selection trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionStep {
    /// The feature added at this step.
    pub feature: FeatureKind,
    /// Model R² after adding it.
    pub r_squared: f64,
    /// Improvement over the previous step.
    pub gain: f64,
}

/// Greedy forward feature selection for predicting `target` (extracted
/// per observation by the closure) from the Table VI features.
///
/// Returns the selection trace, strongest first. Selection stops when no
/// candidate improves R² by at least `min_gain`, or every feature is in.
pub fn forward_select(
    observations: &[Observation],
    target: impl Fn(&Observation) -> f64,
    min_gain: f64,
) -> Vec<SelectionStep> {
    let y: Vec<f64> = observations.iter().map(&target).collect();
    if y.len() < 2 {
        return Vec::new();
    }
    let mut selected: Vec<FeatureKind> = Vec::new();
    let mut steps: Vec<SelectionStep> = Vec::new();
    let mut best_r2 = 0.0;

    loop {
        let mut best: Option<(FeatureKind, f64)> = None;
        for kind in FeatureKind::ALL {
            if selected.contains(&kind) {
                continue;
            }
            let mut candidate = selected.clone();
            candidate.push(kind);
            let r2 = fit_r_squared(observations, &candidate, &y);
            if best.is_none_or(|(_, b)| r2 > b) {
                best = Some((kind, r2));
            }
        }
        match best {
            Some((kind, r2)) if r2 - best_r2 >= min_gain => {
                steps.push(SelectionStep {
                    feature: kind,
                    r_squared: r2,
                    gain: r2 - best_r2,
                });
                best_r2 = r2;
                selected.push(kind);
            }
            _ => break,
        }
        if selected.len() == FeatureKind::ALL.len() {
            break;
        }
    }
    steps
}

/// R² of an ordinary-least-squares fit of `y` on the given (standardized)
/// features, solved by normal equations with Gaussian elimination.
/// Degenerate systems (collinear or constant features) fall back to the
/// best single-feature fit among the subset.
fn fit_r_squared(observations: &[Observation], features: &[FeatureKind], y: &[f64]) -> f64 {
    let n = y.len();
    let k = features.len();
    if n <= k {
        // Not enough observations to fit this many coefficients honestly.
        return single_feature_fallback(observations, features, y);
    }
    // Build the design matrix with an intercept, features standardized to
    // keep the normal equations well-conditioned.
    let mut x = vec![vec![1.0; k + 1]; n];
    for (j, kind) in features.iter().enumerate() {
        let col: Vec<f64> = observations.iter().map(|o| o.features.get(*kind)).collect();
        let mean = col.iter().sum::<f64>() / n as f64;
        let var = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        if sd == 0.0 {
            return single_feature_fallback(observations, features, y);
        }
        for (i, v) in col.iter().enumerate() {
            x[i][j + 1] = (v - mean) / sd;
        }
    }
    // Normal equations: (XᵀX) β = Xᵀy.
    let dim = k + 1;
    let mut a = vec![vec![0.0; dim + 1]; dim];
    for r in 0..dim {
        for c in 0..dim {
            a[r][c] = (0..n).map(|i| x[i][r] * x[i][c]).sum();
        }
        a[r][dim] = (0..n).map(|i| x[i][r] * y[i]).sum();
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..dim {
        let pivot = (col..dim)
            .max_by(|&p, &q| {
                a[p][col]
                    .abs()
                    .partial_cmp(&a[q][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        if a[pivot][col].abs() < 1e-12 {
            return single_feature_fallback(observations, features, y);
        }
        a.swap(col, pivot);
        let pivot_row = a[col][col..=dim].to_vec();
        for (row, rowvec) in a.iter_mut().enumerate().take(dim) {
            if row != col {
                let factor = rowvec[col] / pivot_row[0];
                for (v, p) in rowvec[col..=dim].iter_mut().zip(&pivot_row) {
                    *v -= factor * p;
                }
            }
        }
    }
    let beta: Vec<f64> = (0..dim).map(|r| a[r][dim] / a[r][r]).collect();

    let mean_y = y.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = (0..n)
        .map(|i| {
            let pred: f64 = (0..dim).map(|j| beta[j] * x[i][j]).sum();
            (y[i] - pred).powi(2)
        })
        .sum();
    (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
}

/// Best single-feature Pearson² among the subset — the honest fallback
/// for degenerate multi-feature fits.
fn single_feature_fallback(
    observations: &[Observation],
    features: &[FeatureKind],
    y: &[f64],
) -> f64 {
    features
        .iter()
        .map(|kind| {
            let xs: Vec<f64> = observations.iter().map(|o| o.features.get(*kind)).collect();
            crate::pearson::pearson(&xs, y).map_or(0.0, |r| r * r)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_prism::FeatureVector;

    fn obs(values: [f64; 10], energy: f64) -> Observation {
        Observation {
            features: FeatureVector::new("w", values),
            energy,
            speedup: 1.0,
        }
    }

    /// Energy = 2·f2 + noiseless; everything else random-ish constants.
    fn linear_in_write_entropy(n: usize) -> Vec<Observation> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                let mut v = [0.0; 10];
                v[2] = x; // GlobalWriteEntropy
                v[0] = (x * 7.0) % 5.0; // decoy
                v[8] = 3.0 + (x * 13.0) % 7.0; // decoy
                obs(v, 2.0 * x + 1.0)
            })
            .collect()
    }

    #[test]
    fn selects_the_true_predictor_first() {
        let data = linear_in_write_entropy(12);
        let steps = forward_select(&data, |o| o.energy, 0.01);
        assert!(!steps.is_empty());
        assert_eq!(steps[0].feature, FeatureKind::GlobalWriteEntropy);
        assert!(steps[0].r_squared > 0.999, "{}", steps[0].r_squared);
    }

    #[test]
    fn stops_when_gain_is_exhausted() {
        let data = linear_in_write_entropy(12);
        let steps = forward_select(&data, |o| o.energy, 0.01);
        // One perfect predictor: nothing else clears the gain bar.
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn two_signal_features_are_both_found() {
        let data: Vec<Observation> = (0..16)
            .map(|i| {
                let x = i as f64;
                let z = ((i * 7) % 16) as f64;
                let mut v = [0.0; 10];
                v[2] = x;
                v[5] = z; // UniqueWrites
                obs(v, 2.0 * x + 5.0 * z)
            })
            .collect();
        let steps = forward_select(&data, |o| o.energy, 0.01);
        let picked: Vec<FeatureKind> = steps.iter().map(|s| s.feature).collect();
        assert!(picked.contains(&FeatureKind::GlobalWriteEntropy));
        assert!(picked.contains(&FeatureKind::UniqueWrites));
        assert!(steps.last().unwrap().r_squared > 0.999);
    }

    #[test]
    fn r_squared_is_monotone_over_steps() {
        let data = linear_in_write_entropy(16);
        let steps = forward_select(&data, |o| o.energy, 0.0001);
        for w in steps.windows(2) {
            assert!(w[1].r_squared >= w[0].r_squared - 1e-12);
        }
    }

    #[test]
    fn tiny_observation_sets_degrade_gracefully() {
        let data = linear_in_write_entropy(3);
        let steps = forward_select(&data, |o| o.energy, 0.01);
        // With 3 points the single-feature fallback still finds a
        // perfectly-correlated feature (several decoys tie at n=3).
        assert!(!steps.is_empty());
        assert!(steps[0].r_squared > 0.99);
        assert!(forward_select(&data[..1], |o| o.energy, 0.01).is_empty());
    }
}
