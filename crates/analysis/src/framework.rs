//! The workload characterization framework (paper Section VI, Figure 3).
//!
//! For each workload, an array of architecture-agnostic features (from
//! PRISM) is compiled together with the measured energy and speedup of a
//! given NVM LLC configuration; linear correlation between each feature
//! and each outcome "learns" which features predict performance and
//! energy — for a *general-purpose* system (all workloads) or a
//! *specialized* one (e.g. the AI subset).

use std::fmt;

use nvm_llc_prism::{FeatureKind, FeatureVector};

use crate::pearson::abs_pearson_or_zero;

/// The outcome axes of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Normalized LLC energy.
    Energy,
    /// Normalized system speedup.
    Speedup,
}

impl Outcome {
    /// Both outcomes in the paper's axis order.
    pub const ALL: [Outcome; 2] = [Outcome::Energy, Outcome::Speedup];
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Energy => f.write_str("energy"),
            Outcome::Speedup => f.write_str("speedup"),
        }
    }
}

/// One workload's observation: its feature vector plus the measured
/// outcomes for the LLC configuration under study.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The workload's architecture-agnostic features.
    pub features: FeatureVector,
    /// Normalized LLC energy for this workload.
    pub energy: f64,
    /// Normalized speedup for this workload.
    pub speedup: f64,
}

/// A 10-feature × 2-outcome matrix of |Pearson| correlations — one
/// Figure 4 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationMatrix {
    /// Label for the panel (e.g. `"Jan_S fixed-capacity"`).
    pub label: String,
    values: [[f64; 2]; 10],
    observations: usize,
}

impl CorrelationMatrix {
    /// Computes the matrix from a set of observations.
    ///
    /// Undefined correlations (constant feature across the subset, fewer
    /// than two observations) are reported as 0 — "no linear signal".
    pub fn compute(label: impl Into<String>, observations: &[Observation]) -> Self {
        let mut values = [[0.0; 2]; 10];
        let energies: Vec<f64> = observations.iter().map(|o| o.energy).collect();
        let speedups: Vec<f64> = observations.iter().map(|o| o.speedup).collect();
        for kind in FeatureKind::ALL {
            let xs: Vec<f64> = observations.iter().map(|o| o.features.get(kind)).collect();
            values[kind.index()][0] = abs_pearson_or_zero(&xs, &energies);
            values[kind.index()][1] = abs_pearson_or_zero(&xs, &speedups);
        }
        CorrelationMatrix {
            label: label.into(),
            values,
            observations: observations.len(),
        }
    }

    /// |Pearson| between a feature and an outcome.
    pub fn get(&self, feature: FeatureKind, outcome: Outcome) -> f64 {
        let col = match outcome {
            Outcome::Energy => 0,
            Outcome::Speedup => 1,
        };
        self.values[feature.index()][col]
    }

    /// Number of observations behind the matrix.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Features ranked by |correlation| with `outcome`, strongest first.
    pub fn ranked(&self, outcome: Outcome) -> Vec<(FeatureKind, f64)> {
        let mut v: Vec<(FeatureKind, f64)> = FeatureKind::ALL
            .iter()
            .map(|k| (*k, self.get(*k, outcome)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite correlations"));
        v
    }

    /// The single strongest feature for `outcome`.
    pub fn top_feature(&self, outcome: Outcome) -> FeatureKind {
        self.ranked(outcome)[0].0
    }

    /// Mean |correlation| of a feature subset with `outcome` — used to
    /// compare e.g. write-side features against totals.
    pub fn mean_correlation(&self, features: &[FeatureKind], outcome: Outcome) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        features.iter().map(|k| self.get(*k, outcome)).sum::<f64>() / features.len() as f64
    }

    /// Renders the matrix as a text heatmap (darker glyph = stronger
    /// correlation), feature rows × outcome columns.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} ({} observations)\n{:<9} {:>7} {:>7}\n",
            self.label, self.observations, "feature", "energy", "speedup"
        );
        for kind in FeatureKind::ALL {
            let e = self.get(kind, Outcome::Energy);
            let s = self.get(kind, Outcome::Speedup);
            out.push_str(&format!(
                "{:<9} {:>5.2} {} {:>5.2} {}\n",
                kind.label(),
                e,
                shade(e),
                s,
                shade(s)
            ));
        }
        out
    }
}

/// Five-level shading glyph for a correlation magnitude in `[0, 1]`.
fn shade(v: f64) -> char {
    match v {
        v if v >= 0.9 => '█',
        v if v >= 0.7 => '▓',
        v if v >= 0.5 => '▒',
        v if v >= 0.3 => '░',
        _ => '·',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(values: [f64; 10], energy: f64, speedup: f64) -> Observation {
        Observation {
            features: FeatureVector::new("w", values),
            energy,
            speedup,
        }
    }

    /// Three observations where energy follows feature 2 (global write
    /// entropy) exactly and speedup follows feature 8 (total reads)
    /// inversely.
    fn synthetic() -> Vec<Observation> {
        vec![
            obs(
                [1.0, 1.0, 10.0, 1.0, 5.0, 5.0, 5.0, 5.0, 100.0, 7.0],
                10.0,
                3.0,
            ),
            obs(
                [2.0, 1.5, 20.0, 2.0, 5.0, 6.0, 4.0, 5.0, 200.0, 7.5],
                20.0,
                2.0,
            ),
            obs(
                [1.5, 1.2, 30.0, 3.0, 5.5, 5.5, 4.5, 5.0, 300.0, 7.2],
                30.0,
                1.0,
            ),
        ]
    }

    #[test]
    fn exact_linear_feature_correlates_fully() {
        let m = CorrelationMatrix::compute("test", &synthetic());
        assert!((m.get(FeatureKind::GlobalWriteEntropy, Outcome::Energy) - 1.0).abs() < 1e-9);
        assert!((m.get(FeatureKind::TotalReads, Outcome::Speedup) - 1.0).abs() < 1e-9);
        assert_eq!(m.observations(), 3);
    }

    #[test]
    fn constant_feature_has_zero_correlation() {
        let m = CorrelationMatrix::compute("test", &synthetic());
        // 90%ft_w is constant (5.0) across observations.
        assert_eq!(m.get(FeatureKind::WriteFootprint90, Outcome::Energy), 0.0);
    }

    #[test]
    fn ranking_puts_strongest_first() {
        let m = CorrelationMatrix::compute("test", &synthetic());
        let ranked = m.ranked(Outcome::Energy);
        assert_eq!(ranked[0].0, m.top_feature(Outcome::Energy));
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(ranked.len(), 10);
    }

    #[test]
    fn mean_correlation_averages_subsets() {
        let m = CorrelationMatrix::compute("test", &synthetic());
        let full = m.mean_correlation(&[FeatureKind::GlobalWriteEntropy], Outcome::Energy);
        assert!((full - 1.0).abs() < 1e-9);
        assert_eq!(m.mean_correlation(&[], Outcome::Energy), 0.0);
    }

    #[test]
    fn render_contains_labels_and_shades() {
        let m = CorrelationMatrix::compute("Jan_S fixed-capacity", &synthetic());
        let text = m.render();
        assert!(text.contains("Jan_S fixed-capacity"));
        assert!(text.contains("H_wg"));
        assert!(text.contains('█'));
    }

    #[test]
    fn empty_observations_yield_all_zero() {
        let m = CorrelationMatrix::compute("empty", &[]);
        for k in FeatureKind::ALL {
            assert_eq!(m.get(k, Outcome::Energy), 0.0);
        }
    }

    #[test]
    fn shade_levels() {
        assert_eq!(shade(0.95), '█');
        assert_eq!(shade(0.75), '▓');
        assert_eq!(shade(0.55), '▒');
        assert_eq!(shade(0.35), '░');
        assert_eq!(shade(0.1), '·');
    }
}
