//! Spearman rank correlation — a robustness companion to the paper's
//! Pearson analysis: identical conclusions under monotone but non-linear
//! feature/outcome relationships strengthen the Section VI story.

use crate::pearson::pearson;

/// Average ranks of a series (ties share the mean of their positions).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut indexed: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < indexed.len() {
        let mut j = i;
        while j + 1 < indexed.len() && indexed[j + 1].1 == indexed[i].1 {
            j += 1;
        }
        // Positions i..=j tie: assign the mean rank (1-based).
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[indexed[k].0] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient.
///
/// Returns `None` under the same conditions as [`pearson`] (fewer than
/// two points, constant series, non-finite values).
///
/// # Examples
///
/// ```
/// use nvm_llc_analysis::spearman::spearman;
///
/// // A monotone but non-linear relationship: Pearson < 1, Spearman = 1.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties_with_mean_positions() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn monotone_nonlinear_is_perfectly_rank_correlated() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        let s = spearman(&x, &y).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        // Pearson sees the curvature.
        let p = crate::pearson::pearson(&x, &y).unwrap();
        assert!(p < s);
    }

    #[test]
    fn anti_monotone_is_minus_one() {
        let x = [1.0, 2.0, 3.0];
        let y = [9.0, 4.0, 1.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases_mirror_pearson() {
        assert_eq!(spearman(&[1.0], &[1.0]), None);
        assert_eq!(spearman(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(spearman(&[1.0, f64::NAN], &[1.0, 2.0]), None);
    }

    #[test]
    fn agrees_with_pearson_on_linear_data() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let s = spearman(&x, &y).unwrap();
        let p = crate::pearson::pearson(&x, &y).unwrap();
        assert!((s - p).abs() < 1e-12);
    }
}
