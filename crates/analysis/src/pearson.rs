//! Pearson linear correlation.

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `None` when the correlation is undefined: fewer than two
/// points, mismatched lengths, a constant series, or non-finite values.
///
/// # Examples
///
/// ```
/// use nvm_llc_analysis::pearson::pearson;
///
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// let anti = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
/// assert!((anti + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Absolute Pearson correlation, `0` when undefined — the quantity the
/// paper's Figure 4 heatmaps display (magnitude of linear relationship).
pub fn abs_pearson_or_zero(x: &[f64], y: &[f64]) -> f64 {
    pearson(x, y).map_or(0.0, f64::abs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_relationships() {
        assert!((pearson(&[0.0, 1.0, 2.0], &[5.0, 7.0, 9.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[0.0, 1.0, 2.0], &[9.0, 7.0, 5.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_symmetric_data_is_near_zero() {
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y = [4.0, 1.0, 0.0, 1.0, 4.0]; // y = x², even function
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn undefined_cases_return_none() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn abs_helper_zeroes_undefined() {
        assert_eq!(abs_pearson_or_zero(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        assert!((abs_pearson_or_zero(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_is_symmetric_and_scale_invariant() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0];
        let y = [2.0, 3.0, 1.0, 9.0, 4.0];
        let a = pearson(&x, &y).unwrap();
        let b = pearson(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-12);
        let scaled: Vec<f64> = x.iter().map(|v| v * 100.0 + 7.0).collect();
        let c = pearson(&scaled, &y).unwrap();
        assert!((a - c).abs() < 1e-12);
    }
}
