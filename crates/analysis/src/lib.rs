//! # nvm-llc-analysis — feature/outcome correlation framework
//!
//! Implements the paper's Section VI: Pearson linear correlation between
//! architecture-agnostic workload features (from `nvm-llc-prism`) and the
//! measured energy/speedup of NVM-based LLC configurations (from
//! `nvm-llc-sim`), packaged as the per-technology heatmap panels of
//! Figure 4.
//!
//! ```
//! use nvm_llc_analysis::{CorrelationMatrix, Observation, Outcome};
//! use nvm_llc_prism::FeatureVector;
//!
//! let observations = vec![
//!     Observation { features: FeatureVector::new("a", [1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0, 1.0]), energy: 2.0, speedup: 1.0 },
//!     Observation { features: FeatureVector::new("b", [2.0, 0.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 6.0, 2.0]), energy: 4.0, speedup: 1.1 },
//!     Observation { features: FeatureVector::new("c", [3.0, 0.0, 6.0, 0.0, 0.0, 0.0, 0.0, 0.0, 7.0, 3.0]), energy: 6.0, speedup: 1.2 },
//! ];
//! let matrix = CorrelationMatrix::compute("demo", &observations);
//! assert!(matrix.get(nvm_llc_prism::FeatureKind::GlobalWriteEntropy, Outcome::Energy) > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod framework;
pub mod pearson;
pub mod selection;
pub mod spearman;

pub use framework::{CorrelationMatrix, Observation, Outcome};
pub use pearson::{abs_pearson_or_zero, pearson};
pub use selection::{forward_select, SelectionStep};
pub use spearman::spearman;

#[cfg(test)]
mod proptests {
    use crate::pearson::pearson;
    use proptest::prelude::*;

    proptest! {
        /// Pearson is always in [-1, 1] when defined.
        #[test]
        fn pearson_bounded(
            xy in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..100),
        ) {
            let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
            let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0..=1.0).contains(&r));
            }
        }

        /// Correlation with an affine transform of itself is ±1.
        #[test]
        fn affine_self_correlation(
            x in proptest::collection::vec(-1e3f64..1e3, 3..50),
            a in -10.0f64..10.0,
            b in -100.0f64..100.0,
        ) {
            prop_assume!(a.abs() > 1e-6);
            // Skip near-constant series.
            let spread = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - x.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assume!(spread > 1e-6);
            let y: Vec<f64> = x.iter().map(|v| a * v + b).collect();
            let r = pearson(&x, &y).unwrap();
            prop_assert!((r.abs() - 1.0).abs() < 1e-6);
            prop_assert_eq!(r.signum(), a.signum());
        }
    }
}
