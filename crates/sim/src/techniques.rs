//! NVM write-reduction techniques from the paper's related-work taxonomy
//! (Section I): architectural *cache bypassing* for dead-on-arrival
//! blocks \[14, 16, 17, 21\] and device-level *differential / early-
//! terminated writes* \[19, 23\] that only drive the bits that actually
//! flip.
//!
//! Both are off by default — the paper's evaluation runs a plain LLC —
//! and are exercised by the ablation bench.

/// How much of the full block-write energy an LLC write costs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WriteMode {
    /// Every write drives all bits (the paper's baseline model).
    #[default]
    Full,
    /// Differential write / early write termination: only flipped bits
    /// are driven, costing `flip_fraction` of the data-write energy
    /// (typical observed flip rates are 0.3–0.5).
    Differential {
        /// Expected fraction of bits that flip per block write, in
        /// `(0, 1]`.
        flip_fraction: f64,
    },
}

impl WriteMode {
    /// Multiplier applied to the data-write dynamic energy.
    pub fn energy_factor(self) -> f64 {
        match self {
            WriteMode::Full => 1.0,
            WriteMode::Differential { flip_fraction } => flip_fraction.clamp(0.0, 1.0),
        }
    }
}

/// A small tagless dead-block predictor driving LLC fill bypass.
///
/// Blocks that were filled and then evicted without a single re-reference
/// were dead on arrival: allocating them wasted an NVM array write and a
/// potentially useful victim. The predictor hashes block addresses into a
/// table of saturating counters — trained up on dead evictions, down on
/// reused ones — and bypasses the next fill once a counter saturates.
#[derive(Debug, Clone)]
pub struct DeadBlockPredictor {
    counters: Vec<u8>,
    mask: u64,
    threshold: u8,
    bypasses: u64,
}

/// Counter ceiling (2-bit counters).
const COUNTER_MAX: u8 = 3;

impl DeadBlockPredictor {
    /// Creates a predictor with `2^table_bits` counters and the given
    /// bypass threshold (a block is bypassed once its counter reaches it).
    pub fn new(table_bits: u8, threshold: u8) -> Self {
        let size = 1usize << table_bits.clamp(4, 24);
        DeadBlockPredictor {
            counters: vec![0; size],
            mask: size as u64 - 1,
            threshold: threshold.clamp(1, COUNTER_MAX),
            bypasses: 0,
        }
    }

    /// The default configuration used by the ablation: 4096 counters,
    /// bypass at 2.
    pub fn default_table() -> Self {
        Self::new(12, 2)
    }

    fn index(&self, block: u64) -> usize {
        // Mix the bits so streaming patterns do not alias to one counter.
        let h = block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20;
        (h & self.mask) as usize
    }

    /// Trains the predictor on an eviction: dead victims (never reused)
    /// push toward bypassing, reused victims pull away.
    pub fn train(&mut self, block: u64, reused: bool) {
        let idx = self.index(block);
        let c = &mut self.counters[idx];
        if reused {
            *c = c.saturating_sub(1);
        } else {
            *c = (*c + 1).min(COUNTER_MAX);
        }
    }

    /// Whether the next fill of `block` should bypass the LLC.
    pub fn should_bypass(&mut self, block: u64) -> bool {
        let bypass = self.counters[self.index(block)] >= self.threshold;
        if bypass {
            self.bypasses += 1;
        }
        bypass
    }

    /// Fills bypassed so far.
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_mode_factors() {
        assert_eq!(WriteMode::Full.energy_factor(), 1.0);
        assert_eq!(
            WriteMode::Differential { flip_fraction: 0.4 }.energy_factor(),
            0.4
        );
        assert_eq!(
            WriteMode::Differential { flip_fraction: 7.0 }.energy_factor(),
            1.0
        );
        assert_eq!(WriteMode::default(), WriteMode::Full);
    }

    #[test]
    fn predictor_learns_dead_blocks() {
        let mut p = DeadBlockPredictor::default_table();
        let block = 0xABCD;
        assert!(!p.should_bypass(block));
        p.train(block, false);
        p.train(block, false);
        assert!(p.should_bypass(block));
        assert_eq!(p.bypasses(), 1);
    }

    #[test]
    fn reuse_untrains_the_predictor() {
        let mut p = DeadBlockPredictor::default_table();
        let block = 0x1234;
        p.train(block, false);
        p.train(block, false);
        assert!(p.should_bypass(block));
        p.train(block, true);
        p.train(block, true);
        assert!(!p.should_bypass(block));
    }

    #[test]
    fn counters_saturate_both_ways() {
        let mut p = DeadBlockPredictor::new(6, 2);
        let block = 99;
        for _ in 0..10 {
            p.train(block, false);
        }
        assert!(p.should_bypass(block));
        for _ in 0..10 {
            p.train(block, true);
        }
        assert!(!p.should_bypass(block));
    }

    #[test]
    fn distinct_blocks_rarely_alias() {
        let mut p = DeadBlockPredictor::default_table();
        p.train(1, false);
        p.train(1, false);
        // A far-away block should not inherit block 1's deadness.
        let aliases = (1000u64..1100).filter(|b| p.should_bypass(*b)).count();
        assert!(aliases <= 2, "{aliases} aliases");
    }
}
