//! Write-endurance and lifetime analysis (the paper's Section VII names
//! lifetime characterization as the next step after this work; Section II
//! gives the per-class endurance limits this module consumes).
//!
//! The tracker counts array writes per LLC set as the simulation runs and
//! derives a lifetime estimate from the *hottest* set — NVM caches die at
//! their most-written line, not their average one — optionally applying
//! an intra-set-agnostic wear-leveling remap (a Start-Gap-style rotating
//! XOR of the set index, the paper's reference \[20\] category).

use std::fmt;

use nvm_llc_cell::units::Seconds;
use nvm_llc_cell::MemClass;

/// Seconds per (365-day) year.
const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// Wear-leveling policy applied to the physical set mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WearPolicy {
    /// No leveling: logical set = physical set.
    #[default]
    None,
    /// Rotate an XOR key over the set index every `period` writes,
    /// spreading hot logical sets over many physical sets.
    RotateXor {
        /// Writes between key rotations.
        period: u64,
    },
}

/// Tracks per-physical-set write counts during a run.
#[derive(Debug, Clone)]
pub struct EnduranceTracker {
    set_writes: Vec<u64>,
    set_mask: u64,
    policy: WearPolicy,
    key: u64,
    writes_since_rotation: u64,
}

impl EnduranceTracker {
    /// Creates a tracker for an LLC with `sets` sets (rounded up to a
    /// power of two).
    pub fn new(sets: u64, policy: WearPolicy) -> Self {
        let sets = sets.max(1).next_power_of_two();
        EnduranceTracker {
            set_writes: vec![0; sets as usize],
            set_mask: sets - 1,
            policy,
            key: 0,
            writes_since_rotation: 0,
        }
    }

    /// Records one array write to the set holding `block`.
    pub fn record(&mut self, block: u64) {
        let physical = (block ^ self.key) & self.set_mask;
        self.set_writes[physical as usize] += 1;
        if let WearPolicy::RotateXor { period } = self.policy {
            self.writes_since_rotation += 1;
            if self.writes_since_rotation >= period.max(1) {
                self.writes_since_rotation = 0;
                // A multiplicative odd constant walks the key through the
                // whole index space before repeating.
                self.key = self.key.wrapping_add(0x9E37_79B9) & self.set_mask;
            }
        }
    }

    /// Per-physical-set write counts.
    pub fn set_writes(&self) -> &[u64] {
        &self.set_writes
    }

    /// Finalizes into a report for a cache of `ways` ways built from
    /// `class` cells, over an execution of `exec_time`.
    pub fn report(&self, class: MemClass, ways: u32, exec_time: Seconds) -> EnduranceReport {
        let total: u64 = self.set_writes.iter().sum();
        let max = self.set_writes.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / self.set_writes.len() as f64;
        // Within a set, fills/writebacks spread over the ways; the
        // worst-case cell sees its share of the hottest set's writes.
        let worst_cell_writes = max as f64 / f64::from(ways.max(1));
        let t = exec_time.value().max(1e-12);
        let worst_cell_write_rate_hz = worst_cell_writes / t;
        let endurance = class.write_endurance();
        let lifetime_years = if worst_cell_write_rate_hz == 0.0 {
            f64::INFINITY
        } else {
            endurance / worst_cell_write_rate_hz / SECONDS_PER_YEAR
        };
        EnduranceReport {
            class,
            total_writes: total,
            max_set_writes: max,
            mean_set_writes: mean,
            worst_cell_write_rate_hz,
            lifetime_years,
        }
    }
}

/// Lifetime summary of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnduranceReport {
    /// Cell technology class (sets the endurance limit).
    pub class: MemClass,
    /// Total LLC array writes observed.
    pub total_writes: u64,
    /// Writes into the hottest set.
    pub max_set_writes: u64,
    /// Mean writes per set (over all sets).
    pub mean_set_writes: f64,
    /// Sustained write rate of the worst-case cell, Hz.
    pub worst_cell_write_rate_hz: f64,
    /// Years until the worst-case cell exhausts its endurance at the
    /// observed rate.
    pub lifetime_years: f64,
}

impl EnduranceReport {
    /// Write imbalance: hottest set over mean set (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        if self.mean_set_writes == 0.0 {
            1.0
        } else {
            self.max_set_writes as f64 / self.mean_set_writes
        }
    }
}

impl fmt::Display for EnduranceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} writes, hottest set {} ({:.1}× mean), worst cell {:.0} wr/s, \
             lifetime {:.3e} years",
            self.class,
            self.total_writes,
            self.max_set_writes,
            self.imbalance(),
            self.worst_cell_write_rate_hz,
            self.lifetime_years
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_writes_have_no_imbalance() {
        let mut t = EnduranceTracker::new(16, WearPolicy::None);
        for block in 0..1600u64 {
            t.record(block);
        }
        let r = t.report(MemClass::Rram, 16, Seconds::new(1.0));
        assert_eq!(r.total_writes, 1600);
        assert_eq!(r.max_set_writes, 100);
        assert!((r.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_set_dominates_lifetime() {
        let mut t = EnduranceTracker::new(16, WearPolicy::None);
        for _ in 0..1000u64 {
            t.record(5); // hammer one set
        }
        for block in 0..16u64 {
            t.record(block);
        }
        let r = t.report(MemClass::Pcram, 16, Seconds::new(1.0));
        assert_eq!(r.max_set_writes, 1001);
        assert!(r.imbalance() > 10.0);
    }

    #[test]
    fn wear_leveling_reduces_imbalance() {
        let hammer = |policy| {
            let mut t = EnduranceTracker::new(64, policy);
            for _ in 0..10_000u64 {
                t.record(7);
            }
            t.report(MemClass::Rram, 16, Seconds::new(1.0)).imbalance()
        };
        let none = hammer(WearPolicy::None);
        let leveled = hammer(WearPolicy::RotateXor { period: 100 });
        assert!(
            leveled < none / 4.0,
            "leveled {leveled} vs unleveled {none}"
        );
    }

    #[test]
    fn wear_leveling_extends_lifetime() {
        let lifetime = |policy| {
            let mut t = EnduranceTracker::new(64, policy);
            for _ in 0..10_000u64 {
                t.record(7);
            }
            t.report(MemClass::Pcram, 16, Seconds::new(1.0))
                .lifetime_years
        };
        assert!(lifetime(WearPolicy::RotateXor { period: 100 }) > 5.0 * lifetime(WearPolicy::None));
    }

    #[test]
    fn endurance_limits_order_lifetimes() {
        // Same write pattern: PCRAM (1e8) dies before RRAM (1e10) dies
        // before STTRAM (1e15).
        let report = |class| {
            let mut t = EnduranceTracker::new(16, WearPolicy::None);
            for block in 0..3200u64 {
                t.record(block);
            }
            t.report(class, 16, Seconds::new(1.0))
        };
        let pcram = report(MemClass::Pcram).lifetime_years;
        let rram = report(MemClass::Rram).lifetime_years;
        let sttram = report(MemClass::Sttram).lifetime_years;
        assert!(pcram < rram);
        assert!(rram < sttram);
    }

    #[test]
    fn idle_tracker_reports_infinite_lifetime() {
        let t = EnduranceTracker::new(16, WearPolicy::None);
        let r = t.report(MemClass::Pcram, 16, Seconds::new(1.0));
        assert_eq!(r.total_writes, 0);
        assert!(r.lifetime_years.is_infinite());
        assert_eq!(r.imbalance(), 1.0);
    }

    #[test]
    fn display_is_informative() {
        let mut t = EnduranceTracker::new(16, WearPolicy::None);
        t.record(1);
        let s = t.report(MemClass::Rram, 16, Seconds::new(1.0)).to_string();
        assert!(s.contains("lifetime"));
        assert!(s.contains("RRAM"));
    }
}
