//! Set-associative cache arrays with pluggable replacement.

use crate::policy::{PolicyState, ReplacementPolicy};

/// Replacement policy selector for a cache array — re-exported from
/// [`crate::policy`] under its historical name (the original subsystem
/// only knew LRU and random).
pub use crate::policy::PolicyKind as Replacement;

/// A line displaced by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block address of the victim.
    pub block: u64,
    /// Whether the victim was dirty (needs writing back).
    pub dirty: bool,
    /// Whether the victim was ever re-referenced after its fill — dead-
    /// on-arrival blocks (never reused) are what bypass predictors hunt.
    pub reused: bool,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// The displaced victim, if an allocation evicted one.
    pub evicted: Option<Eviction>,
}

impl AccessOutcome {
    /// The dirty victim's block address, if the eviction requires a
    /// writeback.
    pub fn writeback(&self) -> Option<u64> {
        self.evicted.filter(|e| e.dirty).map(|e| e.block)
    }
}

/// One cache line's replacement-relevant state, readable by
/// [`ReplacementPolicy::victim`] implementations (the tag stays
/// private — policies decide *which way* dies, not address identity).
#[derive(Debug, Clone, Copy, Default)]
pub struct Line {
    pub(crate) tag: u64,
    /// Whether the line holds a block.
    pub valid: bool,
    /// Whether the block has been written since its fill (a dirty
    /// victim costs a writeback — what the endurance policy avoids).
    pub dirty: bool,
    /// Whether the block was re-referenced after its fill.
    pub reused: bool,
    /// Recency stamp (the array's access clock at the last touch).
    pub stamp: u64,
}

/// A write-back, write-allocate set-associative cache over 64 B block
/// addresses.
///
/// Purely functional state (no timing): the timing model lives in
/// [`crate::system`]. Addresses are *block* addresses (byte address / 64).
///
/// The line array is a single flat allocation (`num_sets × ways`, set-
/// major): one access touches one contiguous `ways`-sized slice, and the
/// set index/tag split is a precomputed mask and shift — the simulator
/// replays hundreds of millions of accesses, so the per-access `Vec`
/// indirection this replaces was a measurable cost.
///
/// # Examples
///
/// ```
/// use nvm_llc_sim::cache::{Replacement, SetAssocCache};
///
/// let mut l1 = SetAssocCache::new(64, 2, Replacement::Lru);
/// assert!(!l1.access(0x10, false).hit); // cold miss
/// assert!(l1.access(0x10, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// Flat set-major line array: set `s` occupies
    /// `lines[s * ways .. (s + 1) * ways]`.
    lines: Vec<Line>,
    ways: usize,
    set_mask: u64,
    /// `log2(num_sets)`: the tag is the block address shifted right by
    /// this (equivalent to dividing by the set count).
    set_shift: u32,
    /// Replacement state, dispatched through
    /// [`crate::policy::ReplacementPolicy`]. Recency stamps stay on the
    /// lines themselves (LRU's fast path, and the age source for the
    /// endurance policy) — the policy owns everything else.
    policy: PolicyState,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache with `num_sets` sets of `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics unless `num_sets` is a power of two and `ways ≥ 1` —
    /// configurations come from validated [`crate::config`] values.
    pub fn new(num_sets: u64, ways: u32, replacement: Replacement) -> Self {
        assert!(num_sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways >= 1, "needs at least one way");
        SetAssocCache {
            lines: vec![Line::default(); (num_sets * u64::from(ways)) as usize],
            ways: ways as usize,
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            policy: PolicyState::new(replacement, num_sets, ways as usize),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The replacement policy this array dispatches through.
    pub fn replacement(&self) -> Replacement {
        self.policy.kind()
    }

    /// Builds a cache from a capacity/associativity/block geometry.
    pub fn with_geometry(
        capacity_bytes: u64,
        associativity: u32,
        block_bytes: u32,
        replacement: Replacement,
    ) -> Self {
        let sets = (capacity_bytes / (u64::from(block_bytes) * u64::from(associativity))).max(1);
        Self::new(sets.next_power_of_two(), associativity, replacement)
    }

    /// The set `block` maps to: the low `log2(num_sets)` block-address
    /// bits, identical to `block % num_sets` (introspection for tests and
    /// debugging — the hot path inlines the same mask).
    pub fn set_index(&self, block: u64) -> u64 {
        block & self.set_mask
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.set_mask + 1
    }

    /// Associativity (lines per set).
    pub fn ways(&self) -> u32 {
        self.ways as u32
    }

    /// Accesses `block`; on a miss the block is allocated
    /// (write-allocate), possibly evicting a victim. `is_write` marks the
    /// line dirty.
    pub fn access(&mut self, block: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        let clock = self.clock;
        let base = set_idx * self.ways;
        let set = &mut self.lines[base..base + self.ways];

        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            let line = &mut set[way];
            line.stamp = clock;
            line.dirty |= is_write;
            line.reused = true;
            self.hits += 1;
            self.policy.touch(set_idx, way);
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;

        // Victim: first invalid way (policy unconsulted), else the
        // policy picks among a full set.
        let victim_idx = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => self.policy.victim(set_idx, set),
        };
        let victim = set[victim_idx];
        let evicted = victim.valid.then(|| {
            self.policy.evict(set_idx, victim_idx);
            Eviction {
                block: (victim.tag << self.set_shift) | set_idx as u64,
                dirty: victim.dirty,
                reused: victim.reused,
            }
        });
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            reused: false,
            stamp: clock,
        };
        self.policy.fill(set_idx, victim_idx, block);
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Accesses `block` without allocating on a miss — the bypass path:
    /// hits update recency and count normally; misses count but leave the
    /// set untouched.
    pub fn access_no_alloc(&mut self, block: u64) -> bool {
        self.clock += 1;
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        let clock = self.clock;
        let base = set_idx * self.ways;
        let set = &mut self.lines[base..base + self.ways];
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            let line = &mut set[way];
            line.stamp = clock;
            line.reused = true;
            self.hits += 1;
            self.policy.touch(set_idx, way);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Allocates `block` dirty *without* counting an access — used to sink
    /// writebacks arriving from an upper level (their timing and energy
    /// are charged by the caller).
    ///
    /// Returns an evicted dirty block, if any.
    pub fn fill_dirty(&mut self, block: u64) -> Option<u64> {
        self.fill_dirty_full(block)
            .filter(|e| e.dirty)
            .map(|e| e.block)
    }

    /// Like [`SetAssocCache::fill_dirty`] but returns the full eviction
    /// record (clean victims included) — inclusive hierarchies must
    /// back-invalidate those too.
    pub fn fill_dirty_full(&mut self, block: u64) -> Option<Eviction> {
        let outcome = self.access(block, true);
        // Writebacks are not demand traffic; undo the stat increments.
        if outcome.hit {
            self.hits -= 1;
        } else {
            self.misses -= 1;
        }
        outcome.evicted
    }

    /// Allocates `block` clean without counting demand stats — the
    /// prefetch path. Returns the full eviction record so the caller can
    /// cascade dirty victims.
    pub fn fill_clean(&mut self, block: u64) -> Option<Eviction> {
        let outcome = self.access(block, false);
        if outcome.hit {
            self.hits -= 1;
        } else {
            self.misses -= 1;
        }
        outcome.evicted
    }

    /// Invalidates `block` if resident; returns whether the dropped line
    /// was dirty. Used for inclusive-hierarchy back-invalidation.
    pub fn invalidate(&mut self, block: u64) -> Option<bool> {
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        let base = set_idx * self.ways;
        let line = self.lines[base..base + self.ways]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)?;
        line.valid = false;
        Some(line.dirty)
    }

    /// All currently resident block addresses, set-major.
    ///
    /// Allocation-free: yields straight from the line array, so endurance
    /// and hybrid analyses can sweep residency without materializing a
    /// `Vec` per call (collect if ordering/sorting is needed).
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines
            .chunks(self.ways)
            .enumerate()
            .flat_map(move |(set_idx, set)| {
                set.iter()
                    .filter(|l| l.valid)
                    .map(move |l| (l.tag << self.set_shift) | set_idx as u64)
            })
    }

    /// Whether `block` is currently resident (no state change).
    pub fn contains(&self, block: u64) -> bool {
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        let base = set_idx * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Demand accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio over demand accesses (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(16, 2, Replacement::Lru);
        assert!(!c.access(5, false).hit);
        assert!(c.access(5, false).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: blocks map to same set when set bits equal.
        let mut c = SetAssocCache::new(1, 2, Replacement::Lru);
        c.access(1, false);
        c.access(2, false);
        c.access(1, false); // 2 is now LRU
        c.access(3, false); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = SetAssocCache::new(1, 1, Replacement::Lru);
        assert_eq!(c.access(7, true).writeback(), None);
        let out = c.access(9, false);
        assert!(!out.hit);
        assert_eq!(out.writeback(), Some(7));
        // Block 7 was never re-referenced after its fill.
        assert!(!out.evicted.unwrap().reused);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = SetAssocCache::new(1, 1, Replacement::Lru);
        c.access(7, false);
        assert_eq!(c.access(9, false).writeback(), None);
    }

    #[test]
    fn write_then_read_keeps_dirty_until_evicted() {
        let mut c = SetAssocCache::new(1, 1, Replacement::Lru);
        c.access(7, true);
        c.access(7, false); // read does not clean it
        let out = c.access(9, false);
        assert_eq!(out.writeback(), Some(7));
        // And this victim *was* reused before eviction.
        assert!(out.evicted.unwrap().reused);
    }

    #[test]
    fn fill_dirty_does_not_perturb_demand_stats() {
        let mut c = SetAssocCache::new(16, 2, Replacement::Lru);
        c.access(1, false);
        let (h, m) = (c.hits(), c.misses());
        let wb = c.fill_dirty(33);
        assert_eq!(wb, None);
        assert_eq!((c.hits(), c.misses()), (h, m));
        assert!(c.contains(33));
    }

    #[test]
    fn set_index_uses_low_block_bits() {
        let mut c = SetAssocCache::new(16, 1, Replacement::Lru);
        c.access(0, false);
        c.access(16, false); // same set (block % 16 == 0), evicts 0
        assert!(!c.contains(0));
        assert!(c.contains(16));
        assert!(c.access(3, false).writeback().is_none()); // different set
    }

    #[test]
    fn random_policy_eventually_evicts_everything() {
        let mut c = SetAssocCache::new(1, 4, Replacement::Random);
        for b in 0..4 {
            c.access(b, false);
        }
        for b in 100..200 {
            c.access(b, false);
        }
        // All original lines must be gone after 100 conflicting fills.
        for b in 0..4 {
            assert!(!c.contains(b), "block {b} survived");
        }
    }

    #[test]
    fn geometry_constructor_matches_table_4_l1() {
        let c = SetAssocCache::with_geometry(32 * 1024, 8, 64, Replacement::Lru);
        // 32 KB / (64 B × 8) = 64 sets.
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = SetAssocCache::new(3, 2, Replacement::Lru);
    }

    #[test]
    fn invalidate_drops_lines_and_reports_dirtiness() {
        let mut c = SetAssocCache::new(4, 2, Replacement::Lru);
        c.access(1, true);
        c.access(2, false);
        assert_eq!(c.invalidate(1), Some(true));
        assert_eq!(c.invalidate(2), Some(false));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(1));
        assert_eq!(c.resident_blocks().next(), None);
    }

    #[test]
    fn resident_blocks_reconstruct_addresses() {
        let mut c = SetAssocCache::new(8, 2, Replacement::Lru);
        for b in [3u64, 11, 100] {
            c.access(b, false);
        }
        let mut resident: Vec<u64> = c.resident_blocks().collect();
        resident.sort_unstable();
        assert_eq!(resident, vec![3, 11, 100]);
    }

    #[test]
    fn capacity_working_set_fits_exactly() {
        // A working set equal to capacity must fully hit after warmup.
        let mut c = SetAssocCache::new(8, 2, Replacement::Lru);
        for round in 0..3 {
            for b in 0..16u64 {
                let hit = c.access(b, false).hit;
                if round > 0 {
                    assert!(hit, "round {round} block {b}");
                }
            }
        }
    }

    #[test]
    fn lru_eviction_order_is_strictly_by_recency() {
        // Scripted regression for the flat-array refactor: in a single
        // 4-way set, fills must evict exactly in least-recently-used order,
        // and a touch must rescue a line from its eviction slot.
        let mut c = SetAssocCache::new(1, 4, Replacement::Lru);
        for b in [10u64, 20, 30, 40] {
            c.access(b, false);
        }
        c.access(10, false); // touch: LRU order is now 20, 30, 40, 10
        let evicted: Vec<u64> = [50u64, 60, 70, 80]
            .into_iter()
            .map(|b| {
                c.access(b, false)
                    .evicted
                    .expect("full set must evict")
                    .block
            })
            .collect();
        assert_eq!(evicted, vec![20, 30, 40, 10]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Table III-shaped geometries: LLC sweeps cover 1–64 MB at 8/16
        /// ways with 64 B blocks, i.e. sets from 2^6 up to 2^15 here.
        const WAYS: [u32; 5] = [1, 2, 4, 8, 16];

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The shift/mask decomposition must agree with the original
            /// modulo/divide arithmetic for every block address.
            #[test]
            fn shift_mask_matches_modulo_arithmetic(
                log_sets in 6u32..16,
                way_idx in 0usize..WAYS.len(),
                block in 0u64..(1u64 << 40),
            ) {
                let (num_sets, ways) = (1u64 << log_sets, WAYS[way_idx]);
                let c = SetAssocCache::new(num_sets, ways, Replacement::Lru);
                let set = c.set_index(block);
                let tag = block >> c.set_shift;
                prop_assert_eq!(set, block % num_sets);
                prop_assert_eq!(tag, block / num_sets);
                // Address reconstruction (used by eviction reporting) must
                // round-trip through the (tag, set) split.
                prop_assert_eq!((tag << c.set_shift) | set, block);
            }

            /// Miss/hit accounting is invariant across geometries: re-running
            /// the same block stream yields identical counters and residency.
            #[test]
            fn access_stream_is_deterministic(
                log_sets in 6u32..16,
                way_idx in 0usize..WAYS.len(),
                blocks in proptest::collection::vec(0u64..10_000, 1..200),
            ) {
                let (num_sets, ways) = (1u64 << log_sets, WAYS[way_idx]);
                let mut a = SetAssocCache::new(num_sets, ways, Replacement::Lru);
                let mut b = SetAssocCache::new(num_sets, ways, Replacement::Lru);
                for &blk in &blocks {
                    let ra = a.access(blk, blk % 3 == 0);
                    let rb = b.access(blk, blk % 3 == 0);
                    prop_assert_eq!(ra.hit, rb.hit);
                    prop_assert_eq!(ra.evicted, rb.evicted);
                }
                prop_assert_eq!((a.hits(), a.misses()), (b.hits(), b.misses()));
                let (mut ra, mut rb): (Vec<u64>, Vec<u64>) =
                    (a.resident_blocks().collect(), b.resident_blocks().collect());
                ra.sort_unstable();
                rb.sort_unstable();
                prop_assert_eq!(ra, rb);
            }
        }
    }
}
