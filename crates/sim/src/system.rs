//! The trace-driven multicore timing and energy simulator.
//!
//! An interval-model simulator in the spirit of Sniper: per-core cycle
//! accounting with ROB-bounded miss overlap, a three-level write-back
//! cache hierarchy (private L1D/L2, shared LLC), an NVM-aware LLC with
//! asymmetric read/write latency and energy, and a DRAM backend.
//!
//! ## Functional/timing split
//!
//! The simulator is factored Sniper-style into a **functional** half
//! (which level serves each access, what writes back, what invalidates —
//! [`System::functional_walk`], depending only on trace + geometry) and a
//! **timing/energy** half ([`TimingEngine`], applying one technology's
//! latencies, port contention, ROB/MSHR overlap, DRAM model, and energy).
//! [`System::run`] fuses the two in a single pass; [`System::record`]
//! captures the functional half as an [`OutcomeTape`] that
//! [`System::replay`] can re-time for any technology sharing the
//! geometry. Both paths drive the *same* `TimingEngine` code over the
//! same event sequence, so replayed results are bit-identical to direct
//! runs by construction. [`System::run_cached`] memoizes tapes
//! process-wide via [`crate::tape::cache`].
//!
//! ## Modeling decisions (and where they come from)
//!
//! * **LLC writes are off the critical path** by default — the paper's
//!   Section V-A.7 explicitly credits this Sniper assumption for NVM write
//!   latency not showing in execution time. [`LlcWritePolicy`] exposes the
//!   alternatives for the ablation study.
//! * **LLC writes that pay `E_dyn,write` are L2 dirty writebacks** —
//!   equation (8) of the paper. Miss fills allocate the block but are
//!   charged per equation (7) (`E_dyn,miss` = tag energy), matching the
//!   paper's energy model; fills are still counted separately for
//!   endurance-style analyses.
//! * **LLC hit latency is partially hidden** by the out-of-order window:
//!   loads expose [`LLC_HIT_EXPOSURE`] of the tag+data latency. DRAM
//!   misses use the full ROB-shadow interval rule below.
//! * **Miss overlap** uses the classic interval-model rule: the first miss
//!   of a cluster pays the full memory latency; further misses within one
//!   ROB-width of instructions are latency-overlapped and pay only the
//!   DRAM bandwidth floor (the 64 B transfer occupancy).
//! * **Store latency is absorbed by the store queue** (stores update state
//!   and generate traffic but do not stall the core).
//! * Coherence traffic between private caches is not modeled (threads
//!   mostly partition their data; the paper's metrics are LLC-centric).
//!   Instruction fetch is assumed to hit the L1I.

use std::sync::Arc;

use nvm_llc_cell::units::{Joules, Seconds};
use nvm_llc_trace::{AccessKind, Trace};

use crate::cache::{Replacement, SetAssocCache};
use crate::config::{ArchConfig, LlcWritePolicy};
use crate::dram::Dram;
use crate::endurance::{EnduranceTracker, WearPolicy};
use crate::result::{SimResult, SimStats};
use crate::tape::{DecodedEvent, EventRecord, Outcome, OutcomeTape, SideEvents, TapeKey};
use crate::techniques::DeadBlockPredictor;

/// Fraction of the LLC read-hit latency a load exposes to the critical
/// path: the OoO core overlaps most of a 5–30 cycle hit with independent
/// work, but longer NVM reads still cost proportionally more.
pub const LLC_HIT_EXPOSURE: f64 = 0.4;

/// Per-core functional state: the private caches and the queue of LLC
/// victims awaiting back-invalidation. Never sees a cycle count.
#[derive(Debug)]
struct FnCore {
    l1d: SetAssocCache,
    l2: SetAssocCache,
    /// LLC victims evicted while this core held the borrow; drained into
    /// back-invalidations at the next event when the LLC is inclusive.
    pending_invalidations: Vec<u64>,
}

/// Per-core timing state: everything `System::run` used to keep on the
/// core that depends on the technology's latencies.
#[derive(Debug, Clone)]
struct TimingLane {
    cycles: f64,
    instructions: u64,
    /// Instruction count until which further misses overlap for free.
    miss_shadow_end: u64,
    /// Misses that have ridden the current shadow (MSHR accounting).
    shadow_misses: u32,
}

/// The timing/energy half of the simulator: applies one technology's
/// cycle latencies, port contention, ROB/MSHR miss overlap, and DRAM
/// model to a stream of functional [`EventRecord`]s.
///
/// The fused [`System::run`] and the tape-driven [`System::replay`] both
/// feed [`TimingEngine::apply`] the same records in the same order, so
/// the two paths execute literally the same floating-point operation
/// sequence — bit-identical results are structural, not coincidental.
#[derive(Debug)]
struct TimingEngine {
    base_cpi: f64,
    llc_read_cycles: f64,
    llc_tag_cycles: f64,
    llc_write_cycles: f64,
    l2_cycles: f64,
    dram_cycles: f64,
    dram_transfer_cycles: f64,
    rob: u64,
    mshrs: u32,
    write_policy: LlcWritePolicy,
    /// Banked LLC ports for the port-contention policy, in the
    /// (approximately common) core cycle domain.
    ports: Vec<f64>,
    dram: Option<Dram>,
    lanes: Vec<TimingLane>,
    port_stall_cycles: u64,
}

impl TimingEngine {
    fn new(cfg: &ArchConfig) -> TimingEngine {
        TimingEngine {
            base_cpi: cfg.base_cpi,
            llc_read_cycles: cfg.llc_read_cycles() as f64,
            llc_tag_cycles: cfg.llc_tag_cycles() as f64,
            llc_write_cycles: cfg.llc_write_cycles() as f64,
            l2_cycles: cfg.l2.latency_cycles as f64,
            dram_cycles: cfg.dram_cycles() as f64,
            dram_transfer_cycles: cfg.dram_transfer_cycles() as f64,
            rob: u64::from(cfg.rob_entries),
            mshrs: cfg.mshrs.unwrap_or(u32::MAX),
            write_policy: cfg.llc_write_policy,
            ports: vec![0.0; cfg.llc_banks.max(1) as usize],
            dram: cfg
                .detailed_dram
                .then(|| Dram::new(cfg.dram_config, cfg.freq_ghz)),
            lanes: vec![
                TimingLane {
                    cycles: 0.0,
                    instructions: 0,
                    miss_shadow_end: 0,
                    shadow_misses: 0,
                };
                cfg.cores as usize
            ],
            port_stall_cycles: 0,
        }
    }

    /// Applies one event's timing. `wear` and `dram_blocks` are cursors
    /// over the event stream's side arrays; the event's flags determine
    /// exactly how many entries each consumes, so a single running
    /// iterator serves a whole tape.
    ///
    /// Every path — the fused [`System::run`], the per-technology
    /// [`System::replay`], and the batched [`System::replay_batch`] —
    /// funnels through this one function, so their floating-point
    /// operation sequences are literally identical.
    fn apply(
        &mut self,
        rec: DecodedEvent,
        wear: &mut impl Iterator<Item = u64>,
        dram_blocks: &mut impl Iterator<Item = u64>,
        endurance: &mut Option<EnduranceTracker>,
    ) {
        let lane = &mut self.lanes[rec.core()];
        lane.cycles += f64::from(rec.gap_instructions()) * self.base_cpi + self.base_cpi;
        lane.instructions += u64::from(rec.gap_instructions()) + 1;
        let outcome = rec.outcome();
        if outcome == Outcome::L1Hit {
            return;
        }
        // L1 victim writeback sinks into L2; its own eviction cascades
        // to the LLC as a write.
        if rec.l1_writeback_llc_write() {
            record_wear(endurance, wear);
            write_timing(
                &mut self.ports,
                lane,
                self.llc_write_cycles,
                self.write_policy,
                &mut self.port_stall_cycles,
            );
        }
        if outcome == Outcome::L2Hit {
            if !rec.is_write() {
                lane.cycles += self.l2_cycles;
            }
            return;
        }
        if rec.l2_writeback_llc_write() {
            record_wear(endurance, wear);
            write_timing(
                &mut self.ports,
                lane,
                self.llc_write_cycles,
                self.write_policy,
                &mut self.port_stall_cycles,
            );
        }
        // Prefetch side effects: the fill's dirty L2 victim is an LLC
        // write; the LLC fill itself cycles the array and moves DRAM
        // traffic but charges no core time.
        if rec.prefetch_evict_llc_write() {
            record_wear(endurance, wear);
            write_timing(
                &mut self.ports,
                lane,
                self.llc_write_cycles,
                self.write_policy,
                &mut self.port_stall_cycles,
            );
        }
        if rec.prefetch_llc_fill() {
            record_wear(endurance, wear);
            let next = dram_blocks.next().expect("tape DRAM stream underrun");
            if let Some(dram) = self.dram.as_mut() {
                let _ = dram.access(next, lane.cycles);
            }
        }
        if outcome == Outcome::LlcHit {
            if !rec.is_write() {
                // Loads expose part of the tag+data read path; under
                // port contention they additionally queue behind
                // writes occupying the banks.
                if self.write_policy == LlcWritePolicy::PortContention {
                    let start = claim_port(&mut self.ports, lane.cycles, self.llc_read_cycles);
                    let stall = start - lane.cycles;
                    self.port_stall_cycles += stall as u64;
                    lane.cycles = start + self.llc_read_cycles * LLC_HIT_EXPOSURE;
                } else {
                    lane.cycles += self.llc_read_cycles * LLC_HIT_EXPOSURE;
                }
            }
            return;
        }
        // LLC miss. The fill allocates the block (endurance-relevant)
        // unless the bypass predictor skipped it.
        if rec.llc_filled() {
            record_wear(endurance, wear);
        }
        let block = dram_blocks.next().expect("tape DRAM stream underrun");
        if !rec.is_write() {
            // ROB-bounded overlap: the first miss of a cluster pays
            // the full path (tag check + DRAM); misses within one ROB
            // width ride in its latency shadow but still occupy the
            // DRAM channel for one block transfer.
            // A miss pays the full path when it opens a new shadow —
            // because it fell outside the previous one, or because the
            // MSHRs are exhausted; otherwise it rides the shadow for
            // the bandwidth floor.
            let opens_window =
                lane.instructions >= lane.miss_shadow_end || lane.shadow_misses >= self.mshrs;
            match self.dram.as_mut() {
                Some(dram) => {
                    let ready = dram.access(block, lane.cycles + self.llc_tag_cycles);
                    if opens_window {
                        lane.cycles = ready;
                        lane.miss_shadow_end = lane.instructions + self.rob;
                        lane.shadow_misses = 1;
                    } else {
                        lane.cycles += self.dram_transfer_cycles;
                        lane.shadow_misses += 1;
                    }
                }
                None => {
                    if opens_window {
                        lane.cycles += self.llc_tag_cycles + self.dram_cycles;
                        lane.miss_shadow_end = lane.instructions + self.rob;
                        lane.shadow_misses = 1;
                    } else {
                        lane.cycles += self.dram_transfer_cycles;
                        lane.shadow_misses += 1;
                    }
                }
            }
        } else if let Some(dram) = self.dram.as_mut() {
            // Store-triggered fills still occupy the channel.
            let _ = dram.access(block, lane.cycles);
        }
    }

    /// Whether [`Self::apply_chunk_simple`] computes exactly what
    /// [`Self::apply`] would for this engine: with off-critical-path LLC
    /// writes every `write_timing` call is a no-op, and with the analytic
    /// DRAM model no side-stream *value* is ever read — `record_wear`
    /// and the DRAM cursor only advance position (which the chunk bases
    /// pre-encode), so the whole side machinery drops out. The caller
    /// must additionally check that no endurance tracker is attached.
    fn chunk_kernel_is_simple(&self) -> bool {
        self.write_policy == LlcWritePolicy::OffCriticalPath && self.dram.is_none()
    }

    /// One chunk of the batched replay for the simple configuration
    /// class (see [`Self::chunk_kernel_is_simple`]): a branch-light pass
    /// over the decoded lanes of [`crate::tape::DecodedTape`].
    ///
    /// Bit-identical to feeding the same events through [`Self::apply`]:
    /// the per-event floating-point additions happen in the same order on
    /// the same values — `gaps_f[i]` is the exact `f64` of the `u32` gap,
    /// and the hoisted per-event constants (`llc_read_cycles *
    /// LLC_HIT_EXPOSURE`, `llc_tag_cycles + dram_cycles`) are the very
    /// products/sums `apply` recomputes identically per event.
    fn apply_chunk_simple(&mut self, gaps: &[u32], gaps_f: &[f64], cores: &[u8], flags: &[u8]) {
        debug_assert!(self.chunk_kernel_is_simple());
        debug_assert_eq!(gaps.len(), gaps_f.len());
        debug_assert_eq!(gaps.len(), cores.len());
        debug_assert_eq!(gaps.len(), flags.len());
        let base_cpi = self.base_cpi;
        let l2_cycles = self.l2_cycles;
        let llc_hit_cycles = self.llc_read_cycles * LLC_HIT_EXPOSURE;
        let miss_open_cycles = self.llc_tag_cycles + self.dram_cycles;
        let transfer_cycles = self.dram_transfer_cycles;
        let (rob, mshrs) = (self.rob, self.mshrs);
        if let [lane] = self.lanes.as_mut_slice() {
            // Single-core tape: the lane state lives in registers for the
            // whole chunk instead of round-tripping through memory.
            let (mut cycles, mut instructions, mut shadow_end, mut shadow_misses) = (
                lane.cycles,
                lane.instructions,
                lane.miss_shadow_end,
                lane.shadow_misses,
            );
            for ((&gap, &gap_f), &flag) in gaps.iter().zip(gaps_f).zip(flags) {
                let ev = DecodedEvent {
                    gap,
                    core: 0,
                    flags: flag,
                };
                cycles += gap_f * base_cpi + base_cpi;
                instructions += u64::from(gap) + 1;
                match ev.outcome() {
                    Outcome::L1Hit => {}
                    Outcome::L2Hit => {
                        if !ev.is_write() {
                            cycles += l2_cycles;
                        }
                    }
                    Outcome::LlcHit => {
                        if !ev.is_write() {
                            cycles += llc_hit_cycles;
                        }
                    }
                    Outcome::LlcMiss => {
                        if !ev.is_write() {
                            if instructions >= shadow_end || shadow_misses >= mshrs {
                                cycles += miss_open_cycles;
                                shadow_end = instructions + rob;
                                shadow_misses = 1;
                            } else {
                                cycles += transfer_cycles;
                                shadow_misses += 1;
                            }
                        }
                    }
                }
            }
            lane.cycles = cycles;
            lane.instructions = instructions;
            lane.miss_shadow_end = shadow_end;
            lane.shadow_misses = shadow_misses;
        } else {
            for (((&gap, &gap_f), &flag), &core) in gaps.iter().zip(gaps_f).zip(flags).zip(cores) {
                let ev = DecodedEvent {
                    gap,
                    core,
                    flags: flag,
                };
                let lane = &mut self.lanes[usize::from(core)];
                lane.cycles += gap_f * base_cpi + base_cpi;
                lane.instructions += u64::from(gap) + 1;
                match ev.outcome() {
                    Outcome::L1Hit => {}
                    Outcome::L2Hit => {
                        if !ev.is_write() {
                            lane.cycles += l2_cycles;
                        }
                    }
                    Outcome::LlcHit => {
                        if !ev.is_write() {
                            lane.cycles += llc_hit_cycles;
                        }
                    }
                    Outcome::LlcMiss => {
                        if !ev.is_write() {
                            if lane.instructions >= lane.miss_shadow_end
                                || lane.shadow_misses >= mshrs
                            {
                                lane.cycles += miss_open_cycles;
                                lane.miss_shadow_end = lane.instructions + rob;
                                lane.shadow_misses = 1;
                            } else {
                                lane.cycles += transfer_cycles;
                                lane.shadow_misses += 1;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// All simple single-lane engines of one batched replay, restructured as
/// parallel per-engine constant and state lanes so a chunk pass updates
/// every engine per event with one outcome dispatch and a handful of
/// vectorizable inner loops.
///
/// Rationale: a lone engine's chunk pass is bound by per-event overhead
/// (outcome dispatch plus the serial `cycles` dependency chain), so
/// running the bank engine-by-engine pays that bound once per engine per
/// event. Event-major over engine lanes pays the dispatch once per event
/// for the whole bank, and the per-engine `cycles += gap_f * cpi[k] +
/// cpi[k]` updates are independent across `k` — a straight-line FMA loop
/// the compiler can vectorize.
///
/// Bit-identity with [`TimingEngine::apply`] holds per engine: each
/// engine's floating-point additions happen in the same order on the
/// same values (vector lanes never reassociate within one engine's
/// chain). The single `instructions` counter is sound because the
/// instruction count is tape-derived — identical across every
/// single-lane engine — and each engine's shadow-window test reads it at
/// the same point `apply` would.
struct SimpleBank {
    /// Slot of each bank member in the caller's engine vector.
    slots: Vec<usize>,
    // Per-engine hoisted constants, in `slots` order.
    cpi: Vec<f64>,
    l2_cycles: Vec<f64>,
    llc_hit_cycles: Vec<f64>,
    miss_open_cycles: Vec<f64>,
    transfer_cycles: Vec<f64>,
    rob: Vec<u64>,
    mshrs: Vec<u32>,
    // Per-engine lane state, in `slots` order.
    cycles: Vec<f64>,
    shadow_end: Vec<u64>,
    shadow_misses: Vec<u32>,
    /// Shared instruction counter (identical for every member).
    instructions: u64,
}

impl SimpleBank {
    /// Collects every engine that can run in the bank: the simple
    /// configuration class ([`TimingEngine::chunk_kernel_is_simple`]),
    /// no endurance tracker, and a single-core tape
    /// ([`DecodedTape::is_single_core`]) so only timing lane 0 is ever
    /// touched — which is also what makes the shared instruction
    /// counter sound. `single_core` false yields an empty bank.
    fn gather(bank: &[(TimingEngine, Option<EnduranceTracker>)], single_core: bool) -> SimpleBank {
        let mut this = SimpleBank {
            slots: Vec::new(),
            cpi: Vec::new(),
            l2_cycles: Vec::new(),
            llc_hit_cycles: Vec::new(),
            miss_open_cycles: Vec::new(),
            transfer_cycles: Vec::new(),
            rob: Vec::new(),
            mshrs: Vec::new(),
            cycles: Vec::new(),
            shadow_end: Vec::new(),
            shadow_misses: Vec::new(),
            instructions: 0,
        };
        if !single_core {
            return this;
        }
        for (slot, (engine, tracker)) in bank.iter().enumerate() {
            if !(engine.chunk_kernel_is_simple() && tracker.is_none()) {
                continue;
            }
            this.slots.push(slot);
            this.cpi.push(engine.base_cpi);
            this.l2_cycles.push(engine.l2_cycles);
            this.llc_hit_cycles
                .push(engine.llc_read_cycles * LLC_HIT_EXPOSURE);
            this.miss_open_cycles
                .push(engine.llc_tag_cycles + engine.dram_cycles);
            this.transfer_cycles.push(engine.dram_transfer_cycles);
            this.rob.push(engine.rob);
            this.mshrs.push(engine.mshrs);
            let lane = &engine.lanes[0];
            this.cycles.push(lane.cycles);
            this.shadow_end.push(lane.miss_shadow_end);
            this.shadow_misses.push(lane.shadow_misses);
            this.instructions = lane.instructions;
        }
        // Pad to a multiple of the narrowest block width with inert
        // lanes (all-zero constants keep their cycles at `0.0 +
        // gap_f * 0.0 + 0.0` forever) so [`Self::apply_chunk`] can run
        // exact constant-width blocks: one wide pass beats several
        // narrow ones because the per-event scaffolding (flag decode,
        // class dispatch) is paid per pass, not per lane.
        while !this.cycles.len().is_multiple_of(4) {
            this.cpi.push(0.0);
            this.l2_cycles.push(0.0);
            this.llc_hit_cycles.push(0.0);
            this.miss_open_cycles.push(0.0);
            this.transfer_cycles.push(0.0);
            this.rob.push(0);
            this.mshrs.push(0);
            this.cycles.push(0.0);
            this.shadow_end.push(0);
            this.shadow_misses.push(0);
        }
        this
    }

    /// Advances every bank member over one chunk of decoded lanes.
    ///
    /// Members run in constant-width blocks (widest available first):
    /// a compile-time width fully unrolls the per-engine loops and
    /// keeps the block state in registers or compile-time stack slots,
    /// which a dynamic-width loop over the backing vectors never
    /// achieves. The bank is padded to a multiple of four, so only the
    /// 4/8/12/16 instantiations exist; each block streams the whole
    /// chunk, which stays resident in L1 across blocks.
    fn apply_chunk(&mut self, gaps: &[u32], gaps_f: &[f64], flags: &[u8]) {
        debug_assert_eq!(gaps.len(), gaps_f.len());
        debug_assert_eq!(gaps.len(), flags.len());
        if self.slots.is_empty() {
            return;
        }
        let padded = self.cycles.len();
        let mut base = 0;
        while padded - base > 16 {
            self.apply_chunk_block::<16>(base, gaps, gaps_f, flags);
            base += 16;
        }
        match padded - base {
            4 => self.apply_chunk_block::<4>(base, gaps, gaps_f, flags),
            8 => self.apply_chunk_block::<8>(base, gaps, gaps_f, flags),
            12 => self.apply_chunk_block::<12>(base, gaps, gaps_f, flags),
            16 => self.apply_chunk_block::<16>(base, gaps, gaps_f, flags),
            _ => unreachable!("bank padded to a multiple of 4"),
        }
        // Every block advanced an identical tape-derived count; commit
        // it once.
        let advanced: u64 = gaps.iter().map(|&g| u64::from(g) + 1).sum();
        self.instructions += advanced;
    }

    /// One `W`-engine block of [`Self::apply_chunk`].
    ///
    /// The event loop is branchless except for LLC read misses: the
    /// class/write bits select which per-engine additive term joins the
    /// gap cycles (`zeros` for classes that add nothing — `x + 0.0` is
    /// bit-exact for the non-negative cycle counts), and the
    /// shadow-window update uses select-style assignments because the
    /// open-vs-shadowed decision flips data-dependently per lane. Every
    /// selected addend is the exact value [`TimingEngine::apply`]'s
    /// branchy form would add, in the same order, so rounding is
    /// unchanged.
    fn apply_chunk_block<const W: usize>(
        &mut self,
        base: usize,
        gaps: &[u32],
        gaps_f: &[f64],
        flags: &[u8],
    ) {
        let cpi: [f64; W] = core::array::from_fn(|j| self.cpi[base + j]);
        let l2: [f64; W] = core::array::from_fn(|j| self.l2_cycles[base + j]);
        let hit: [f64; W] = core::array::from_fn(|j| self.llc_hit_cycles[base + j]);
        let open: [f64; W] = core::array::from_fn(|j| self.miss_open_cycles[base + j]);
        let transfer: [f64; W] = core::array::from_fn(|j| self.transfer_cycles[base + j]);
        let rob: [u64; W] = core::array::from_fn(|j| self.rob[base + j]);
        let mshrs: [u32; W] = core::array::from_fn(|j| self.mshrs[base + j]);
        let zeros = [0.0f64; W];
        let mut cycles: [f64; W] = core::array::from_fn(|j| self.cycles[base + j]);
        let mut shadow_end: [u64; W] = core::array::from_fn(|j| self.shadow_end[base + j]);
        let mut shadow_misses: [u32; W] = core::array::from_fn(|j| self.shadow_misses[base + j]);
        let class_add: [&[f64; W]; 4] = [&zeros, &l2, &hit, &zeros];
        let mut instructions = self.instructions;
        for ((&gap, &gap_f), &flag) in gaps.iter().zip(gaps_f).zip(flags) {
            instructions += u64::from(gap) + 1;
            let write = flag & 1 != 0;
            let class = usize::from((flag >> 1) & 0b11);
            let extra = if write { &zeros } else { class_add[class] };
            for k in 0..W {
                let gap_cycles = cycles[k] + (gap_f * cpi[k] + cpi[k]);
                cycles[k] = gap_cycles + extra[k];
            }
            if class == 3 && !write {
                for k in 0..W {
                    let opens = instructions >= shadow_end[k] || shadow_misses[k] >= mshrs[k];
                    cycles[k] += if opens { open[k] } else { transfer[k] };
                    shadow_end[k] = if opens {
                        instructions + rob[k]
                    } else {
                        shadow_end[k]
                    };
                    shadow_misses[k] = if opens { 1 } else { shadow_misses[k] + 1 };
                }
            }
        }
        self.cycles[base..base + W].copy_from_slice(&cycles);
        self.shadow_end[base..base + W].copy_from_slice(&shadow_end);
        self.shadow_misses[base..base + W].copy_from_slice(&shadow_misses);
    }

    /// Writes the accumulated lane state back into the member engines.
    fn scatter(&self, bank: &mut [(TimingEngine, Option<EnduranceTracker>)]) {
        for (k, &slot) in self.slots.iter().enumerate() {
            let lane = &mut bank[slot].0.lanes[0];
            lane.cycles = self.cycles[k];
            lane.instructions = self.instructions;
            lane.miss_shadow_end = self.shadow_end[k];
            lane.shadow_misses = self.shadow_misses[k];
        }
    }
}

/// Feeds the next endurance-stream block to the tracker (when enabled).
/// The cursor advances either way so replay and direct runs agree on
/// stream position regardless of tracking.
fn record_wear(endurance: &mut Option<EnduranceTracker>, wear: &mut impl Iterator<Item = u64>) {
    let block = wear.next().expect("tape endurance stream underrun");
    if let Some(tracker) = endurance.as_mut() {
        tracker.record(block);
    }
}

/// Applies the write policy's timing for one LLC write.
fn write_timing(
    ports: &mut [f64],
    lane: &mut TimingLane,
    write_cycles: f64,
    policy: LlcWritePolicy,
    port_stall_cycles: &mut u64,
) {
    match policy {
        LlcWritePolicy::OffCriticalPath => {}
        LlcWritePolicy::PortContention => {
            // The write occupies a port but the core keeps running.
            let _ = claim_port(ports, lane.cycles, write_cycles);
        }
        LlcWritePolicy::Blocking => {
            lane.cycles += write_cycles;
            *port_stall_cycles += write_cycles as u64;
        }
    }
}

/// A configured system ready to replay traces.
///
/// # Examples
///
/// ```
/// use nvm_llc_circuit::reference;
/// use nvm_llc_sim::{config::ArchConfig, system::System};
/// use nvm_llc_trace::workloads;
///
/// let trace = workloads::by_name("tonto").unwrap().generate(1, 5_000);
/// let config = ArchConfig::gainestown(reference::sram_baseline());
/// let result = System::new(config).run(&trace);
/// assert!(result.exec_time.value() > 0.0);
/// ```
#[derive(Debug)]
pub struct System {
    config: ArchConfig,
    replacement: Replacement,
    warmup_fraction: f64,
    endurance: Option<WearPolicy>,
}

impl System {
    /// Creates a system for the given architecture with LRU replacement
    /// everywhere (the paper's configuration).
    pub fn new(config: ArchConfig) -> Self {
        System {
            config,
            replacement: Replacement::Lru,
            warmup_fraction: 0.0,
            endurance: None,
        }
    }

    /// Enables per-set write tracking and the lifetime report
    /// ([`crate::endurance`]), with the given wear-leveling policy.
    pub fn with_endurance_tracking(mut self, policy: WearPolicy) -> Self {
        self.endurance = Some(policy);
        self
    }

    /// Warms the caches on the first `fraction` of the trace without
    /// charging time, energy, or statistics — the Sniper warmup/ROI
    /// discipline. Steady-state measurements (the paper's figures) use
    /// 25%; raw replays default to 0.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ fraction < 1.0`.
    pub fn with_warmup(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "warmup fraction must be in [0, 1)"
        );
        self.warmup_fraction = fraction;
        self
    }

    /// Overrides the replacement policy in every cache level (the
    /// replacement-sensitivity ablation).
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Replays `trace` and returns timing, energy, and statistics.
    ///
    /// Threads map onto cores round-robin (`core = tid % cores`), so a
    /// trace with more threads than cores time-shares.
    ///
    /// This is the fused single-pass path: the functional walk and the
    /// [`TimingEngine`] run in lockstep, one event at a time.
    pub fn run(&self, trace: &Trace) -> SimResult {
        let mut engine = TimingEngine::new(&self.config);
        let mut endurance = self.endurance_tracker();
        let stats = self.functional_walk(trace, |rec, sides| {
            engine.apply(
                rec.decode(),
                &mut sides.endurance().iter().copied(),
                &mut sides.dram().iter().copied(),
                &mut endurance,
            );
        });
        self.finalize(stats, engine, endurance)
    }

    /// Phase A alone: runs the functional pass and captures the outcome
    /// tape ([`crate::tape`]) that [`System::replay`] can re-time for any
    /// technology sharing this system's [`TapeKey`] geometry.
    pub fn record(&self, trace: &Trace) -> OutcomeTape {
        let _span = nvm_llc_obs::span!("tape_record");
        let roi_events = trace.len() - self.warmup_events(trace);
        let mut tape = OutcomeTape::with_capacity(roi_events, self.config.cores);
        let stats = self.functional_walk(trace, |rec, sides| tape.push(rec, sides));
        tape.set_stats(stats);
        tape
    }

    /// Phase B alone: applies this system's technology timing and energy
    /// to a recorded tape. Bit-identical to [`System::run`] on the trace
    /// the tape was recorded from, for any configuration that shares the
    /// tape's functional geometry.
    ///
    /// # Panics
    ///
    /// Panics if the tape was recorded for a different core count (the
    /// clearest symptom of keying a tape cache incorrectly).
    pub fn replay(&self, tape: &OutcomeTape) -> SimResult {
        let _span = nvm_llc_obs::span!("tape_replay");
        assert_eq!(
            tape.cores(),
            self.config.cores,
            "outcome tape recorded for a different core count"
        );
        let mut engine = TimingEngine::new(&self.config);
        let mut endurance = self.endurance_tracker();
        let mut wear = tape.endurance_blocks();
        let mut dram_blocks = tape.dram_blocks();
        for &rec in tape.records() {
            engine.apply(rec.decode(), &mut wear, &mut dram_blocks, &mut endurance);
        }
        self.finalize(tape.stats().clone(), engine, endurance)
    }

    /// Phase B for a whole technology group at once: decodes `tape` a
    /// single time into its flat-array form
    /// ([`DecodedTape`](crate::tape::DecodedTape)) and then
    /// streams one timing engine per system over the shared decoded
    /// event and side arrays, technology-major — each engine's pass is
    /// a pure accumulation loop with all record unpacking and varint
    /// decoding already hoisted out.
    ///
    /// Results are bit-identical to calling [`System::replay`] once per
    /// system: both paths funnel every event through the same
    /// `TimingEngine::apply` in the same order with the same side-stream
    /// values — only the per-technology record unpacking and varint
    /// decoding are hoisted out. The systems may differ in any
    /// timing-only knob (technology model, write policy, MSHRs, DRAM
    /// backend, write mode, endurance tracking) but must share the
    /// tape's functional geometry.
    ///
    /// # Panics
    ///
    /// Panics if any system's core count differs from the tape's.
    pub fn replay_batch(systems: &[&System], tape: &OutcomeTape) -> Vec<SimResult> {
        let _span = nvm_llc_obs::span!("tape_replay_batch");
        for system in systems {
            assert_eq!(
                tape.cores(),
                system.config.cores,
                "outcome tape recorded for a different core count"
            );
        }
        let decoded = tape.decoded();
        let mut bank: Vec<(TimingEngine, Option<EnduranceTracker>)> = systems
            .iter()
            .map(|s| (TimingEngine::new(&s.config), s.endurance_tracker()))
            .collect();
        // Chunk-major, engine-inner: every engine streams one fixed-size
        // block of the decoded lanes ([`REPLAY_CHUNK_EVENTS`]) before any
        // engine moves to the next, so a chunk's lanes stay resident in
        // L1 across the whole bank while each engine's pass over it is a
        // tight, branch-light accumulation loop (lane state in
        // registers). Pure engine-major would stream the full tape per
        // engine (cold lanes every pass); pure event-major pays per-event
        // dispatch for every engine. The decode pass pre-recorded the
        // side-stream cursor positions at each chunk boundary, so every
        // engine starts a chunk at the same offsets without rewalking the
        // prefix — every engine consumes identical side entries.
        // The dominant configuration class (off-critical-path writes,
        // analytic DRAM, no endurance tracking) never reads a
        // side-stream value — only the cursors would advance, and chunk
        // bases already encode those — so on single-core tapes those
        // engines fuse into one event-major `SimpleBank` pass per chunk:
        // one outcome dispatch per event drives vectorizable per-engine
        // lane updates. Everything else streams the chunk on its own —
        // multi-core simple engines through the scalar simple kernel,
        // the rest through the full `apply` path with side streams.
        let mut simple_bank = SimpleBank::gather(&bank, decoded.is_single_core());
        let singles: Vec<usize> = (0..bank.len())
            .filter(|slot| !simple_bank.slots.contains(slot))
            .collect();
        for chunk in 0..decoded.num_chunks() {
            let _span = nvm_llc_obs::span!("tape_replay_chunk");
            let range = decoded.chunk_range(chunk);
            let (wear_base, dram_base) = decoded.chunk_side_base(chunk);
            let gaps = &decoded.gap_lane()[range.clone()];
            let gaps_f = &decoded.gap_f64_lane()[range.clone()];
            let cores = &decoded.core_lane()[range.clone()];
            let flags = &decoded.flag_lane()[range.clone()];
            simple_bank.apply_chunk(gaps, gaps_f, flags);
            for &slot in &singles {
                let (engine, tracker) = &mut bank[slot];
                if engine.chunk_kernel_is_simple() && tracker.is_none() {
                    engine.apply_chunk_simple(gaps, gaps_f, cores, flags);
                } else {
                    let mut wear = decoded.wear_blocks()[wear_base..].iter().copied();
                    let mut dram = decoded.dram_blocks()[dram_base..].iter().copied();
                    for i in range.clone() {
                        engine.apply(decoded.event(i), &mut wear, &mut dram, tracker);
                    }
                }
            }
        }
        simple_bank.scatter(&mut bank);
        systems
            .iter()
            .zip(bank)
            .map(|(system, (engine, tracker))| {
                system.finalize(decoded.stats().clone(), engine, tracker)
            })
            .collect()
    }

    /// [`System::run`] through the process-wide tape cache: fetches (or
    /// records, exactly once per process) the outcome tape for this
    /// system's geometry over `trace`, then replays it.
    pub fn run_cached(&self, trace: &Arc<Trace>) -> SimResult {
        let tape = crate::tape::cache::fetch(self, trace);
        self.replay(&tape)
    }

    /// The functional identity of running this system over `trace`: every
    /// knob the outcome tape depends on, and none it doesn't.
    pub fn tape_key(&self, trace: &Trace) -> TapeKey {
        let cfg = &self.config;
        TapeKey::new(
            trace.uid(),
            trace.content_hash(),
            cfg.cores,
            (
                cfg.l1d.capacity_bytes,
                cfg.l1d.associativity,
                cfg.l1d.block_bytes,
            ),
            (
                cfg.l2.capacity_bytes,
                cfg.l2.associativity,
                cfg.l2.block_bytes,
            ),
            cfg.llc_capacity_bytes(),
            self.replacement,
            self.warmup_fraction,
            cfg.inclusive_llc,
            cfg.l2_prefetch,
            cfg.llc_bypass,
        )
    }

    fn endurance_tracker(&self) -> Option<EnduranceTracker> {
        let llc_sets = (self.config.llc_capacity_bytes() / (64 * 16)).max(1);
        self.endurance
            .map(|policy| EnduranceTracker::new(llc_sets, policy))
    }

    fn warmup_events(&self, trace: &Trace) -> usize {
        ((trace.len() as f64 * self.warmup_fraction) as usize).min(trace.len())
    }

    /// Phase A: drives the cache hierarchy over `trace` and hands each
    /// post-warmup event's outcome (plus its endurance/DRAM side events)
    /// to `consume`, in trace order. Returns the functional statistics;
    /// the timing-side fields (`llc_port_stall_cycles`, `dram_row_*`,
    /// `dram_queue_cycles`) stay zero for [`Self::finalize`] to fill.
    fn functional_walk(
        &self,
        trace: &Trace,
        mut consume: impl FnMut(EventRecord, &SideEvents),
    ) -> SimStats {
        let cfg = &self.config;
        let mut cores: Vec<FnCore> = (0..cfg.cores)
            .map(|_| FnCore {
                l1d: SetAssocCache::with_geometry(
                    cfg.l1d.capacity_bytes,
                    cfg.l1d.associativity,
                    cfg.l1d.block_bytes,
                    self.replacement,
                ),
                l2: SetAssocCache::with_geometry(
                    cfg.l2.capacity_bytes,
                    cfg.l2.associativity,
                    cfg.l2.block_bytes,
                    self.replacement,
                ),
                pending_invalidations: Vec::new(),
            })
            .collect();
        let mut llc =
            SetAssocCache::with_geometry(cfg.llc_capacity_bytes(), 16, 64, self.replacement);
        let mut stats = SimStats::default();
        let mut bypass = cfg.llc_bypass.then(DeadBlockPredictor::default_table);

        // --- Warmup: touch the caches, charge nothing -------------------
        let events = trace.events();
        let warmup_events = self.warmup_events(trace);
        let num_cores = cores.len();
        for event in &events[..warmup_events] {
            let core = &mut cores[usize::from(event.tid) % num_cores];
            let block = event.block();
            let is_write = event.kind == AccessKind::Write;
            let l1_out = core.l1d.access(block, is_write);
            if l1_out.hit {
                continue;
            }
            if let Some(wb) = l1_out.writeback() {
                if let Some(wb2) = core.l2.fill_dirty(wb) {
                    let _ = llc.fill_dirty(wb2);
                }
            }
            let l2_out = core.l2.access(block, false);
            if !l2_out.hit {
                if let Some(wb) = l2_out.writeback() {
                    let _ = llc.fill_dirty(wb);
                }
                let _ = llc.access(block, false);
            }
        }
        // Warmup's share of the L1 array counters, so the consistency
        // assertion below can cover only the region of interest.
        let warm_l1: (u64, u64) = cores.iter().fold((0, 0), |acc, c| {
            (acc.0 + c.l1d.hits(), acc.1 + c.l1d.misses())
        });

        let mut inval_buffer: Vec<u64> = Vec::new();
        let mut sides = SideEvents::default();
        for event in &events[warmup_events..] {
            // Inclusive hierarchy: apply back-invalidations queued by the
            // previous event (one-event delay ≈ the invalidation's real
            // network latency). Without inclusion the queues just drop.
            // Both arms are guarded so the common no-victim event skips
            // the per-core sweep entirely.
            if cores.iter().any(|c| !c.pending_invalidations.is_empty()) {
                if cfg.inclusive_llc {
                    for c in cores.iter_mut() {
                        inval_buffer.append(&mut c.pending_invalidations);
                    }
                    for victim in inval_buffer.drain(..) {
                        for c in cores.iter_mut() {
                            if let Some(dirty) = c.l1d.invalidate(victim) {
                                stats.inclusion_invalidations += 1;
                                if dirty {
                                    stats.dram_writebacks += 1;
                                }
                            }
                            if let Some(dirty) = c.l2.invalidate(victim) {
                                stats.inclusion_invalidations += 1;
                                if dirty {
                                    stats.dram_writebacks += 1;
                                }
                            }
                        }
                    }
                } else {
                    for c in cores.iter_mut() {
                        c.pending_invalidations.clear();
                    }
                }
            }
            let core_idx = usize::from(event.tid) % num_cores;
            let core = &mut cores[core_idx];
            let is_write = event.kind == AccessKind::Write;
            let block = event.block();

            stats.accesses += 1;
            stats.instructions += u64::from(event.gap_instructions) + 1;
            sides.clear();
            let mut rec = EventRecord::new(core_idx as u8, event.gap_instructions, is_write);

            // --- L1D ----------------------------------------------------
            let l1_out = core.l1d.access(block, is_write);
            if l1_out.hit {
                stats.l1d_hits += 1;
                consume(rec, &sides);
                continue;
            }
            stats.l1d_misses += 1;
            // L1 victim writeback sinks into L2; its own eviction cascades
            // to the LLC as a write.
            if let Some(wb) = l1_out.writeback() {
                if let Some(wb2) = core.l2.fill_dirty(wb) {
                    sides.push_endurance(wb2);
                    rec = rec.with_l1_writeback_llc_write();
                    llc_write(&mut llc, wb2, &mut stats, &mut core.pending_invalidations);
                }
            }

            // --- L2 -----------------------------------------------------
            let l2_out = core.l2.access(block, false);
            if l2_out.hit {
                stats.l2_hits += 1;
                consume(rec.with_outcome(Outcome::L2Hit), &sides);
                continue;
            }
            stats.l2_misses += 1;
            if let Some(wb) = l2_out.writeback() {
                sides.push_endurance(wb);
                rec = rec.with_l2_writeback_llc_write();
                llc_write(&mut llc, wb, &mut stats, &mut core.pending_invalidations);
            }

            // Next-line prefetch: a demand L2 miss pulls block+1 into the
            // L2 off the critical path. Prefetch fills cycle the LLC
            // array (endurance) and move DRAM traffic, but charge no core
            // time and — per equation (7) — no extra LLC dynamic energy,
            // and never perturb demand hit/miss statistics.
            if cfg.l2_prefetch {
                let next = block + 1;
                if !core.l2.contains(next) {
                    stats.prefetches += 1;
                    if let Some(e) = core.l2.fill_clean(next) {
                        if e.dirty {
                            sides.push_endurance(e.block);
                            rec = rec.with_prefetch_evict_llc_write();
                            llc_write(
                                &mut llc,
                                e.block,
                                &mut stats,
                                &mut core.pending_invalidations,
                            );
                        }
                    }
                    if !llc.contains(next) {
                        if let Some(e) = llc.fill_clean(next) {
                            if e.dirty {
                                stats.dram_writebacks += 1;
                            }
                            core.pending_invalidations.push(e.block);
                        }
                        sides.push_endurance(next);
                        sides.push_dram(next);
                        rec = rec.with_prefetch_llc_fill();
                    }
                }
            }

            // --- LLC ----------------------------------------------------
            let (llc_hit, llc_filled) = match bypass.as_mut() {
                Some(pred) => {
                    if llc.contains(block) {
                        let out = llc.access(block, false);
                        (out.hit, false)
                    } else if pred.should_bypass(block) {
                        // Dead-on-arrival: count the miss, skip the fill.
                        let _ = llc.access_no_alloc(block);
                        stats.llc_bypassed_fills += 1;
                        (false, false)
                    } else {
                        let out = llc.access(block, false);
                        if let Some(e) = out.evicted {
                            pred.train(e.block, e.reused);
                            if e.dirty {
                                stats.dram_writebacks += 1;
                            }
                            core.pending_invalidations.push(e.block);
                        }
                        (false, true)
                    }
                }
                None => {
                    let out = llc.access(block, false);
                    if let Some(e) = out.evicted {
                        if e.dirty {
                            stats.dram_writebacks += 1;
                        }
                        core.pending_invalidations.push(e.block);
                    }
                    (out.hit, !out.hit)
                }
            };
            if llc_hit {
                stats.llc_hits += 1;
                consume(rec.with_outcome(Outcome::LlcHit), &sides);
                continue;
            }
            stats.llc_misses += 1;
            // The miss's fill allocates the block; equation (7) charges
            // it tag energy only (already counted with the miss), so the
            // fill contributes no E_dyn,write — tracked separately for
            // endurance analyses (the array still cycles).
            if llc_filled {
                stats.llc_fills += 1;
                sides.push_endurance(block);
                rec = rec.with_llc_filled();
            }
            sides.push_dram(block);
            consume(rec.with_outcome(Outcome::LlcMiss), &sides);
        }

        // The per-event counters in `stats` never saw the warmup pass;
        // nothing to correct, but assert the arrays agree with them.
        debug_assert_eq!(
            stats.l1d_hits + stats.l1d_misses + warm_l1.0 + warm_l1.1,
            cores.iter().map(|c| c.l1d.accesses()).sum::<u64>()
        );
        stats
    }

    /// Assembles a [`SimResult`] from the functional statistics and a
    /// finished timing engine — the shared tail of both [`System::run`]
    /// and [`System::replay`].
    fn finalize(
        &self,
        mut stats: SimStats,
        engine: TimingEngine,
        endurance: Option<EnduranceTracker>,
    ) -> SimResult {
        let cfg = &self.config;
        let max_cycles = engine.lanes.iter().map(|l| l.cycles).fold(0.0f64, f64::max);
        stats.llc_port_stall_cycles = engine.port_stall_cycles;
        if let Some(dram) = &engine.dram {
            stats.dram_row_hits = dram.stats().row_hits;
            stats.dram_row_conflicts = dram.stats().row_conflicts;
            stats.dram_queue_cycles = dram.stats().queue_cycles;
        }

        let exec_time = Seconds::new(max_cycles / (cfg.freq_ghz * 1e9));
        // Equation (8), with the data-write portion scaled by the write
        // mode (differential writes only drive flipped bits; the tag
        // lookup — equation (7)'s E_dyn,tag — is always paid in full).
        let tag_j = cfg.llc.miss_energy.to_joules().value();
        let write_j = tag_j
            + (cfg.llc.write_energy.to_joules().value() - tag_j).max(0.0)
                * cfg.llc_write_mode.energy_factor();
        let dynamic = stats.llc_hits as f64 * cfg.llc.hit_energy.to_joules().value()
            + stats.llc_misses as f64 * cfg.llc.miss_energy.to_joules().value()
            + stats.llc_writes as f64 * write_j;
        let leakage = cfg.llc.leakage * exec_time;

        let endurance_report =
            endurance.map(|tracker| tracker.report(cfg.llc.class, 16, exec_time));
        SimResult {
            llc_name: cfg.llc.display_name(),
            exec_time,
            llc_dynamic_energy: Joules::new(dynamic),
            llc_leakage_energy: leakage,
            endurance: endurance_report,
            stats,
        }
    }
}

/// Claims the earliest-free banked port at or after `now` for `occupancy`
/// cycles; returns the start time.
fn claim_port(ports: &mut [f64], now: f64, occupancy: f64) -> f64 {
    let (idx, _) = ports
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite port times"))
        .expect("at least one port");
    let start = now.max(ports[idx]);
    ports[idx] = start + occupancy;
    start
}

/// The functional half of an LLC write from an L2 dirty writeback:
/// allocates the block dirty and cascades any dirty LLC victim to DRAM.
/// The write's `E_dyn,write` count rides in `stats.llc_writes`; its
/// timing is the engine's business.
fn llc_write(llc: &mut SetAssocCache, block: u64, stats: &mut SimStats, pending: &mut Vec<u64>) {
    stats.llc_writes += 1;
    if let Some(victim) = llc.fill_dirty_full(block) {
        if victim.dirty {
            stats.dram_writebacks += 1;
        }
        pending.push(victim.block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_circuit::reference;
    use nvm_llc_trace::workloads;

    fn run(llc_name: &str, workload: &str, n: usize) -> SimResult {
        let llc = reference::by_name(&reference::fixed_capacity(), llc_name).unwrap();
        let trace = workloads::by_name(workload).unwrap().generate(42, n);
        System::new(ArchConfig::gainestown(llc)).run(&trace)
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run("SRAM", "tonto", 20_000);
        let b = run("SRAM", "tonto", 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn hierarchy_filters_accesses_downward() {
        let r = run("SRAM", "leela", 40_000);
        let s = &r.stats;
        assert!(s.l1d_hits > 0);
        assert!(s.l1d_misses >= s.l2_hits + s.l2_misses);
        assert_eq!(s.l2_hits + s.l2_misses, s.l1d_misses);
        assert_eq!(s.llc_accesses(), s.l2_misses);
        assert!(s.llc_accesses() < s.accesses);
    }

    #[test]
    fn every_miss_fills_and_writebacks_are_separate() {
        let r = run("SRAM", "ft", 40_000);
        assert_eq!(r.stats.llc_fills, r.stats.llc_misses);
        // ft is write-balanced: plenty of L2 writebacks reach the LLC.
        assert!(r.stats.llc_writes > 0);
    }

    #[test]
    fn nvm_read_latency_slows_execution_slightly() {
        // Jan_S read path ≈ 4.5 ns vs SRAM 1.7 ns: a few percent.
        let sram = run("SRAM", "bzip2", 60_000);
        let jan = run("Jan", "bzip2", 60_000);
        let speedup = jan.speedup_vs(&sram);
        assert!(speedup < 1.0, "{speedup}");
        assert!(speedup > 0.85, "{speedup}");
    }

    #[test]
    fn off_critical_path_hides_write_latency() {
        // Zhang writes at ~300 ns; with the paper's assumption the
        // slowdown vs SRAM must stay small (Fig. 1 shows ≈0).
        let sram = run("SRAM", "mg", 30_000);
        let zhang = run("Zhang", "mg", 30_000);
        let speedup = zhang.speedup_vs(&sram);
        assert!(speedup > 0.85, "{speedup}");
    }

    #[test]
    fn blocking_writes_hurt_slow_write_technologies() {
        let llc = reference::by_name(&reference::fixed_capacity(), "Zhang").unwrap();
        let trace = workloads::by_name("mg").unwrap().generate(42, 30_000);
        let off = System::new(ArchConfig::gainestown(llc.clone())).run(&trace);
        let blocking = System::new(
            ArchConfig::gainestown(llc).with_llc_write_policy(LlcWritePolicy::Blocking),
        )
        .run(&trace);
        assert!(
            blocking.exec_time.value() > 1.5 * off.exec_time.value(),
            "blocking {} vs off {}",
            blocking.exec_time.value(),
            off.exec_time.value()
        );
    }

    #[test]
    fn sram_energy_is_leakage_dominated() {
        let r = run("SRAM", "tonto", 40_000);
        assert!(r.llc_leakage_energy.value() > 5.0 * r.llc_dynamic_energy.value());
    }

    #[test]
    fn pcram_energy_is_write_dominated_on_miss_heavy_workloads() {
        let r = run("Kang", "cg", 30_000);
        assert!(r.llc_dynamic_energy.value() > r.llc_leakage_energy.value());
    }

    #[test]
    fn nvm_llc_energy_beats_sram_for_sttram() {
        // The paper's headline: NVM LLC energy up to 10× less than SRAM.
        let sram = run("SRAM", "leela", 40_000);
        let jan = run("Jan", "leela", 40_000);
        let ratio = jan.energy_vs(&sram);
        assert!(ratio < 0.5, "Jan/SRAM energy ratio {ratio}");
    }

    #[test]
    fn bigger_llc_reduces_mpki() {
        // gobmk's ~16 MB footprint: 32 MB Hayakawa_R absorbs it.
        let small = run("Hayakawa", "gobmk", 40_000);
        let llc = reference::by_name(&reference::fixed_area(), "Hayakawa").unwrap();
        let trace = workloads::by_name("gobmk").unwrap().generate(42, 40_000);
        let large = System::new(ArchConfig::gainestown(llc)).run(&trace);
        assert!(large.stats.llc_mpki() < small.stats.llc_mpki());
    }

    #[test]
    fn multithreaded_workloads_use_all_cores() {
        let r = run("SRAM", "ft", 10_000);
        // 4 threads × 10 000 accesses.
        assert_eq!(r.stats.accesses, 40_000);
        assert!(r.stats.instructions > 40_000);
    }

    #[test]
    fn thread_oversubscription_maps_round_robin() {
        let llc = reference::sram_baseline();
        let trace = workloads::by_name("ft").unwrap().generate(42, 5_000);
        let single = System::new(ArchConfig::gainestown(llc).with_cores(1)).run(&trace);
        assert_eq!(single.stats.accesses, 20_000);
        // One core doing all the work takes longer than four.
        let quad = run("SRAM", "ft", 5_000);
        assert!(single.exec_time.value() > 2.0 * quad.exec_time.value());
    }

    #[test]
    fn detailed_dram_changes_timing_and_reports_row_stats() {
        let llc = reference::sram_baseline();
        let trace = workloads::by_name("mg").unwrap().generate(42, 20_000);
        let simple = System::new(ArchConfig::gainestown(llc.clone())).run(&trace);
        let detailed = System::new(ArchConfig::gainestown(llc).with_detailed_dram()).run(&trace);
        assert_eq!(simple.stats.dram_row_hits, 0);
        assert!(detailed.stats.dram_row_hits > 0);
        assert!(detailed.stats.dram_row_hits + detailed.stats.dram_row_conflicts > 0);
        // Timing differs but stays within the same regime.
        let ratio = detailed.exec_time.value() / simple.exec_time.value();
        assert!((0.3..3.0).contains(&ratio), "{ratio}");
        // Cache behaviour (state machine) is identical either way.
        assert_eq!(simple.stats.llc_misses, detailed.stats.llc_misses);
    }

    #[test]
    fn endurance_tracking_reports_lifetime() {
        let llc = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
        let trace = workloads::by_name("ft").unwrap().generate(42, 20_000);
        let result = System::new(ArchConfig::gainestown(llc))
            .with_endurance_tracking(crate::endurance::WearPolicy::None)
            .run(&trace);
        let report = result.endurance.expect("tracking enabled");
        assert_eq!(
            report.total_writes,
            result.stats.llc_writes + result.stats.llc_fills
        );
        assert!(report.lifetime_years.is_finite());
        assert!(report.lifetime_years > 0.0);
        // PCRAM endurance (1e8) must yield a far shorter lifetime than
        // STTRAM on the same workload.
        let xue = reference::by_name(&reference::fixed_capacity(), "Xue").unwrap();
        let trace2 = workloads::by_name("ft").unwrap().generate(42, 20_000);
        let stt = System::new(ArchConfig::gainestown(xue))
            .with_endurance_tracking(crate::endurance::WearPolicy::None)
            .run(&trace2)
            .endurance
            .unwrap();
        assert!(stt.lifetime_years > 100.0 * report.lifetime_years);
    }

    #[test]
    fn bypass_reduces_array_fills_on_low_reuse_workloads() {
        // deepsjeng's huge cold footprint is dead-block heaven.
        let llc = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
        let trace = workloads::by_name("deepsjeng")
            .unwrap()
            .generate(42, 40_000);
        let base = System::new(ArchConfig::gainestown(llc.clone()))
            .with_warmup(0.25)
            .run(&trace);
        let bypassed = System::new(ArchConfig::gainestown(llc).with_llc_bypass())
            .with_warmup(0.25)
            .run(&trace);
        assert!(bypassed.stats.llc_bypassed_fills > 0);
        assert!(
            bypassed.stats.llc_fills < base.stats.llc_fills,
            "{} vs {}",
            bypassed.stats.llc_fills,
            base.stats.llc_fills
        );
        assert_eq!(base.stats.llc_bypassed_fills, 0);
    }

    #[test]
    fn differential_writes_cut_write_energy_only() {
        let llc = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
        let trace = workloads::by_name("bzip2").unwrap().generate(42, 20_000);
        let full = System::new(ArchConfig::gainestown(llc.clone())).run(&trace);
        let diff =
            System::new(ArchConfig::gainestown(llc).with_differential_writes(0.4)).run(&trace);
        // Same events, lower dynamic energy, identical timing.
        assert_eq!(full.stats, diff.stats);
        assert_eq!(full.exec_time, diff.exec_time);
        assert!(
            diff.llc_dynamic_energy.value() < 0.6 * full.llc_dynamic_energy.value(),
            "{} vs {}",
            diff.llc_dynamic_energy.value(),
            full.llc_dynamic_energy.value()
        );
    }

    #[test]
    fn prefetcher_helps_streaming_not_pointer_chasing() {
        use nvm_llc_trace::{Suite, WorkloadProfile};
        let llc = reference::sram_baseline();
        let measure = |profile: &WorkloadProfile, prefetch: bool| {
            let trace = profile.generate(42, 40_000);
            let mut config = ArchConfig::gainestown(llc.clone());
            if prefetch {
                config = config.with_l2_prefetch();
            }
            System::new(config).with_warmup(0.25).run(&trace)
        };
        // A pure streamer: every L2 miss is sequential, so next-line
        // prefetch converts nearly all of them.
        let stream = WorkloadProfile::builder("stream", Suite::Npb)
            .footprint_blocks(1 << 18)
            .stream_fraction(1.0)
            .build();
        let s_off = measure(&stream, false);
        let s_on = measure(&stream, true);
        assert!(s_on.stats.prefetches > 0);
        assert!(
            (s_on.stats.l2_misses as f64) < 0.6 * s_off.stats.l2_misses as f64,
            "{} vs {}",
            s_on.stats.l2_misses,
            s_off.stats.l2_misses
        );
        assert!(s_on.exec_time.value() < s_off.exec_time.value());
        // Pointer-chasing deepsjeng barely benefits.
        let dsj = workloads::by_name("deepsjeng").unwrap();
        let d_off = measure(&dsj, false);
        let d_on = measure(&dsj, true);
        let stream_gain = s_off.stats.l2_misses as f64 / s_on.stats.l2_misses as f64;
        let dsj_gain = d_off.stats.l2_misses as f64 / d_on.stats.l2_misses as f64;
        assert!(stream_gain > 1.5 * dsj_gain, "{stream_gain} vs {dsj_gain}");
    }

    #[test]
    fn prefetch_fills_cycle_the_array_for_endurance() {
        let llc = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
        let trace = workloads::by_name("GemsFDTD").unwrap().generate(42, 20_000);
        let run = |prefetch: bool| {
            let mut config = ArchConfig::gainestown(llc.clone());
            if prefetch {
                config = config.with_l2_prefetch();
            }
            System::new(config)
                .with_endurance_tracking(crate::endurance::WearPolicy::None)
                .run(&trace)
                .endurance
                .unwrap()
                .total_writes
        };
        // Prefetching writes more blocks into the NVM array — the
        // endurance cost of aggressive fills.
        assert!(run(true) > run(false));
    }

    #[test]
    fn inclusive_llc_back_invalidates_private_copies() {
        use nvm_llc_trace::{AccessKind, Trace, TraceEvent};
        // A hot block pinned in the L1 by constant re-reference while a
        // long stream churns the LLC: the hot block's stale LLC line gets
        // evicted, and inclusion must then rip it out of the L1, turning
        // later re-references into misses.
        let hot = 0u64;
        // Conflict stream: every block maps to the hot block's LLC set
        // (block index multiple of 16 K covers every power-of-two set
        // count in the hierarchy), so the hot line's stale LLC copy is
        // evicted while the L1 keeps hitting it.
        let mut events = Vec::new();
        for i in 0..60_000u64 {
            let addr = if i % 2 == 0 {
                hot * 64
            } else {
                (i * 16_384) * 64
            };
            events.push(TraceEvent {
                tid: 0,
                addr,
                kind: AccessKind::Read,
                gap_instructions: 1,
            });
        }
        let trace = Trace::new(events, 1);
        // Jan's 1 MB LLC churns under the 30 000-block stream.
        let llc = reference::by_name(&reference::fixed_area(), "Jan").unwrap();
        let base = System::new(ArchConfig::gainestown(llc.clone())).run(&trace);
        let inclusive = System::new(ArchConfig::gainestown(llc).with_inclusive_llc()).run(&trace);
        assert_eq!(base.stats.inclusion_invalidations, 0);
        assert!(
            inclusive.stats.inclusion_invalidations > 0,
            "no back-invalidations fired"
        );
        // Losing private copies can only add upper-level misses.
        assert!(inclusive.stats.l1d_misses > base.stats.l1d_misses);
    }

    #[test]
    fn bounded_mshrs_slow_miss_heavy_workloads() {
        let llc = reference::sram_baseline();
        let trace = workloads::by_name("cg").unwrap().generate(42, 30_000);
        let run = |mshrs: Option<u32>| {
            let mut config = ArchConfig::gainestown(llc.clone());
            if let Some(m) = mshrs {
                config = config.with_mshrs(m);
            }
            System::new(config).run(&trace).exec_time.value()
        };
        let unlimited = run(None);
        let ten = run(Some(10));
        let one = run(Some(1));
        assert!(ten >= unlimited);
        assert!(one > ten, "1 MSHR {one} vs 10 MSHRs {ten}");
        // One MSHR serializes every miss: a dramatic slowdown.
        assert!(one > 1.5 * unlimited, "{one} vs {unlimited}");
    }

    #[test]
    fn port_contention_is_intermediate() {
        let llc = reference::by_name(&reference::fixed_capacity(), "Zhang").unwrap();
        let trace = workloads::by_name("mg").unwrap().generate(42, 20_000);
        let make = |policy| {
            System::new(ArchConfig::gainestown(llc.clone()).with_llc_write_policy(policy))
                .run(&trace)
                .exec_time
                .value()
        };
        let off = make(LlcWritePolicy::OffCriticalPath);
        let port = make(LlcWritePolicy::PortContention);
        let blocking = make(LlcWritePolicy::Blocking);
        assert!(off <= port + 1e-12);
        assert!(port <= blocking + 1e-12);
    }

    // --- Functional/timing split ---------------------------------------

    /// Every knob that only shapes Phase B, stacked at once: replay must
    /// still be bit-identical to the direct run from one shared tape.
    #[test]
    fn replay_is_bit_identical_across_timing_knobs() {
        let models = reference::fixed_capacity();
        let trace = workloads::by_name("mg").unwrap().generate(42, 20_000);
        let recorder =
            System::new(ArchConfig::gainestown(reference::sram_baseline())).with_warmup(0.25);
        let tape = recorder.record(&trace);
        for llc_name in ["SRAM", "Jan", "Kang", "Zhang"] {
            let llc = reference::by_name(&models, llc_name).unwrap();
            for policy in [
                LlcWritePolicy::OffCriticalPath,
                LlcWritePolicy::PortContention,
                LlcWritePolicy::Blocking,
            ] {
                let system =
                    System::new(ArchConfig::gainestown(llc.clone()).with_llc_write_policy(policy))
                        .with_warmup(0.25);
                assert_eq!(
                    system.replay(&tape),
                    system.run(&trace),
                    "{llc_name} under {policy:?}"
                );
            }
        }
    }

    #[test]
    fn replay_matches_run_with_detailed_dram_mshrs_and_endurance() {
        let llc = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
        let trace = workloads::by_name("cg").unwrap().generate(42, 20_000);
        let system = System::new(
            ArchConfig::gainestown(llc)
                .with_detailed_dram()
                .with_mshrs(8)
                .with_differential_writes(0.4),
        )
        .with_endurance_tracking(WearPolicy::RotateXor { period: 1_000 })
        .with_warmup(0.25);
        let tape = system.record(&trace);
        assert_eq!(system.replay(&tape), system.run(&trace));
    }

    #[test]
    fn replay_matches_run_with_functional_knobs_in_the_key() {
        // Prefetch + bypass + inclusion change the tape itself; a tape
        // recorded with the same flags still replays bit-identically.
        let llc = reference::by_name(&reference::fixed_capacity(), "Jan").unwrap();
        let trace = workloads::by_name("deepsjeng")
            .unwrap()
            .generate(42, 30_000);
        let system = System::new(
            ArchConfig::gainestown(llc)
                .with_l2_prefetch()
                .with_llc_bypass()
                .with_inclusive_llc(),
        )
        .with_warmup(0.25)
        .with_replacement(Replacement::Random);
        let tape = system.record(&trace);
        assert_eq!(system.replay(&tape), system.run(&trace));
    }

    #[test]
    fn tape_stats_only_carry_functional_counters() {
        let llc = reference::sram_baseline();
        let trace = workloads::by_name("mg").unwrap().generate(42, 10_000);
        let system = System::new(ArchConfig::gainestown(llc).with_detailed_dram());
        let tape = system.record(&trace);
        assert_eq!(tape.stats().llc_port_stall_cycles, 0);
        assert_eq!(tape.stats().dram_row_hits, 0);
        assert_eq!(tape.stats().dram_row_conflicts, 0);
        assert_eq!(tape.stats().dram_queue_cycles, 0);
        // But the replayed result does report the timing-side stats.
        let result = system.replay(&tape);
        assert!(result.stats.dram_row_hits > 0);
    }

    #[test]
    fn run_cached_matches_run() {
        let llc = reference::by_name(&reference::fixed_capacity(), "Xue").unwrap();
        let trace = std::sync::Arc::new(workloads::by_name("leela").unwrap().generate(7, 15_000));
        let system = System::new(ArchConfig::gainestown(llc)).with_warmup(0.25);
        assert_eq!(system.run_cached(&trace), system.run(&trace));
        // Second fetch replays the cached tape; still identical.
        assert_eq!(system.run_cached(&trace), system.run(&trace));
    }

    #[test]
    fn tape_keys_ignore_timing_knobs_but_honor_functional_ones() {
        let models = reference::fixed_capacity();
        let trace = workloads::by_name("tonto").unwrap().generate(42, 1_000);
        let sram = System::new(ArchConfig::gainestown(
            reference::by_name(&models, "SRAM").unwrap(),
        ));
        // Different technology, same 2 MB geometry: same key.
        let kang = System::new(
            ArchConfig::gainestown(reference::by_name(&models, "Kang").unwrap())
                .with_llc_write_policy(LlcWritePolicy::Blocking)
                .with_detailed_dram()
                .with_mshrs(4)
                .with_differential_writes(0.3),
        );
        assert_eq!(sram.tape_key(&trace), kang.tape_key(&trace));
        // Functional knobs split the key.
        let prefetching = System::new(
            ArchConfig::gainestown(reference::by_name(&models, "SRAM").unwrap()).with_l2_prefetch(),
        );
        assert_ne!(sram.tape_key(&trace), prefetching.tape_key(&trace));
        let warmed = System::new(ArchConfig::gainestown(
            reference::by_name(&models, "SRAM").unwrap(),
        ))
        .with_warmup(0.25);
        assert_ne!(sram.tape_key(&trace), warmed.tape_key(&trace));
        // And so does the trace identity.
        let other = workloads::by_name("tonto").unwrap().generate(42, 1_000);
        assert_ne!(sram.tape_key(&trace), sram.tape_key(&other));
    }

    #[test]
    #[should_panic(expected = "different core count")]
    fn replay_rejects_core_count_mismatch() {
        let llc = reference::sram_baseline();
        let trace = workloads::by_name("tonto").unwrap().generate(42, 1_000);
        let tape = System::new(ArchConfig::gainestown(llc.clone())).record(&trace);
        let _ = System::new(ArchConfig::gainestown(llc).with_cores(2)).replay(&tape);
    }

    #[test]
    fn replay_batch_matches_replay_across_policies_and_trackers() {
        let models = reference::fixed_capacity();
        let trace = workloads::by_name("mg").unwrap().generate(42, 20_000);
        let recorder =
            System::new(ArchConfig::gainestown(reference::sram_baseline())).with_warmup(0.25);
        let tape = recorder.record(&trace);
        // A deliberately heterogeneous batch: every write policy, a
        // detailed-DRAM + MSHR cell, and an endurance-tracked cell.
        let systems = [
            recorder,
            System::new(
                ArchConfig::gainestown(reference::by_name(&models, "Jan").unwrap())
                    .with_llc_write_policy(LlcWritePolicy::PortContention),
            )
            .with_warmup(0.25),
            System::new(
                ArchConfig::gainestown(reference::by_name(&models, "Kang").unwrap())
                    .with_llc_write_policy(LlcWritePolicy::Blocking)
                    .with_detailed_dram()
                    .with_mshrs(8)
                    .with_differential_writes(0.4),
            )
            .with_warmup(0.25),
            System::new(ArchConfig::gainestown(
                reference::by_name(&models, "Zhang").unwrap(),
            ))
            .with_warmup(0.25)
            .with_endurance_tracking(WearPolicy::RotateXor { period: 1_000 }),
        ];
        let refs: Vec<&System> = systems.iter().collect();
        let batched = System::replay_batch(&refs, &tape);
        assert_eq!(batched.len(), systems.len());
        for (system, batched) in systems.iter().zip(&batched) {
            assert_eq!(batched, &system.replay(&tape));
        }
    }

    #[test]
    fn replay_batch_of_nothing_is_nothing() {
        let llc = reference::sram_baseline();
        let trace = workloads::by_name("tonto").unwrap().generate(42, 1_000);
        let tape = System::new(ArchConfig::gainestown(llc)).record(&trace);
        assert!(System::replay_batch(&[], &tape).is_empty());
    }

    #[test]
    #[should_panic(expected = "different core count")]
    fn replay_batch_rejects_core_count_mismatch() {
        let llc = reference::sram_baseline();
        let trace = workloads::by_name("tonto").unwrap().generate(42, 1_000);
        let tape = System::new(ArchConfig::gainestown(llc.clone())).record(&trace);
        let ok = System::new(ArchConfig::gainestown(llc.clone()));
        let bad = System::new(ArchConfig::gainestown(llc).with_cores(2));
        let _ = System::replay_batch(&[&ok, &bad], &tape);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// The tentpole invariant, fuzzed: for random traces, geometries,
        /// and flag combinations, recording a tape and replaying it gives
        /// exactly the `SimResult` the fused single-pass path computes.
        #[test]
        fn replay_equals_run_for_random_configs(
            seed in 0u64..1000,
            n in 200usize..2500,
            rf in 0.2f64..0.95,
            fp_log2 in 8u32..18,
            threads in 1u8..5,
            cores in 1u32..5,
            warmup_idx in 0usize..4,
            llc_idx in 0usize..11,
            flags in 0u32..32,
            policy_idx in 0usize..3,
            repl_idx in 0usize..6,
            mshrs in 0u32..16,
        ) {
            use nvm_llc_trace::{Suite, WorkloadProfile};
            let w = WorkloadProfile::builder("prop", Suite::Npb)
                .footprint_blocks(1 << fp_log2)
                .read_fraction(rf)
                .threads(threads)
                .build();
            let trace = w.generate(seed, n);
            let models = reference::fixed_capacity();
            // One bit per boolean knob, so every combination is reachable.
            let (inclusive, prefetch, bypass, detailed, endurance) = (
                flags & 1 != 0,
                flags & 2 != 0,
                flags & 4 != 0,
                flags & 8 != 0,
                flags & 16 != 0,
            );
            let mut config = ArchConfig::gainestown(models[llc_idx % models.len()].clone())
                .with_cores(cores)
                .with_llc_write_policy(match policy_idx {
                    0 => LlcWritePolicy::OffCriticalPath,
                    1 => LlcWritePolicy::PortContention,
                    _ => LlcWritePolicy::Blocking,
                });
            if inclusive {
                config = config.with_inclusive_llc();
            }
            if prefetch {
                config = config.with_l2_prefetch();
            }
            if bypass {
                config = config.with_llc_bypass();
            }
            if detailed {
                config = config.with_detailed_dram();
            }
            if mshrs > 0 {
                config = config.with_mshrs(mshrs);
            }
            let warmup = [0.0, 0.1, 0.25, 0.5][warmup_idx];
            // Every replacement policy must hold the invariant — the
            // policy shapes the tape, not how it replays.
            let mut system = System::new(config)
                .with_warmup(warmup)
                .with_replacement(Replacement::ALL[repl_idx]);
            if endurance {
                system = system.with_endurance_tracking(WearPolicy::None);
            }
            let tape = system.record(&trace);
            proptest::prop_assert_eq!(system.replay(&tape), system.run(&trace));
        }

        /// The batched engine's invariant, fuzzed: for random traces,
        /// geometries, shared functional knobs, and an arbitrary subset
        /// of technologies whose timing knobs (write policy, MSHRs,
        /// detailed DRAM, differential writes, endurance tracking) all
        /// differ per member, one lockstep pass over the decoded tape is
        /// bit-identical to replaying each technology on its own.
        #[test]
        fn replay_batch_equals_per_technology_replay(
            seed in 0u64..1000,
            n in 200usize..2000,
            rf in 0.2f64..0.95,
            fp_log2 in 8u32..16,
            threads in 1u8..5,
            cores in 1u32..5,
            warmup_idx in 0usize..4,
            subset in 1u32..2048,
            flags in 0u32..8,
            repl_idx in 0usize..6,
        ) {
            use nvm_llc_trace::{Suite, WorkloadProfile};
            let w = WorkloadProfile::builder("prop", Suite::Npb)
                .footprint_blocks(1 << fp_log2)
                .read_fraction(rf)
                .threads(threads)
                .build();
            let trace = w.generate(seed, n);
            let models = reference::fixed_capacity();
            let warmup = [0.0, 0.1, 0.25, 0.5][warmup_idx];
            // Functional knobs are shared across the batch (they shape
            // the tape itself); timing knobs vary per member.
            let (inclusive, prefetch, bypass) =
                (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
            let mut systems = Vec::new();
            for (i, model) in models.iter().enumerate() {
                if subset & (1 << i) == 0 {
                    continue;
                }
                let mut config = ArchConfig::gainestown(model.clone())
                    .with_cores(cores)
                    .with_llc_write_policy(match i % 3 {
                        0 => LlcWritePolicy::OffCriticalPath,
                        1 => LlcWritePolicy::PortContention,
                        _ => LlcWritePolicy::Blocking,
                    });
                if inclusive {
                    config = config.with_inclusive_llc();
                }
                if prefetch {
                    config = config.with_l2_prefetch();
                }
                if bypass {
                    config = config.with_llc_bypass();
                }
                if i % 2 == 0 {
                    config = config.with_detailed_dram();
                }
                if i % 4 != 0 {
                    config = config.with_mshrs(2 + (i as u32 * 3) % 14);
                }
                if i % 5 == 0 {
                    config = config.with_differential_writes(0.2 + 0.15 * (i % 4) as f64);
                }
                // The replacement policy is a functional knob: shared
                // across the batch like the other tape-shaping flags.
                let mut system = System::new(config)
                    .with_warmup(warmup)
                    .with_replacement(Replacement::ALL[repl_idx]);
                if i % 3 == 1 {
                    system = system.with_endurance_tracking(WearPolicy::RotateXor { period: 500 });
                }
                systems.push(system);
            }
            let tape = systems[0].record(&trace);
            let refs: Vec<&System> = systems.iter().collect();
            let batched = System::replay_batch(&refs, &tape);
            proptest::prop_assert_eq!(batched.len(), systems.len());
            for (system, batched) in systems.iter().zip(&batched) {
                proptest::prop_assert_eq!(batched, &system.replay(&tape));
            }
        }

        /// Chunk-tail coverage for the batched kernels: the decoded
        /// lanes are walked in [`crate::tape::REPLAY_CHUNK_EVENTS`]
        /// blocks and the `SimpleBank` pads its engine set, so the
        /// equivalence is pinned exactly at the boundaries — an empty
        /// tape, a single event, one chunk ± one event, and a ragged
        /// multi-chunk tail — across random technology subsets and
        /// thread counts (multi-threaded traces route around the
        /// single-core bank entirely). Warmup is zero so every access
        /// is a replayed event and the counts land on the boundaries
        /// exactly.
        #[test]
        fn replay_batch_matches_at_chunk_boundaries(
            seed in 0u64..1000,
            boundary_idx in 0usize..6,
            subset in 1u32..2048,
            threads in 1u8..5,
        ) {
            use nvm_llc_trace::{Suite, WorkloadProfile};
            const CHUNK: usize = crate::tape::REPLAY_CHUNK_EVENTS;
            let n = [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 7][boundary_idx];
            let w = WorkloadProfile::builder("prop", Suite::Npb)
                .footprint_blocks(1 << 12)
                .read_fraction(0.7)
                .threads(threads)
                .build();
            let trace = w.generate(seed, n);
            let models = reference::fixed_capacity();
            let mut systems = Vec::new();
            for (i, model) in models.iter().enumerate() {
                if subset & (1 << i) == 0 {
                    continue;
                }
                // Alternate timing knobs so every tape drives both the
                // banked simple kernel and the per-event fallback.
                let mut config = ArchConfig::gainestown(model.clone());
                if i % 3 == 1 {
                    config = config
                        .with_llc_write_policy(LlcWritePolicy::Blocking)
                        .with_detailed_dram();
                }
                if i % 4 == 2 {
                    config = config.with_mshrs(4);
                }
                systems.push(System::new(config).with_warmup(0.0));
            }
            let tape = systems[0].record(&trace);
            let refs: Vec<&System> = systems.iter().collect();
            let batched = System::replay_batch(&refs, &tape);
            proptest::prop_assert_eq!(batched.len(), systems.len());
            for (system, batched) in systems.iter().zip(&batched) {
                proptest::prop_assert_eq!(batched, &system.replay(&tape));
            }
        }
    }
}
