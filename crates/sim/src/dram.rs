//! Detailed DRAM backend: distributed controllers with banked row
//! buffers (Table IV: 4 controllers, 7.6 GB/s each).
//!
//! The default system model charges a constant DRAM latency with a
//! bandwidth floor for overlapped misses; this module provides the
//! detailed alternative — address-interleaved controllers, per-bank open
//! rows, and queueing on controller occupancy — enabled through
//! [`crate::config::ArchConfig::detailed_dram`] and exercised by the
//! ablation bench.

use nvm_llc_cell::units::Nanoseconds;

/// Timing and geometry of the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of distributed memory controllers (Table IV: 4).
    pub controllers: u32,
    /// Banks per controller.
    pub banks_per_controller: u32,
    /// Row-buffer size in cache blocks (how many consecutive blocks share
    /// an open row).
    pub row_blocks: u32,
    /// Column access (row-buffer hit) latency, ns.
    pub t_cas_ns: f64,
    /// Row activation latency, ns.
    pub t_rcd_ns: f64,
    /// Precharge latency, ns.
    pub t_rp_ns: f64,
    /// Data-transfer occupancy per block, ns (64 B at 7.6 GB/s ≈ 8.4 ns).
    pub transfer_ns: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            controllers: 4,
            banks_per_controller: 8,
            row_blocks: 128, // 8 KiB rows of 64 B blocks
            t_cas_ns: 13.5,
            t_rcd_ns: 13.5,
            t_rp_ns: 13.5,
            transfer_ns: 64.0 / 7.6,
        }
    }
}

/// Outcome classification of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The addressed row was already open (fast column access).
    Hit,
    /// The bank was idle or held no valid row (activate + access).
    Empty,
    /// Another row was open (precharge + activate + access).
    Conflict,
}

/// Aggregated DRAM statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStats {
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to idle banks.
    pub row_empties: u64,
    /// Row conflicts (precharge required).
    pub row_conflicts: u64,
    /// Total cycles spent waiting for a busy controller bank.
    pub queue_cycles: u64,
}

impl DramStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.row_hits + self.row_empties + self.row_conflicts
    }

    /// Row-buffer hit rate over all accesses (0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.row_hits as f64 / n as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: f64,
}

/// A banked, row-buffered DRAM model.
///
/// Operates in the same approximate core-cycle domain as the system
/// simulator: each access takes the requesting core's current cycle and
/// returns the access latency in cycles (including any queueing on the
/// bank).
///
/// # Examples
///
/// ```
/// use nvm_llc_sim::dram::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::default(), 2.66);
/// let first = dram.access(0x100, 0.0);    // row empty: activate + CAS
/// let second = dram.access(0x104, first); // same controller & row: hit
/// assert!(second - first < first); // the hit is cheaper
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    freq_ghz: f64,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Creates the DRAM model for a core clock of `freq_ghz` GHz.
    pub fn new(config: DramConfig, freq_ghz: f64) -> Self {
        let banks =
            vec![Bank::default(); (config.controllers * config.banks_per_controller) as usize];
        Dram {
            config,
            freq_ghz,
            banks,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Routes a block address to its (controller, bank, row).
    fn route(&self, block: u64) -> (usize, u64) {
        let c = self.config;
        let controller = block % u64::from(c.controllers);
        let within = block / u64::from(c.controllers);
        let row = within / u64::from(c.row_blocks);
        let bank = row % u64::from(c.banks_per_controller);
        let idx = controller * u64::from(c.banks_per_controller) + bank;
        (idx as usize, row)
    }

    /// Performs one block access at core-cycle `now`; returns the cycle
    /// at which the data is available. Updates row-buffer state, bank
    /// occupancy, and statistics.
    pub fn access(&mut self, block: u64, now: f64) -> f64 {
        let (bank_idx, row) = self.route(block);
        let c = self.config;
        let freq = self.freq_ghz;
        let to_cycles = |ns: f64| Nanoseconds::new(ns).to_cycles(freq) as f64;
        let bank = &mut self.banks[bank_idx];

        let (outcome, service_ns) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, c.t_cas_ns),
            Some(_) => (RowOutcome::Conflict, c.t_rp_ns + c.t_rcd_ns + c.t_cas_ns),
            None => (RowOutcome::Empty, c.t_rcd_ns + c.t_cas_ns),
        };
        bank.open_row = Some(row);
        let start = now.max(bank.busy_until);
        let queued = start - now;
        let service = to_cycles(service_ns) + to_cycles(c.transfer_ns);
        bank.busy_until = start + service;

        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Empty => self.stats.row_empties += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        self.stats.queue_cycles += queued as u64;
        start + service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default(), 2.66)
    }

    #[test]
    fn sequential_blocks_hit_the_open_row() {
        let mut d = dram();
        // Blocks on the same controller and row: stride by controller
        // count within one row.
        let t0 = d.access(0, 0.0);
        let t1 = d.access(4, t0); // next block on controller 0, same row
        assert_eq!(d.stats().row_empties, 1);
        assert_eq!(d.stats().row_hits, 1);
        // A row hit is strictly faster than the empty-bank activate.
        assert!(t1 - t0 < t0);
    }

    #[test]
    fn far_blocks_conflict() {
        let mut d = dram();
        let row_span = u64::from(d.config().row_blocks)
            * u64::from(d.config().controllers)
            * u64::from(d.config().banks_per_controller);
        d.access(0, 0.0);
        d.access(row_span, 1000.0); // same bank, different row
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn adjacent_blocks_interleave_across_controllers() {
        let d = dram();
        let banks = d.config().banks_per_controller as usize;
        let (b0, _) = d.route(0);
        let (b1, _) = d.route(1);
        assert_ne!(
            b0 / banks,
            b1 / banks,
            "consecutive blocks share a controller"
        );
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut d = dram();
        let t0 = d.access(0, 0.0);
        // Immediate second access to the same bank must wait.
        let t1 = d.access(0, 0.0);
        assert!(t1 > t0);
        assert!(d.stats().queue_cycles > 0);
    }

    #[test]
    fn idle_gaps_avoid_queueing() {
        let mut d = dram();
        let t0 = d.access(0, 0.0);
        let t1 = d.access(4, t0 + 10_000.0);
        assert_eq!(d.stats().queue_cycles, 0);
        assert!(t1 > t0 + 10_000.0);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut d = dram();
        let mut now = 0.0;
        // A fully sequential sweep: high row hit rate.
        for block in 0..512u64 {
            now = d.access(block, now + 100.0);
        }
        assert!(
            d.stats().row_hit_rate() > 0.8,
            "{}",
            d.stats().row_hit_rate()
        );

        let mut scattered = dram();
        let mut now = 0.0;
        // Strided accesses hammering new rows: low hit rate.
        let stride =
            u64::from(scattered.config().row_blocks) * u64::from(scattered.config().controllers);
        for i in 0..512u64 {
            now = scattered.access(i * stride, now + 100.0);
        }
        assert!(scattered.stats().row_hit_rate() < 0.2);
    }

    #[test]
    fn stats_balance() {
        let mut d = dram();
        for block in [0u64, 1, 2, 3, 0, 1, 99999, 12345] {
            d.access(block, 1e9);
        }
        assert_eq!(d.stats().accesses(), 8);
    }
}
