//! Pluggable LLC replacement policies (ChampSim-style dispatch).
//!
//! The paper evaluates every NVM under a fixed LRU cache, but NVM
//! viability hinges on write behavior that replacement directly
//! controls: a policy that steers victims toward clean lines trades a
//! little hit ratio for a lot of writeback traffic, which is the
//! first-order lever on both write energy and endurance lifetime.
//! This module makes replacement a first-class scenario dimension:
//!
//! * [`PolicyKind`] — the selector threaded through the whole stack
//!   ([`crate::system::System::with_replacement`], the outcome-tape key,
//!   persistent store keys, the evaluator's policy axis, the service's
//!   `policy=` parameter, and the CLI's `--policy` flag);
//! * [`ReplacementPolicy`] — the touch/fill/evict/victim trait every
//!   policy implements over per-set metadata;
//! * [`PolicyState`] — the concrete per-cache state, dispatched by
//!   enum match (no boxing: caches are cloned per core per evaluation,
//!   and the dominant LRU case must stay allocation- and
//!   indirection-free).
//!
//! Replacement shapes the *functional* pass only: which block a miss
//! displaces. Timing replay ([`crate::system::System::replay`]) never
//! consults the policy — the policy's entire effect is already baked
//! into the outcome tape, which is why per-policy tapes keep fused and
//! replayed results bit-identical by construction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cache::Line;

/// Environment variable selecting the default replacement policy for
/// evaluations that did not pin one explicitly
/// ([`crate::runner::Evaluator::policy`] wins). Values are
/// [`PolicyKind::parse`] names; an invalid value warns once per
/// evaluation on stderr and falls back to LRU.
pub const POLICY_ENV: &str = "NVM_LLC_POLICY";

/// Replacement policy selector: the identity half of the subsystem.
///
/// This is what travels in keys (outcome tapes, persistent store
/// records, service routing) — the stateful half lives in
/// [`PolicyState`], built per cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's baseline everywhere).
    #[default]
    Lru,
    /// Uniform-random victim selection (replacement-sensitivity
    /// ablation).
    Random,
    /// Static re-reference interval prediction: 2-bit RRPV per line,
    /// long re-reference insertion, scan-resistant.
    Srrip,
    /// Dynamic RRIP: set-dueling between SRRIP and bimodal insertion,
    /// with a policy-selection counter trained by leader-set misses.
    Drrip,
    /// Signature-based hit prediction: a table of saturating counters,
    /// indexed by a block-address signature, predicts dead-on-arrival
    /// fills and inserts them at distant re-reference.
    Ship,
    /// Write-endurance-aware LRU: victims prefer the least-recently
    /// used *clean* line, so dirty lines age in place and NVM
    /// writebacks (the endurance- and energy-critical traffic) drop.
    Endurance,
}

impl PolicyKind {
    /// Every selectable policy, in persistence-tag order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Endurance,
    ];

    /// The policy's canonical lowercase name — what [`PolicyKind::parse`]
    /// accepts and what CLI/service selectors render.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Random => "random",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Drrip => "drrip",
            PolicyKind::Ship => "ship",
            PolicyKind::Endurance => "endurance",
        }
    }

    /// Parses a selector name (trimmed, case-insensitive). `None` for
    /// anything that is not exactly one of [`PolicyKind::ALL`]'s names.
    pub fn parse(raw: &str) -> Option<PolicyKind> {
        let name = raw.trim().to_ascii_lowercase();
        PolicyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Stable one-byte persistence tag ([`crate::tape::TapeKey`]'s wire
    /// form). Appending new policies extends this list; reordering it
    /// would silently re-key every stored tape, so don't.
    pub fn persist_tag(self) -> u8 {
        match self {
            PolicyKind::Lru => 0,
            PolicyKind::Random => 1,
            PolicyKind::Srrip => 2,
            PolicyKind::Drrip => 3,
            PolicyKind::Ship => 4,
            PolicyKind::Endurance => 5,
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses a [`POLICY_ENV`] value into a policy. `Err` carries the
/// one-line warning to print (matching the `NVM_LLC_THREADS`
/// convention): the variable name, the rejected value, and the
/// fallback that applies.
pub fn parse_policy(raw: &str) -> Result<PolicyKind, String> {
    PolicyKind::parse(raw).ok_or_else(|| {
        format!(
            "warning: ignoring invalid {POLICY_ENV}={raw:?} \
             (want one of lru, random, srrip, drrip, ship, endurance); using lru"
        )
    })
}

/// Replacement hooks over per-set metadata, ChampSim-shaped
/// (`update_replacement_state` / `find_victim`), split so the cache
/// array can keep its LRU stamp handling inline:
///
/// * [`touch`](ReplacementPolicy::touch) — a hit re-referenced a line;
/// * [`fill`](ReplacementPolicy::fill) — a miss installed a line;
/// * [`evict`](ReplacementPolicy::evict) — a valid line is about to be
///   displaced (training hook — SHiP's dead-block counters);
/// * [`victim`](ReplacementPolicy::victim) — choose the way to displace
///   in a full set.
///
/// `set_idx` is the set number and `way` the set-relative way index;
/// policies keep whatever per-line metadata they need in their own
/// flat `num_sets × ways` arrays. The cache calls `victim` only when
/// every way is valid (invalid ways fill first, policy unconsulted),
/// and never calls `evict`/`fill` for `invalidate`d lines — back-
/// invalidation is a coherence action, not a replacement decision.
pub trait ReplacementPolicy {
    /// A hit re-referenced `way` of `set_idx`.
    fn touch(&mut self, set_idx: usize, way: usize);
    /// A miss (or fill) installed `block` into `way` of `set_idx`.
    fn fill(&mut self, set_idx: usize, way: usize, block: u64);
    /// The valid line in `way` of `set_idx` is about to be displaced.
    fn evict(&mut self, set_idx: usize, way: usize);
    /// Chooses the victim way in a full set. `set` holds the set's
    /// lines in way order; every line is valid.
    fn victim(&mut self, set_idx: usize, set: &[Line]) -> usize;
}

/// RRPV ceiling for the 2-bit RRIP family (3 = distant re-reference).
const RRPV_MAX: u8 = 3;
/// SRRIP's insertion value: "long re-reference" (one below distant).
const RRPV_LONG: u8 = RRPV_MAX - 1;
/// DRRIP: one in `BRRIP_THROTTLE` bimodal fills inserts at long
/// instead of distant. The reference policy throttles with a 1/32
/// coin; a deterministic counter keeps bit-identity trivial.
const BRRIP_THROTTLE: u32 = 32;
/// DRRIP: every `DUELING_CONSTITUENCY`-th set leads for SRRIP, and the
/// next one for BRRIP; all others follow the PSEL counter.
const DUELING_CONSTITUENCY: usize = 32;
/// DRRIP PSEL saturation (10-bit counter in the reference design).
const PSEL_MAX: i32 = 512;
/// SHiP signature-history counter table: entries and counter ceiling.
const SHCT_ENTRIES: usize = 1 << 14;
const SHCT_MAX: u8 = 3;

/// Least-recently-used. Stateless: the cache array maintains recency
/// stamps inline (they predate this subsystem and double as the
/// endurance policy's age source), so LRU's victim scan reads them
/// straight off the set — today's fast path, bit for bit.
#[derive(Debug, Clone, Default)]
pub struct LruPolicy;

impl ReplacementPolicy for LruPolicy {
    fn touch(&mut self, _set_idx: usize, _way: usize) {}
    fn fill(&mut self, _set_idx: usize, _way: usize, _block: u64) {}
    fn evict(&mut self, _set_idx: usize, _way: usize) {}
    fn victim(&mut self, _set_idx: usize, set: &[Line]) -> usize {
        min_stamp_way(set)
    }
}

/// The least-recently-used way (first on ties — `min_by_key` keeps the
/// earliest minimum, preserving the pre-subsystem eviction order).
fn min_stamp_way(set: &[Line]) -> usize {
    set.iter()
        .enumerate()
        .min_by_key(|(_, l)| l.stamp)
        .map(|(i, _)| i)
        .expect("non-empty set")
}

/// Uniform-random victims, seeded per cache array exactly as the
/// pre-subsystem implementation was (`0xCAC4E`, drawn only at full-set
/// victim selection) so existing random-replacement tapes replay
/// unchanged.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: SmallRng,
}

impl Default for RandomPolicy {
    fn default() -> Self {
        RandomPolicy {
            rng: SmallRng::seed_from_u64(0xCAC4E),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn touch(&mut self, _set_idx: usize, _way: usize) {}
    fn fill(&mut self, _set_idx: usize, _way: usize, _block: u64) {}
    fn evict(&mut self, _set_idx: usize, _way: usize) {}
    fn victim(&mut self, _set_idx: usize, set: &[Line]) -> usize {
        self.rng.random_range(0..set.len())
    }
}

/// Static RRIP: per-line 2-bit re-reference prediction values.
#[derive(Debug, Clone)]
pub struct SrripPolicy {
    ways: usize,
    rrpv: Vec<u8>,
}

impl SrripPolicy {
    fn new(num_sets: u64, ways: usize) -> Self {
        SrripPolicy {
            ways,
            rrpv: vec![RRPV_MAX; num_sets as usize * ways],
        }
    }
}

/// The RRIP victim scan: the lowest way whose RRPV is distant; if none
/// is, age the whole set up and rescan (terminates — every round moves
/// the maximum strictly toward the ceiling).
fn rrip_victim(rrpv: &mut [u8]) -> usize {
    loop {
        if let Some(way) = rrpv.iter().position(|&v| v >= RRPV_MAX) {
            return way;
        }
        for v in rrpv.iter_mut() {
            *v += 1;
        }
    }
}

impl ReplacementPolicy for SrripPolicy {
    fn touch(&mut self, set_idx: usize, way: usize) {
        self.rrpv[set_idx * self.ways + way] = 0;
    }
    fn fill(&mut self, set_idx: usize, way: usize, _block: u64) {
        self.rrpv[set_idx * self.ways + way] = RRPV_LONG;
    }
    fn evict(&mut self, _set_idx: usize, _way: usize) {}
    fn victim(&mut self, set_idx: usize, _set: &[Line]) -> usize {
        let base = set_idx * self.ways;
        rrip_victim(&mut self.rrpv[base..base + self.ways])
    }
}

/// Dynamic RRIP: SRRIP vs bimodal insertion, chosen per fill by a
/// set-dueling PSEL counter. Sets `0, 32, 64, …` (mod
/// [`DUELING_CONSTITUENCY`]) always insert SRRIP-style and their
/// misses push PSEL toward BRRIP; sets `1, 33, 65, …` always insert
/// bimodally and push PSEL the other way; every other set follows the
/// counter's sign.
#[derive(Debug, Clone)]
pub struct DrripPolicy {
    ways: usize,
    rrpv: Vec<u8>,
    /// > 0: SRRIP leaders are missing more — bimodal insertion wins.
    psel: i32,
    /// Deterministic 1-in-[`BRRIP_THROTTLE`] long-insertion throttle.
    brip_fills: u32,
}

impl DrripPolicy {
    fn new(num_sets: u64, ways: usize) -> Self {
        DrripPolicy {
            ways,
            rrpv: vec![RRPV_MAX; num_sets as usize * ways],
            psel: 0,
            brip_fills: 0,
        }
    }

    /// `Some(true)`: SRRIP leader; `Some(false)`: BRRIP leader;
    /// `None`: follower.
    fn leader(set_idx: usize) -> Option<bool> {
        match set_idx % DUELING_CONSTITUENCY {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    /// Bimodal insertion: distant, except every
    /// [`BRRIP_THROTTLE`]-th fill which lands at long.
    fn brip_insert(&mut self) -> u8 {
        self.brip_fills = (self.brip_fills + 1) % BRRIP_THROTTLE;
        if self.brip_fills == 0 {
            RRPV_LONG
        } else {
            RRPV_MAX
        }
    }
}

impl ReplacementPolicy for DrripPolicy {
    fn touch(&mut self, set_idx: usize, way: usize) {
        self.rrpv[set_idx * self.ways + way] = 0;
    }
    fn fill(&mut self, set_idx: usize, way: usize, _block: u64) {
        // A fill is a miss: leader sets train the selector.
        let srrip_wins_here = match Self::leader(set_idx) {
            Some(true) => {
                self.psel = (self.psel + 1).min(PSEL_MAX);
                true
            }
            Some(false) => {
                self.psel = (self.psel - 1).max(-PSEL_MAX);
                false
            }
            None => self.psel <= 0,
        };
        self.rrpv[set_idx * self.ways + way] = if srrip_wins_here {
            RRPV_LONG
        } else {
            self.brip_insert()
        };
    }
    fn evict(&mut self, _set_idx: usize, _way: usize) {}
    fn victim(&mut self, set_idx: usize, _set: &[Line]) -> usize {
        let base = set_idx * self.ways;
        rrip_victim(&mut self.rrpv[base..base + self.ways])
    }
}

/// SHiP(-mem): fills carry a block-address signature; a table of
/// saturating counters learns, per signature, whether such fills get
/// re-referenced before eviction. Predicted-dead signatures insert at
/// distant RRPV (first in line for eviction), everything else at long.
#[derive(Debug, Clone)]
pub struct ShipPolicy {
    ways: usize,
    rrpv: Vec<u8>,
    /// Per-line fill signature, consulted at eviction/training time.
    line_sig: Vec<u16>,
    /// Per-line "was re-referenced since fill" outcome bit.
    line_reref: Vec<bool>,
    /// Signature history counter table.
    shct: Vec<u8>,
}

impl ShipPolicy {
    fn new(num_sets: u64, ways: usize) -> Self {
        let lines = num_sets as usize * ways;
        ShipPolicy {
            ways,
            rrpv: vec![RRPV_MAX; lines],
            line_sig: vec![0; lines],
            line_reref: vec![false; lines],
            // Weakly "reused" so cold signatures behave like SRRIP.
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    /// The block-address signature (the paper's SHiP-mem variant: no
    /// program counters in a trace-driven functional model).
    fn signature(block: u64) -> u16 {
        ((block ^ (block >> 14) ^ (block >> 28)) & (SHCT_ENTRIES as u64 - 1)) as u16
    }
}

impl ReplacementPolicy for ShipPolicy {
    fn touch(&mut self, set_idx: usize, way: usize) {
        let i = set_idx * self.ways + way;
        self.rrpv[i] = 0;
        if !self.line_reref[i] {
            self.line_reref[i] = true;
            let c = &mut self.shct[usize::from(self.line_sig[i])];
            *c = (*c + 1).min(SHCT_MAX);
        }
    }
    fn fill(&mut self, set_idx: usize, way: usize, block: u64) {
        let i = set_idx * self.ways + way;
        let sig = Self::signature(block);
        self.line_sig[i] = sig;
        self.line_reref[i] = false;
        self.rrpv[i] = if self.shct[usize::from(sig)] == 0 {
            RRPV_MAX
        } else {
            RRPV_LONG
        };
    }
    fn evict(&mut self, set_idx: usize, way: usize) {
        let i = set_idx * self.ways + way;
        if !self.line_reref[i] {
            let c = &mut self.shct[usize::from(self.line_sig[i])];
            *c = c.saturating_sub(1);
        }
    }
    fn victim(&mut self, set_idx: usize, _set: &[Line]) -> usize {
        let base = set_idx * self.ways;
        rrip_victim(&mut self.rrpv[base..base + self.ways])
    }
}

/// Write-endurance-aware replacement (after Mittal's endurance-aware
/// RRAM LLC management): evict the least-recently-used **clean** line
/// when one exists, falling back to plain LRU in all-dirty sets. A
/// clean victim costs a re-fetch at most; a dirty victim costs an NVM
/// writeback — the traffic that burns write energy and wears cells —
/// so trading a little recency fidelity for clean victims cuts
/// [`dram_writebacks`](crate::result::SimStats::dram_writebacks)
/// directly (measured in `BENCH_tape.json`'s `policy` block and the
/// EXPERIMENTS.md policy sweep).
#[derive(Debug, Clone, Default)]
pub struct EndurancePolicy;

impl ReplacementPolicy for EndurancePolicy {
    fn touch(&mut self, _set_idx: usize, _way: usize) {}
    fn fill(&mut self, _set_idx: usize, _way: usize, _block: u64) {}
    fn evict(&mut self, _set_idx: usize, _way: usize) {}
    fn victim(&mut self, _set_idx: usize, set: &[Line]) -> usize {
        set.iter()
            .enumerate()
            .filter(|(_, l)| !l.dirty)
            .min_by_key(|(_, l)| l.stamp)
            .map(|(i, _)| i)
            .unwrap_or_else(|| min_stamp_way(set))
    }
}

/// Per-cache policy state, dispatched by match. Cloning a cache clones
/// its policy state with it (the evaluator builds fresh caches per
/// run, so clones only happen in tests and hybrid sweeps).
#[derive(Debug, Clone)]
pub enum PolicyState {
    /// See [`LruPolicy`].
    Lru(LruPolicy),
    /// See [`RandomPolicy`].
    Random(RandomPolicy),
    /// See [`SrripPolicy`].
    Srrip(SrripPolicy),
    /// See [`DrripPolicy`].
    Drrip(DrripPolicy),
    /// See [`ShipPolicy`].
    Ship(ShipPolicy),
    /// See [`EndurancePolicy`].
    Endurance(EndurancePolicy),
}

impl PolicyState {
    /// Builds the state for `kind` over a `num_sets × ways` array.
    pub fn new(kind: PolicyKind, num_sets: u64, ways: usize) -> PolicyState {
        match kind {
            PolicyKind::Lru => PolicyState::Lru(LruPolicy),
            PolicyKind::Random => PolicyState::Random(RandomPolicy::default()),
            PolicyKind::Srrip => PolicyState::Srrip(SrripPolicy::new(num_sets, ways)),
            PolicyKind::Drrip => PolicyState::Drrip(DrripPolicy::new(num_sets, ways)),
            PolicyKind::Ship => PolicyState::Ship(ShipPolicy::new(num_sets, ways)),
            PolicyKind::Endurance => PolicyState::Endurance(EndurancePolicy),
        }
    }

    /// The selector this state was built for.
    pub fn kind(&self) -> PolicyKind {
        match self {
            PolicyState::Lru(_) => PolicyKind::Lru,
            PolicyState::Random(_) => PolicyKind::Random,
            PolicyState::Srrip(_) => PolicyKind::Srrip,
            PolicyState::Drrip(_) => PolicyKind::Drrip,
            PolicyState::Ship(_) => PolicyKind::Ship,
            PolicyState::Endurance(_) => PolicyKind::Endurance,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            PolicyState::Lru($p) => $body,
            PolicyState::Random($p) => $body,
            PolicyState::Srrip($p) => $body,
            PolicyState::Drrip($p) => $body,
            PolicyState::Ship($p) => $body,
            PolicyState::Endurance($p) => $body,
        }
    };
}

impl ReplacementPolicy for PolicyState {
    fn touch(&mut self, set_idx: usize, way: usize) {
        // LRU and the stamp-driven policies need no per-hit work; skip
        // the dispatch entirely on the dominant paths.
        match self {
            PolicyState::Lru(_) | PolicyState::Random(_) | PolicyState::Endurance(_) => {}
            other => dispatch!(other, p => p.touch(set_idx, way)),
        }
    }
    fn fill(&mut self, set_idx: usize, way: usize, block: u64) {
        match self {
            PolicyState::Lru(_) | PolicyState::Random(_) | PolicyState::Endurance(_) => {}
            other => dispatch!(other, p => p.fill(set_idx, way, block)),
        }
    }
    fn evict(&mut self, set_idx: usize, way: usize) {
        if let PolicyState::Ship(p) = self {
            p.evict(set_idx, way);
        }
    }
    fn victim(&mut self, set_idx: usize, set: &[Line]) -> usize {
        dispatch!(self, p => p.victim(set_idx, set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;

    #[test]
    fn names_round_trip_and_reject_garbage() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(PolicyKind::parse(&kind.name().to_uppercase()), Some(kind));
            assert_eq!(PolicyKind::parse(&format!("  {kind} ")), Some(kind));
        }
        for bad in ["", "lru2", "fifo", "plru", "rand om"] {
            assert_eq!(PolicyKind::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn persist_tags_are_stable_and_distinct() {
        let tags: Vec<u8> = PolicyKind::ALL.iter().map(|k| k.persist_tag()).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn parse_policy_warns_in_threads_env_style() {
        assert_eq!(parse_policy("srrip"), Ok(PolicyKind::Srrip));
        let warning = parse_policy("clock").unwrap_err();
        assert!(warning.contains(POLICY_ENV), "{warning}");
        assert!(warning.contains("\"clock\""), "{warning}");
        assert!(warning.contains("using lru"), "{warning}");
    }

    /// SRRIP against a hand-computed victim sequence in one 4-way set.
    ///
    /// Fills insert at RRPV 2, hits promote to 0, victims need RRPV 3
    /// (aging the whole set until one qualifies, lowest way first).
    #[test]
    fn srrip_victim_sequence_matches_hand_computation() {
        let mut c = SetAssocCache::new(1, 4, PolicyKind::Srrip);
        for b in [10u64, 20, 30, 40] {
            assert!(!c.access(b, false).hit);
        }
        // RRPVs now [2,2,2,2] (ways hold 10,20,30,40). Touch 10: way 0
        // promotes to 0 -> [0,2,2,2].
        assert!(c.access(10, false).hit);
        // Miss 50: no RRPV 3, age set to [1,3,3,3]; victim = way 1
        // (block 20); the fill re-inserts way 1 at 2 -> [1,2,3,3].
        let e = c.access(50, false).evicted.expect("full set evicts");
        assert_eq!(e.block, 20);
        // Miss 60: way 2 already distant -> evict block 30, insert at
        // 2 -> [1,2,2,3].
        let e = c.access(60, false).evicted.unwrap();
        assert_eq!(e.block, 30);
        // Miss 70: way 3 distant -> evict 40 -> [1,2,2,2].
        let e = c.access(70, false).evicted.unwrap();
        assert_eq!(e.block, 40);
        // Miss 80: no RRPV 3, age to [2,3,3,3]: way 1 (block 50) goes —
        // the early touch still protects block 10 in way 0.
        let e = c.access(80, false).evicted.unwrap();
        assert_eq!(e.block, 50);
        assert!(c.contains(10));
    }

    /// DRRIP set-dueling, hand-computed: SRRIP leader sets insert at
    /// long regardless of PSEL, BRRIP leaders insert distant (except
    /// the deterministic 1-in-32 throttle), and leader misses move the
    /// selector that followers obey.
    #[test]
    fn drrip_set_dueling_matches_hand_computation() {
        let ways = 2;
        let mut p = DrripPolicy::new(64, ways);
        // PSEL starts at 0: SRRIP wins ties, so a follower set (2)
        // inserts at long re-reference.
        p.fill(2, 0, 300);
        assert_eq!(p.rrpv[2 * ways], RRPV_LONG);
        // Set 0 is an SRRIP leader: its misses push PSEL toward BRRIP
        // and always insert SRRIP-style regardless of the counter.
        p.fill(0, 0, 100);
        p.fill(0, 1, 101);
        assert_eq!(p.psel, 2);
        assert_eq!(&p.rrpv[..2], &[RRPV_LONG, RRPV_LONG]);
        // With PSEL > 0 the follower now inserts bimodally: the first
        // bimodal fill is throttle count 1 (not the 32nd), so distant.
        p.fill(2, 1, 301);
        assert_eq!(p.rrpv[2 * ways + 1], RRPV_MAX);
        // Set 1 is a BRRIP leader: bimodal insertion whatever PSEL
        // says, and its miss pulls the counter back toward SRRIP.
        p.fill(1, 0, 200);
        assert_eq!(p.psel, 1);
        assert_eq!(p.rrpv[ways], RRPV_MAX);
        // The deterministic throttle: every 32nd bimodal fill inserts
        // long. Two bimodal fills have happened (counts 1, 2); 29 more
        // reach 31, and the next one is the long insertion.
        for i in 0..29 {
            p.fill(1, 1, 400 + i as u64);
        }
        p.fill(1, 0, 999);
        assert_eq!(p.rrpv[ways], RRPV_LONG, "32nd bimodal fill is long");
    }

    /// The endurance policy victimizes the oldest *clean* line while
    /// any exists, and only all-dirty sets fall back to plain LRU.
    #[test]
    fn endurance_prefers_clean_victims() {
        let mut c = SetAssocCache::new(1, 3, PolicyKind::Endurance);
        c.access(1, true); // dirty, oldest
        c.access(2, false); // clean
        c.access(3, false); // clean, newest
                            // LRU would evict block 1 (and pay a writeback); the endurance
                            // policy spends the oldest clean line instead.
        let out = c.access(4, false);
        let e = out.evicted.unwrap();
        assert_eq!(e.block, 2);
        assert!(!e.dirty, "no writeback for the clean victim");
        assert!(c.contains(1), "the dirty line aged in place");
        // All-dirty set: plain LRU order applies (block 1 is oldest).
        let mut d = SetAssocCache::new(1, 2, PolicyKind::Endurance);
        d.access(1, true);
        d.access(2, true);
        assert_eq!(d.access(3, false).writeback(), Some(1));
    }

    /// SHiP learns dead-on-arrival signatures: after a block's fills
    /// repeatedly die unreferenced, re-fills of that signature insert
    /// at distant RRPV and become the next victim instead of LRU's
    /// choice.
    #[test]
    fn ship_predicts_dead_fills_after_training() {
        let mut p = ShipPolicy::new(1, 4);
        let dead = 0x5000u64;
        let sig = ShipPolicy::signature(dead);
        assert_eq!(p.shct[usize::from(sig)], 1, "cold counter");
        // Fill and evict without a touch: the counter decays to 0.
        p.fill(0, 0, dead);
        p.evict(0, 0);
        assert_eq!(p.shct[usize::from(sig)], 0);
        // The next fill of the same signature is predicted dead.
        p.fill(0, 1, dead);
        assert_eq!(p.rrpv[1], RRPV_MAX);
        // A re-referenced line trains the counter back up.
        p.fill(0, 2, dead);
        p.touch(0, 2);
        assert_eq!(p.shct[usize::from(sig)], 1);
        // And a touched line's eviction does not decay it.
        p.evict(0, 2);
        assert_eq!(p.shct[usize::from(sig)], 1);
    }

    /// Every policy drives a real cache deterministically: identical
    /// access streams give identical outcomes, counters, and residency.
    #[test]
    fn all_policies_are_deterministic() {
        for kind in PolicyKind::ALL {
            let mut a = SetAssocCache::new(16, 4, kind);
            let mut b = SetAssocCache::new(16, 4, kind);
            for i in 0..4_000u64 {
                let block = (i * 2654435761) % 500;
                let is_write = i % 3 == 0;
                let ra = a.access(block, is_write);
                let rb = b.access(block, is_write);
                assert_eq!(ra, rb, "{kind} diverged at access {i}");
            }
            assert_eq!((a.hits(), a.misses()), (b.hits(), b.misses()), "{kind}");
        }
    }

    /// The subsystem's reason to exist: on a write-heavy conflict
    /// stream, endurance-aware victim selection emits strictly fewer
    /// dirty evictions than LRU.
    #[test]
    fn endurance_policy_cuts_dirty_evictions_vs_lru() {
        let run = |kind: PolicyKind| -> u64 {
            let mut c = SetAssocCache::new(4, 4, kind);
            let mut writebacks = 0;
            for i in 0..20_000u64 {
                // A small dirty working set (blocks 0..8, two per set,
                // each rewritten every 32 accesses) under heavy clean
                // conflict traffic: LRU keeps evicting — and writing
                // back — the dirty lines between touches.
                let (block, write) = if i % 4 == 0 {
                    ((i / 4) % 8, true)
                } else {
                    (8 + (i * 7) % 256, false)
                };
                if c.access(block, write).writeback().is_some() {
                    writebacks += 1;
                }
            }
            writebacks
        };
        let lru = run(PolicyKind::Lru);
        let endurance = run(PolicyKind::Endurance);
        assert!(
            endurance < lru,
            "endurance ({endurance}) must beat LRU ({lru})"
        );
    }
}
