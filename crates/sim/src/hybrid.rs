//! Hybrid SRAM/NVM LLC — the adaptive-placement related-work direction
//! the paper catalogues (Section I: novel architectural techniques;
//! references \[7\] "adaptive placement and migration policy for an
//! STT-RAM-based hybrid cache" and \[8\]).
//!
//! Each set is split into a few SRAM ways and many NVM ways. Blocks are
//! placed by predicted write behaviour: demand fills triggered by stores
//! and incoming dirty writebacks land in the SRAM ways (absorbing write
//! energy and latency), read-triggered fills land in the NVM ways
//! (density and leakage win). A block in NVM that starts taking writes
//! migrates to SRAM.
//!
//! The simulator here reuses the standard hierarchy and interval-timing
//! assumptions of [`crate::system`], swapping only the LLC stage.

use nvm_llc_cell::units::{Joules, Seconds};
use nvm_llc_circuit::LlcModel;
use nvm_llc_trace::{AccessKind, Trace};

use crate::cache::{Replacement, SetAssocCache};
use crate::config::ArchConfig;
use crate::result::{SimResult, SimStats};
use crate::system::LLC_HIT_EXPOSURE;

/// Configuration of the hybrid LLC.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// The SRAM partition's model (latency/energy per access).
    pub sram: LlcModel,
    /// The NVM partition's model.
    pub nvm: LlcModel,
    /// SRAM ways per set (of 16 total).
    pub sram_ways: u32,
    /// Total capacity in bytes (split by way ratio).
    pub capacity_bytes: u64,
}

impl HybridConfig {
    /// The common design point: 4 of 16 ways in SRAM.
    pub fn four_of_sixteen(sram: LlcModel, nvm: LlcModel) -> Self {
        let capacity_bytes = nvm.capacity.bytes();
        HybridConfig {
            sram,
            nvm,
            sram_ways: 4,
            capacity_bytes,
        }
    }
}

/// Per-partition event counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HybridStats {
    /// Hits served by the SRAM ways.
    pub sram_hits: u64,
    /// Hits served by the NVM ways.
    pub nvm_hits: u64,
    /// Writebacks absorbed by the SRAM ways.
    pub sram_writes: u64,
    /// Writebacks/migrations written into the NVM ways.
    pub nvm_writes: u64,
    /// NVM→SRAM migrations of write-hot blocks.
    pub migrations: u64,
}

/// Result of a hybrid run: the standard [`SimResult`] plus the partition
/// breakdown.
#[derive(Debug, Clone)]
pub struct HybridResult {
    /// Timing/energy/stats in the standard shape (LLC name is
    /// `"Hybrid(<sram>+<nvm>)"`).
    pub result: SimResult,
    /// Partition-level counters.
    pub hybrid: HybridStats,
}

/// Runs `trace` on a Gainestown with a hybrid LLC, reusing `base` for
/// everything above the LLC.
///
/// Writes are off the critical path (the paper's assumption); reads
/// expose [`LLC_HIT_EXPOSURE`] of the serving partition's read path.
pub fn simulate_hybrid(base: &ArchConfig, hybrid: &HybridConfig, trace: &Trace) -> HybridResult {
    let ways_total: u32 = 16;
    let sram_ways = hybrid.sram_ways.clamp(1, ways_total - 1);
    let nvm_ways = ways_total - sram_ways;
    let sets = (hybrid.capacity_bytes / (64 * u64::from(ways_total)))
        .max(1)
        .next_power_of_two();

    let mut cores: Vec<(SetAssocCache, SetAssocCache, f64, u64, u64)> = (0..base.cores)
        .map(|_| {
            (
                SetAssocCache::with_geometry(
                    base.l1d.capacity_bytes,
                    base.l1d.associativity,
                    base.l1d.block_bytes,
                    Replacement::Lru,
                ),
                SetAssocCache::with_geometry(
                    base.l2.capacity_bytes,
                    base.l2.associativity,
                    base.l2.block_bytes,
                    Replacement::Lru,
                ),
                0.0f64, // cycles
                0u64,   // instructions
                0u64,   // miss shadow end
            )
        })
        .collect();
    // Two parallel arrays share the set index space: a block lives in
    // exactly one (enforced below).
    let mut sram = SetAssocCache::new(sets, sram_ways, Replacement::Lru);
    let mut nvm = SetAssocCache::new(sets, nvm_ways, Replacement::Lru);

    let freq = base.freq_ghz;
    let sram_read = (hybrid.sram.tag_latency + hybrid.sram.read_latency).to_cycles(freq) as f64;
    let nvm_read = (hybrid.nvm.tag_latency + hybrid.nvm.read_latency).to_cycles(freq) as f64;
    let l2_cycles = base.l2.latency_cycles as f64;
    let dram_cycles = base.dram_cycles() as f64;
    let dram_transfer = base.dram_transfer_cycles() as f64;
    let rob = u64::from(base.rob_entries);

    let mut stats = SimStats::default();
    let mut hstats = HybridStats::default();

    // Energy accumulators, joules.
    let mut dynamic_j = 0.0f64;
    let e = |nj: nvm_llc_cell::units::Nanojoules| nj.to_joules().value();

    for event in trace {
        let idx = usize::from(event.tid) % cores.len();
        let (l1, l2, cycles, instructions, shadow_end) = {
            let c = &mut cores[idx];
            (&mut c.0, &mut c.1, &mut c.2, &mut c.3, &mut c.4)
        };
        let is_write = event.kind == AccessKind::Write;
        let block = event.block();
        *cycles += f64::from(event.gap_instructions) * base.base_cpi + base.base_cpi;
        *instructions += u64::from(event.gap_instructions) + 1;
        stats.accesses += 1;

        let l1_out = l1.access(block, is_write);
        if l1_out.hit {
            stats.l1d_hits += 1;
            continue;
        }
        stats.l1d_misses += 1;
        if let Some(wb) = l1_out.writeback() {
            if let Some(wb2) = l2.fill_dirty(wb) {
                // Dirty writeback into the LLC: SRAM ways absorb it.
                place_write(
                    &mut sram,
                    &mut nvm,
                    wb2,
                    &mut hstats,
                    &mut dynamic_j,
                    hybrid,
                );
                stats.llc_writes += 1;
            }
        }
        let l2_out = l2.access(block, false);
        if l2_out.hit {
            stats.l2_hits += 1;
            if !is_write {
                *cycles += l2_cycles;
            }
            continue;
        }
        stats.l2_misses += 1;
        if let Some(wb) = l2_out.writeback() {
            place_write(&mut sram, &mut nvm, wb, &mut hstats, &mut dynamic_j, hybrid);
            stats.llc_writes += 1;
        }

        // --- Hybrid LLC lookup: both partitions in parallel --------------
        let in_sram = sram.contains(block);
        let in_nvm = !in_sram && nvm.contains(block);
        if in_sram || in_nvm {
            stats.llc_hits += 1;
            let (read_cycles, hit_energy) = if in_sram {
                let _ = sram.access(block, false);
                hstats.sram_hits += 1;
                (sram_read, e(hybrid.sram.hit_energy))
            } else {
                let _ = nvm.access(block, false);
                hstats.nvm_hits += 1;
                // A write hit in NVM migrates the block to SRAM so future
                // writes land in the cheap partition.
                if is_write {
                    let _ = nvm_evict(&mut nvm, block);
                    place_write(
                        &mut sram,
                        &mut nvm,
                        block,
                        &mut hstats,
                        &mut dynamic_j,
                        hybrid,
                    );
                    hstats.migrations += 1;
                }
                (nvm_read, e(hybrid.nvm.hit_energy))
            };
            dynamic_j += hit_energy;
            if !is_write {
                *cycles += read_cycles * LLC_HIT_EXPOSURE;
            }
            continue;
        }

        // --- Miss: fill read-triggered blocks into NVM, store-triggered
        // into SRAM (they are about to be written).
        stats.llc_misses += 1;
        stats.llc_fills += 1;
        dynamic_j += e(hybrid.nvm.miss_energy);
        if is_write {
            let out = sram.access(block, false);
            if let Some(e) = out.evicted {
                demote(
                    &mut nvm,
                    e.block,
                    e.dirty,
                    &mut hstats,
                    &mut dynamic_j,
                    hybrid,
                );
            }
        } else {
            let out = nvm.access(block, false);
            if out.writeback().is_some() {
                stats.dram_writebacks += 1;
            }
        }
        if !is_write {
            if *instructions >= *shadow_end {
                *cycles += dram_cycles;
                *shadow_end = *instructions + rob;
            } else {
                *cycles += dram_transfer;
            }
        }
    }

    let max_cycles = cores.iter().map(|c| c.2).fold(0.0f64, f64::max);
    stats.instructions = cores.iter().map(|c| c.3).sum();
    let exec_time = Seconds::new(max_cycles / (freq * 1e9));

    // Leakage scales each partition's share of the ways.
    let sram_frac = f64::from(sram_ways) / f64::from(ways_total);
    let leak_w =
        hybrid.sram.leakage.value() * sram_frac + hybrid.nvm.leakage.value() * (1.0 - sram_frac);
    let leakage = Joules::new(leak_w * exec_time.value());

    HybridResult {
        result: SimResult {
            llc_name: format!(
                "Hybrid({}+{})",
                hybrid.sram.display_name(),
                hybrid.nvm.display_name()
            ),
            exec_time,
            llc_dynamic_energy: Joules::new(dynamic_j),
            llc_leakage_energy: leakage,
            endurance: None,
            stats,
        },
        hybrid: hstats,
    }
}

/// Writes (dirty fills, writebacks, migrations) go to the SRAM partition;
/// its victims demote into NVM.
fn place_write(
    sram: &mut SetAssocCache,
    nvm: &mut SetAssocCache,
    block: u64,
    hstats: &mut HybridStats,
    dynamic_j: &mut f64,
    hybrid: &HybridConfig,
) {
    hstats.sram_writes += 1;
    *dynamic_j += hybrid.sram.write_energy.to_joules().value();
    if let Some(victim) = sram.fill_dirty(block) {
        demote(nvm, victim, true, hstats, dynamic_j, hybrid);
    }
}

/// Demotes an SRAM victim into the NVM partition (one NVM array write).
fn demote(
    nvm: &mut SetAssocCache,
    block: u64,
    dirty: bool,
    hstats: &mut HybridStats,
    dynamic_j: &mut f64,
    hybrid: &HybridConfig,
) {
    hstats.nvm_writes += 1;
    *dynamic_j += hybrid.nvm.write_energy.to_joules().value();
    if dirty {
        let _ = nvm.fill_dirty(block);
    } else {
        let _ = nvm.access(block, false);
    }
}

/// Removes `block` from the NVM partition by overwriting its line with a
/// sentinel allocation in the same set (approximation: the line becomes
/// the sentinel, preserving occupancy).
fn nvm_evict(nvm: &mut SetAssocCache, block: u64) -> bool {
    // The plain cache API has no invalidate; emulate by touching the
    // block so it is MRU, then relying on the SRAM copy for future hits.
    // Duplicates are prevented by checking SRAM first on lookups.
    let _ = nvm.access_no_alloc(block);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_circuit::reference;
    use nvm_llc_trace::workloads;

    fn hybrid_config() -> HybridConfig {
        let models = reference::fixed_capacity();
        let sram = reference::by_name(&models, "SRAM").unwrap();
        let nvm = reference::by_name(&models, "Xue").unwrap();
        HybridConfig::four_of_sixteen(sram, nvm)
    }

    fn run(workload: &str, n: usize) -> HybridResult {
        let base = ArchConfig::gainestown(reference::sram_baseline());
        let trace = workloads::by_name(workload).unwrap().generate(42, n);
        simulate_hybrid(&base, &hybrid_config(), &trace)
    }

    #[test]
    fn hybrid_serves_hits_from_both_partitions() {
        let r = run("ft", 30_000);
        assert!(r.hybrid.sram_hits > 0, "{:?}", r.hybrid);
        assert!(r.hybrid.nvm_hits > 0, "{:?}", r.hybrid);
        assert_eq!(
            r.result.stats.llc_hits,
            r.hybrid.sram_hits + r.hybrid.nvm_hits
        );
    }

    #[test]
    fn writes_land_in_sram_ways() {
        let r = run("ft", 30_000);
        // Every LLC writeback was absorbed by SRAM (by construction),
        // NVM only sees demotions.
        assert!(r.hybrid.sram_writes >= r.result.stats.llc_writes);
    }

    #[test]
    fn write_hot_blocks_migrate() {
        let r = run("ft", 30_000);
        assert!(r.hybrid.migrations > 0);
    }

    #[test]
    fn hybrid_leakage_sits_between_pure_configurations() {
        let base = ArchConfig::gainestown(reference::sram_baseline());
        let trace = workloads::by_name("leela").unwrap().generate(42, 30_000);
        let hybrid = simulate_hybrid(&base, &hybrid_config(), &trace);

        let models = reference::fixed_capacity();
        let pure_sram = crate::system::System::new(ArchConfig::gainestown(
            reference::by_name(&models, "SRAM").unwrap(),
        ))
        .run(&trace);
        let pure_nvm = crate::system::System::new(ArchConfig::gainestown(
            reference::by_name(&models, "Xue").unwrap(),
        ))
        .run(&trace);

        let t = hybrid.result.exec_time.value();
        let hybrid_leak_w = hybrid.result.llc_leakage_energy.value() / t;
        let sram_leak_w = pure_sram.llc_leakage_energy.value() / pure_sram.exec_time.value();
        let nvm_leak_w = pure_nvm.llc_leakage_energy.value() / pure_nvm.exec_time.value();
        assert!(hybrid_leak_w < sram_leak_w);
        assert!(hybrid_leak_w > nvm_leak_w);
    }

    #[test]
    fn hybrid_cuts_nvm_array_writes_versus_pure_nvm() {
        // The design goal: write traffic is filtered by the SRAM ways.
        let base = ArchConfig::gainestown(reference::sram_baseline());
        let trace = workloads::by_name("ft").unwrap().generate(42, 30_000);
        let hybrid = simulate_hybrid(&base, &hybrid_config(), &trace);
        let pure_nvm = crate::system::System::new(ArchConfig::gainestown(
            reference::by_name(&reference::fixed_capacity(), "Xue").unwrap(),
        ))
        .run(&trace);
        // Pure NVM takes every writeback in the array; the hybrid's NVM
        // partition only takes demotions.
        assert!(
            hybrid.hybrid.nvm_writes < pure_nvm.stats.llc_writes + pure_nvm.stats.llc_fills,
            "{} vs {}",
            hybrid.hybrid.nvm_writes,
            pure_nvm.stats.llc_writes + pure_nvm.stats.llc_fills
        );
    }

    #[test]
    fn deterministic() {
        let a = run("leela", 5_000);
        let b = run("leela", 5_000);
        assert_eq!(a.result, b.result);
        assert_eq!(a.hybrid, b.hybrid);
    }
}
