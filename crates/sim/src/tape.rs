//! Outcome tapes: the functional half of the functional/timing split.
//!
//! The functional behavior of the cache hierarchy — which level serves
//! each access, which writebacks cascade into the LLC, which prefetches
//! fill, which victims invalidate — depends only on the trace and the
//! hierarchy *geometry* (core count, L1/L2/LLC shapes, replacement,
//! warmup, and the inclusive/prefetch/bypass flags). It never depends on
//! an NVM technology's latency or energy parameters. The paper's matrix
//! (Figures 1–2) evaluates eleven technologies against one geometry, so
//! ten of the eleven functional simulations per workload are identical.
//!
//! [`System::record`](crate::system::System::record) runs that functional
//! pass once and emits an [`OutcomeTape`]: one packed [`EventRecord`] per
//! post-warmup trace event (a flat `Vec<u64>` — no per-event heap
//! allocation) plus two compact side arrays of block addresses for the
//! endurance tracker and the detailed-DRAM model.
//! [`System::replay`](crate::system::System::replay) then applies a
//! technology's cycle latencies, port contention, ROB/MSHR miss-shadow
//! accounting, DRAM model, and energy equations (7)–(8) in a tight loop
//! over the tape, producing a `SimResult` bit-identical to the fused
//! single-pass [`System::run`](crate::system::System::run).
//!
//! [`cache`] memoizes tapes process-wide (exactly-once generation behind
//! `Arc<OnceLock>`, the same discipline as `nvm_llc_trace::cache`), so an
//! evaluation matrix performs one functional pass per distinct geometry
//! and replays everything else.

use crate::cache::Replacement;
use crate::result::SimStats;

/// Which hierarchy level served a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served by the private L1D.
    L1Hit,
    /// L1 miss, served by the private L2.
    L2Hit,
    /// L1+L2 miss, served by the shared LLC.
    LlcHit,
    /// Missed the whole hierarchy; DRAM provides the block.
    LlcMiss,
}

impl Outcome {
    fn from_bits(bits: u64) -> Outcome {
        match bits & 0b11 {
            0 => Outcome::L1Hit,
            1 => Outcome::L2Hit,
            2 => Outcome::LlcHit,
            _ => Outcome::LlcMiss,
        }
    }
}

/// One trace event's functional outcome, packed into a `u64`.
///
/// Layout (low to high): gap instructions (32 bits), core index (8),
/// is-write (1), outcome class (2), then one bit per side-event flag.
/// The flags fully determine how many entries the event consumes from
/// the tape's endurance and DRAM side arrays, so replay needs no per-
/// event indices into them — a running cursor suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord(u64);

impl EventRecord {
    const CORE_SHIFT: u32 = 32;
    const IS_WRITE: u64 = 1 << 40;
    const CLASS_SHIFT: u32 = 41;
    const L1_WB_LLC_WRITE: u64 = 1 << 43;
    const L2_WB_LLC_WRITE: u64 = 1 << 44;
    const PF_EVICT_LLC_WRITE: u64 = 1 << 45;
    const PF_LLC_FILL: u64 = 1 << 46;
    const LLC_FILLED: u64 = 1 << 47;

    /// Starts a record for an event on `core` after `gap` non-memory
    /// instructions, defaulting to an L1 hit with no side events.
    pub fn new(core: u8, gap: u32, is_write: bool) -> EventRecord {
        let mut bits = u64::from(gap) | (u64::from(core) << Self::CORE_SHIFT);
        if is_write {
            bits |= Self::IS_WRITE;
        }
        EventRecord(bits)
    }

    /// Sets the outcome class (default [`Outcome::L1Hit`]).
    pub fn with_outcome(mut self, outcome: Outcome) -> EventRecord {
        self.0 |= (outcome as u64) << Self::CLASS_SHIFT;
        self
    }

    /// Flags an LLC write from the L1 victim's L2-eviction cascade.
    pub fn with_l1_writeback_llc_write(mut self) -> EventRecord {
        self.0 |= Self::L1_WB_LLC_WRITE;
        self
    }

    /// Flags an LLC write from the L2's own dirty victim.
    pub fn with_l2_writeback_llc_write(mut self) -> EventRecord {
        self.0 |= Self::L2_WB_LLC_WRITE;
        self
    }

    /// Flags an LLC write from the prefetch fill's dirty L2 victim.
    pub fn with_prefetch_evict_llc_write(mut self) -> EventRecord {
        self.0 |= Self::PF_EVICT_LLC_WRITE;
        self
    }

    /// Flags a prefetch fill that allocated in the LLC (one DRAM access).
    pub fn with_prefetch_llc_fill(mut self) -> EventRecord {
        self.0 |= Self::PF_LLC_FILL;
        self
    }

    /// Flags a demand miss that allocated its block (not bypassed).
    pub fn with_llc_filled(mut self) -> EventRecord {
        self.0 |= Self::LLC_FILLED;
        self
    }

    /// Non-memory instructions preceding the access.
    pub fn gap_instructions(self) -> u32 {
        self.0 as u32
    }

    /// Core (0-based) the event ran on.
    pub fn core(self) -> usize {
        (self.0 >> Self::CORE_SHIFT) as u8 as usize
    }

    /// Whether the access was a store.
    pub fn is_write(self) -> bool {
        self.0 & Self::IS_WRITE != 0
    }

    /// The serving level.
    pub fn outcome(self) -> Outcome {
        Outcome::from_bits(self.0 >> Self::CLASS_SHIFT)
    }

    /// LLC write from the L1 victim cascade?
    pub fn l1_writeback_llc_write(self) -> bool {
        self.0 & Self::L1_WB_LLC_WRITE != 0
    }

    /// LLC write from the L2 dirty victim?
    pub fn l2_writeback_llc_write(self) -> bool {
        self.0 & Self::L2_WB_LLC_WRITE != 0
    }

    /// LLC write from the prefetch fill's dirty L2 victim?
    pub fn prefetch_evict_llc_write(self) -> bool {
        self.0 & Self::PF_EVICT_LLC_WRITE != 0
    }

    /// Prefetch allocated in the LLC?
    pub fn prefetch_llc_fill(self) -> bool {
        self.0 & Self::PF_LLC_FILL != 0
    }

    /// Demand miss allocated its block?
    pub fn llc_filled(self) -> bool {
        self.0 & Self::LLC_FILLED != 0
    }
}

/// Per-event side-event scratch: block addresses the event contributed to
/// the endurance and DRAM streams, in emission order. Fixed-capacity (an
/// event touches the LLC array at most five times and DRAM at most
/// twice), so the hot loop never allocates.
#[derive(Debug, Default)]
pub(crate) struct SideEvents {
    endurance: [u64; 5],
    endurance_len: u8,
    dram: [u64; 2],
    dram_len: u8,
}

impl SideEvents {
    pub(crate) fn clear(&mut self) {
        self.endurance_len = 0;
        self.dram_len = 0;
    }

    /// Queues one LLC array write (endurance stream).
    pub(crate) fn push_endurance(&mut self, block: u64) {
        self.endurance[usize::from(self.endurance_len)] = block;
        self.endurance_len += 1;
    }

    /// Queues one DRAM access (detailed-DRAM stream).
    pub(crate) fn push_dram(&mut self, block: u64) {
        self.dram[usize::from(self.dram_len)] = block;
        self.dram_len += 1;
    }

    pub(crate) fn endurance(&self) -> &[u64] {
        &self.endurance[..usize::from(self.endurance_len)]
    }

    pub(crate) fn dram(&self) -> &[u64] {
        &self.dram[..usize::from(self.dram_len)]
    }
}

/// The recorded functional outcome of one `(trace, geometry)` pair —
/// everything Phase B (timing/energy replay) needs, and nothing else.
#[derive(Debug, Clone, Default)]
pub struct OutcomeTape {
    /// One packed record per post-warmup trace event, in trace order.
    records: Vec<EventRecord>,
    /// LLC array-write block addresses (endurance stream), in order.
    endurance_blocks: Vec<u64>,
    /// DRAM access block addresses (detailed-DRAM stream), in order.
    dram_blocks: Vec<u64>,
    /// Functional counters (the timing-side fields stay zero).
    stats: SimStats,
    /// Core count the tape was recorded for (replay must match).
    cores: u32,
}

impl OutcomeTape {
    pub(crate) fn with_capacity(events: usize, cores: u32) -> OutcomeTape {
        OutcomeTape {
            records: Vec::with_capacity(events),
            endurance_blocks: Vec::new(),
            dram_blocks: Vec::new(),
            stats: SimStats::default(),
            cores,
        }
    }

    pub(crate) fn push(&mut self, record: EventRecord, sides: &SideEvents) {
        self.records.push(record);
        self.endurance_blocks.extend_from_slice(sides.endurance());
        self.dram_blocks.extend_from_slice(sides.dram());
    }

    pub(crate) fn set_stats(&mut self, stats: SimStats) {
        self.stats = stats;
    }

    /// Per-event records.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// The endurance stream (LLC array writes, block addresses).
    pub fn endurance_blocks(&self) -> &[u64] {
        &self.endurance_blocks
    }

    /// The DRAM stream (block addresses, `Dram::access` call order).
    pub fn dram_blocks(&self) -> &[u64] {
        &self.dram_blocks
    }

    /// The functional statistics of the recorded run (timing fields zero).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Core count the tape encodes.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Post-warmup events on the tape.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the tape holds no events.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate heap footprint in bytes (capacity-based).
    pub fn bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<EventRecord>()
            + (self.endurance_blocks.capacity() + self.dram_blocks.capacity())
                * std::mem::size_of::<u64>()
    }
}

/// Everything the functional pass depends on: change any field and the
/// outcome tape changes; hold them fixed and every technology shares one.
///
/// Notably absent: latencies, energies, the LLC write policy, ROB/MSHR
/// bounds, the DRAM backend choice, write mode, and endurance tracking —
/// those only shape Phase B.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TapeKey {
    trace_uid: u64,
    cores: u32,
    /// (capacity, associativity, block) per private level.
    l1d: (u64, u32, u32),
    l2: (u64, u32, u32),
    llc_capacity_bytes: u64,
    replacement: Replacement,
    /// `f64::to_bits` of the warmup fraction (bit-exact key).
    warmup_bits: u64,
    inclusive_llc: bool,
    l2_prefetch: bool,
    llc_bypass: bool,
}

impl TapeKey {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        trace_uid: u64,
        cores: u32,
        l1d: (u64, u32, u32),
        l2: (u64, u32, u32),
        llc_capacity_bytes: u64,
        replacement: Replacement,
        warmup_fraction: f64,
        inclusive_llc: bool,
        l2_prefetch: bool,
        llc_bypass: bool,
    ) -> TapeKey {
        TapeKey {
            trace_uid,
            cores,
            l1d,
            l2,
            llc_capacity_bytes,
            replacement,
            warmup_bits: warmup_fraction.to_bits(),
            inclusive_llc,
            l2_prefetch,
            llc_bypass,
        }
    }
}

pub mod cache {
    //! Process-wide outcome-tape cache: one functional pass per distinct
    //! `(trace, geometry)` key, shared by every technology replaying it.
    //!
    //! Mirrors `nvm_llc_trace::cache`: concurrent fetches of one key race
    //! to install a slot, exactly one runs [`System::record`], the rest
    //! block on the slot's `OnceLock` and receive the same
    //! `Arc<OutcomeTape>`. Entries live for the process (an evaluation's
    //! working set is one tape per geometry; [`clear`] exists for cold-
    //! cache benchmarking). [`stats`] exposes hit/miss/byte counters so
    //! experiment binaries can log cache effectiveness.

    use std::collections::HashMap;
    use std::fmt;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    use nvm_llc_trace::Trace;

    use super::{OutcomeTape, TapeKey};
    use crate::system::System;

    type Slot = Arc<OnceLock<Arc<OutcomeTape>>>;

    fn map() -> &'static Mutex<HashMap<TapeKey, Slot>> {
        static MAP: OnceLock<Mutex<HashMap<TapeKey, Slot>>> = OnceLock::new();
        MAP.get_or_init(|| Mutex::new(HashMap::new()))
    }

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Counters describing the cache's effectiveness so far.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CacheStats {
        /// Fetches served by an already-installed tape slot.
        pub hits: u64,
        /// Fetches that had to record a new tape (one functional pass
        /// each — in an evaluation matrix this equals the number of
        /// distinct geometries × traces).
        pub misses: u64,
        /// Total bytes of tape recorded.
        pub bytes: u64,
    }

    impl fmt::Display for CacheStats {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "{} hits / {} functional passes, {:.1} MiB taped",
                self.hits,
                self.misses,
                self.bytes as f64 / (1024.0 * 1024.0)
            )
        }
    }

    /// Fetches (recording at most once per process) the outcome tape for
    /// running `system` over `trace`.
    ///
    /// Keyed by [`System::tape_key`]; every technology whose
    /// configuration shares the functional geometry receives a pointer-
    /// equal `Arc<OutcomeTape>`.
    pub fn fetch(system: &System, trace: &Arc<Trace>) -> Arc<OutcomeTape> {
        let key = system.tape_key(trace);
        let (slot, fresh) = {
            let mut map = map().lock().expect("tape cache lock");
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        // A slot found in the map may still be mid-generation; only the
        // installer counts the miss, everyone else a hit (they reuse the
        // single functional pass either way).
        if fresh {
            MISSES.fetch_add(1, Ordering::Relaxed);
        } else {
            HITS.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(slot.get_or_init(|| {
            let tape = Arc::new(system.record(trace));
            BYTES.fetch_add(tape.bytes() as u64, Ordering::Relaxed);
            tape
        }))
    }

    /// Drops every cached tape (cold-cache benchmarking; in-flight `Arc`s
    /// stay alive until their holders drop them). Counters keep running.
    pub fn clear() {
        map().lock().expect("tape cache lock").clear();
    }

    /// Number of cached tape slots.
    pub fn len() -> usize {
        map().lock().expect("tape cache lock").len()
    }

    /// Snapshot of the process-wide cache counters.
    pub fn stats() -> CacheStats {
        CacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_every_field() {
        let r = EventRecord::new(3, 0xDEAD_BEEF, true)
            .with_outcome(Outcome::LlcMiss)
            .with_l1_writeback_llc_write()
            .with_l2_writeback_llc_write()
            .with_prefetch_evict_llc_write()
            .with_prefetch_llc_fill()
            .with_llc_filled();
        assert_eq!(r.gap_instructions(), 0xDEAD_BEEF);
        assert_eq!(r.core(), 3);
        assert!(r.is_write());
        assert_eq!(r.outcome(), Outcome::LlcMiss);
        assert!(r.l1_writeback_llc_write());
        assert!(r.l2_writeback_llc_write());
        assert!(r.prefetch_evict_llc_write());
        assert!(r.prefetch_llc_fill());
        assert!(r.llc_filled());
    }

    #[test]
    fn default_record_is_a_flagless_l1_hit() {
        let r = EventRecord::new(0, 7, false);
        assert_eq!(r.outcome(), Outcome::L1Hit);
        assert!(!r.is_write());
        assert!(!r.l1_writeback_llc_write());
        assert!(!r.l2_writeback_llc_write());
        assert!(!r.prefetch_evict_llc_write());
        assert!(!r.prefetch_llc_fill());
        assert!(!r.llc_filled());
        assert_eq!(r.gap_instructions(), 7);
    }

    #[test]
    fn outcome_classes_round_trip() {
        for o in [
            Outcome::L1Hit,
            Outcome::L2Hit,
            Outcome::LlcHit,
            Outcome::LlcMiss,
        ] {
            assert_eq!(EventRecord::new(0, 0, false).with_outcome(o).outcome(), o);
        }
    }

    #[test]
    fn side_events_accumulate_and_clear() {
        let mut s = SideEvents::default();
        s.push_endurance(10);
        s.push_endurance(20);
        s.push_dram(30);
        assert_eq!(s.endurance(), &[10, 20]);
        assert_eq!(s.dram(), &[30]);
        s.clear();
        assert!(s.endurance().is_empty());
        assert!(s.dram().is_empty());
    }

    #[test]
    fn tape_push_appends_records_and_streams() {
        let mut tape = OutcomeTape::with_capacity(2, 4);
        let mut s = SideEvents::default();
        s.push_endurance(1);
        s.push_dram(2);
        tape.push(EventRecord::new(0, 0, false), &s);
        s.clear();
        tape.push(EventRecord::new(1, 5, true), &s);
        assert_eq!(tape.len(), 2);
        assert!(!tape.is_empty());
        assert_eq!(tape.endurance_blocks(), &[1]);
        assert_eq!(tape.dram_blocks(), &[2]);
        assert_eq!(tape.cores(), 4);
        assert!(tape.bytes() >= 2 * 8 + 2 * 8);
    }

    #[test]
    fn tape_keys_distinguish_every_functional_knob() {
        let base = || {
            TapeKey::new(
                1,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            )
        };
        assert_eq!(base(), base());
        let mut variants = vec![
            TapeKey::new(
                2,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                8,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                4 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Random,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.0,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                true,
                false,
                false,
            ),
            TapeKey::new(
                1,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                true,
                false,
            ),
            TapeKey::new(
                1,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                true,
            ),
        ];
        variants.dedup();
        for v in &variants {
            assert_ne!(*v, base());
        }
    }
}
