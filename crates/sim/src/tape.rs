//! Outcome tapes: the functional half of the functional/timing split.
//!
//! The functional behavior of the cache hierarchy — which level serves
//! each access, which writebacks cascade into the LLC, which prefetches
//! fill, which victims invalidate — depends only on the trace and the
//! hierarchy *geometry* (core count, L1/L2/LLC shapes, replacement,
//! warmup, and the inclusive/prefetch/bypass flags). It never depends on
//! an NVM technology's latency or energy parameters. The paper's matrix
//! (Figures 1–2) evaluates eleven technologies against one geometry, so
//! ten of the eleven functional simulations per workload are identical.
//!
//! [`System::record`](crate::system::System::record) runs that functional
//! pass once and emits an [`OutcomeTape`]: one packed [`EventRecord`] per
//! post-warmup trace event (a flat `Vec<u64>` — no per-event heap
//! allocation) plus two compact side arrays of block addresses for the
//! endurance tracker and the detailed-DRAM model.
//! [`System::replay`](crate::system::System::replay) then applies a
//! technology's cycle latencies, port contention, ROB/MSHR miss-shadow
//! accounting, DRAM model, and energy equations (7)–(8) in a tight loop
//! over the tape, producing a `SimResult` bit-identical to the fused
//! single-pass [`System::run`](crate::system::System::run).
//!
//! [`cache`] memoizes tapes process-wide (exactly-once generation behind
//! `Arc<OnceLock>`, the same discipline as `nvm_llc_trace::cache`), so an
//! evaluation matrix performs one functional pass per distinct geometry
//! and replays everything else. The cache is bounded by a byte budget
//! with LRU eviction (default 256 MiB, [`cache::BUDGET_ENV`] override).
//!
//! For the matrix itself even the per-technology replays are redundant:
//! eleven technologies decode the same packed records and the same
//! varint-compressed side arrays eleven times. [`DecodedTape`] decodes a
//! tape **once** into a cache-friendly struct-of-arrays form (gap /
//! core / flag lanes plus prefix-summed side-stream cursors), and
//! [`System::replay_batch`](crate::system::System::replay_batch) drives
//! every technology's timing engine in lockstep over that single decoded
//! stream.

use crate::cache::Replacement;
use crate::result::SimStats;

/// Which hierarchy level served a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served by the private L1D.
    L1Hit,
    /// L1 miss, served by the private L2.
    L2Hit,
    /// L1+L2 miss, served by the shared LLC.
    LlcHit,
    /// Missed the whole hierarchy; DRAM provides the block.
    LlcMiss,
}

impl Outcome {
    fn from_bits(bits: u64) -> Outcome {
        match bits & 0b11 {
            0 => Outcome::L1Hit,
            1 => Outcome::L2Hit,
            2 => Outcome::LlcHit,
            _ => Outcome::LlcMiss,
        }
    }
}

/// One trace event's functional outcome, packed into a `u64`.
///
/// Layout (low to high): gap instructions (32 bits), core index (8),
/// is-write (1), outcome class (2), then one bit per side-event flag.
/// The flags fully determine how many entries the event consumes from
/// the tape's endurance and DRAM side arrays, so replay needs no per-
/// event indices into them — a running cursor suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord(u64);

impl EventRecord {
    const CORE_SHIFT: u32 = 32;
    const IS_WRITE: u64 = 1 << 40;
    const CLASS_SHIFT: u32 = 41;
    const L1_WB_LLC_WRITE: u64 = 1 << 43;
    const L2_WB_LLC_WRITE: u64 = 1 << 44;
    const PF_EVICT_LLC_WRITE: u64 = 1 << 45;
    const PF_LLC_FILL: u64 = 1 << 46;
    const LLC_FILLED: u64 = 1 << 47;

    /// Starts a record for an event on `core` after `gap` non-memory
    /// instructions, defaulting to an L1 hit with no side events.
    pub fn new(core: u8, gap: u32, is_write: bool) -> EventRecord {
        let mut bits = u64::from(gap) | (u64::from(core) << Self::CORE_SHIFT);
        if is_write {
            bits |= Self::IS_WRITE;
        }
        EventRecord(bits)
    }

    /// Sets the outcome class (default [`Outcome::L1Hit`]).
    pub fn with_outcome(mut self, outcome: Outcome) -> EventRecord {
        self.0 |= (outcome as u64) << Self::CLASS_SHIFT;
        self
    }

    /// Flags an LLC write from the L1 victim's L2-eviction cascade.
    pub fn with_l1_writeback_llc_write(mut self) -> EventRecord {
        self.0 |= Self::L1_WB_LLC_WRITE;
        self
    }

    /// Flags an LLC write from the L2's own dirty victim.
    pub fn with_l2_writeback_llc_write(mut self) -> EventRecord {
        self.0 |= Self::L2_WB_LLC_WRITE;
        self
    }

    /// Flags an LLC write from the prefetch fill's dirty L2 victim.
    pub fn with_prefetch_evict_llc_write(mut self) -> EventRecord {
        self.0 |= Self::PF_EVICT_LLC_WRITE;
        self
    }

    /// Flags a prefetch fill that allocated in the LLC (one DRAM access).
    pub fn with_prefetch_llc_fill(mut self) -> EventRecord {
        self.0 |= Self::PF_LLC_FILL;
        self
    }

    /// Flags a demand miss that allocated its block (not bypassed).
    pub fn with_llc_filled(mut self) -> EventRecord {
        self.0 |= Self::LLC_FILLED;
        self
    }

    /// Non-memory instructions preceding the access.
    pub fn gap_instructions(self) -> u32 {
        self.0 as u32
    }

    /// Core (0-based) the event ran on.
    pub fn core(self) -> usize {
        (self.0 >> Self::CORE_SHIFT) as u8 as usize
    }

    /// Whether the access was a store.
    pub fn is_write(self) -> bool {
        self.0 & Self::IS_WRITE != 0
    }

    /// The serving level.
    pub fn outcome(self) -> Outcome {
        Outcome::from_bits(self.0 >> Self::CLASS_SHIFT)
    }

    /// LLC write from the L1 victim cascade?
    pub fn l1_writeback_llc_write(self) -> bool {
        self.0 & Self::L1_WB_LLC_WRITE != 0
    }

    /// LLC write from the L2 dirty victim?
    pub fn l2_writeback_llc_write(self) -> bool {
        self.0 & Self::L2_WB_LLC_WRITE != 0
    }

    /// LLC write from the prefetch fill's dirty L2 victim?
    pub fn prefetch_evict_llc_write(self) -> bool {
        self.0 & Self::PF_EVICT_LLC_WRITE != 0
    }

    /// Prefetch allocated in the LLC?
    pub fn prefetch_llc_fill(self) -> bool {
        self.0 & Self::PF_LLC_FILL != 0
    }

    /// Demand miss allocated its block?
    pub fn llc_filled(self) -> bool {
        self.0 & Self::LLC_FILLED != 0
    }

    /// The raw packed word (for serialization).
    pub(crate) fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a record from its raw packed word.
    pub(crate) fn from_bits(bits: u64) -> EventRecord {
        EventRecord(bits)
    }

    /// Unpacks the record into its flat-field form — the unit the timing
    /// engine consumes. Bits 40–47 of the packed word are exactly the
    /// eight flag bits of [`DecodedEvent`], in the same order.
    pub fn decode(self) -> DecodedEvent {
        DecodedEvent {
            gap: self.0 as u32,
            core: (self.0 >> Self::CORE_SHIFT) as u8,
            flags: (self.0 >> 40) as u8,
        }
    }
}

/// One event in flat-field form: what a [`EventRecord`] packs, decoded.
///
/// `TimingEngine::apply` consumes these, so the fused run, the
/// per-technology replay, and the batched replay all feed the timing
/// engine the identical representation — the batched path just decodes
/// each record once instead of once per technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedEvent {
    pub(crate) gap: u32,
    pub(crate) core: u8,
    /// Bit 0 is-write, bits 1–2 outcome class, bits 3–7 the side-event
    /// flags in [`EventRecord`] order.
    pub(crate) flags: u8,
}

impl DecodedEvent {
    const IS_WRITE: u8 = 1;
    const CLASS_SHIFT: u32 = 1;
    const L1_WB_LLC_WRITE: u8 = 1 << 3;
    const L2_WB_LLC_WRITE: u8 = 1 << 4;
    const PF_EVICT_LLC_WRITE: u8 = 1 << 5;
    const PF_LLC_FILL: u8 = 1 << 6;
    const LLC_FILLED: u8 = 1 << 7;

    /// Non-memory instructions preceding the access.
    pub fn gap_instructions(self) -> u32 {
        self.gap
    }

    /// Core (0-based) the event ran on.
    pub fn core(self) -> usize {
        usize::from(self.core)
    }

    /// Whether the access was a store.
    pub fn is_write(self) -> bool {
        self.flags & Self::IS_WRITE != 0
    }

    /// The serving level.
    pub fn outcome(self) -> Outcome {
        Outcome::from_bits(u64::from(self.flags >> Self::CLASS_SHIFT))
    }

    /// LLC write from the L1 victim cascade?
    pub fn l1_writeback_llc_write(self) -> bool {
        self.flags & Self::L1_WB_LLC_WRITE != 0
    }

    /// LLC write from the L2 dirty victim?
    pub fn l2_writeback_llc_write(self) -> bool {
        self.flags & Self::L2_WB_LLC_WRITE != 0
    }

    /// LLC write from the prefetch fill's dirty L2 victim?
    pub fn prefetch_evict_llc_write(self) -> bool {
        self.flags & Self::PF_EVICT_LLC_WRITE != 0
    }

    /// Prefetch allocated in the LLC?
    pub fn prefetch_llc_fill(self) -> bool {
        self.flags & Self::PF_LLC_FILL != 0
    }

    /// Demand miss allocated its block?
    pub fn llc_filled(self) -> bool {
        self.flags & Self::LLC_FILLED != 0
    }

    /// How many entries this event consumes from the endurance and DRAM
    /// side streams during replay. Mirrors `TimingEngine::apply`'s
    /// early-out structure; the batched replay walks its running side
    /// cursors with it, and [`DecodedTape::decode`] uses it to validate
    /// that the flat side arrays partition exactly across the events.
    pub(crate) fn side_counts(self) -> (u32, u32) {
        let outcome = self.outcome();
        if outcome == Outcome::L1Hit {
            return (0, 0);
        }
        let mut wear = u32::from(self.l1_writeback_llc_write());
        if outcome == Outcome::L2Hit {
            return (wear, 0);
        }
        wear += u32::from(self.l2_writeback_llc_write());
        wear += u32::from(self.prefetch_evict_llc_write());
        let mut dram = 0;
        if self.prefetch_llc_fill() {
            wear += 1;
            dram += 1;
        }
        if outcome == Outcome::LlcHit {
            return (wear, dram);
        }
        wear += u32::from(self.llc_filled());
        (wear, dram + 1)
    }
}

/// Per-event side-event scratch: block addresses the event contributed to
/// the endurance and DRAM streams, in emission order. Fixed-capacity (an
/// event touches the LLC array at most five times and DRAM at most
/// twice), so the hot loop never allocates.
#[derive(Debug, Default)]
pub(crate) struct SideEvents {
    endurance: [u64; 5],
    endurance_len: u8,
    dram: [u64; 2],
    dram_len: u8,
}

impl SideEvents {
    pub(crate) fn clear(&mut self) {
        self.endurance_len = 0;
        self.dram_len = 0;
    }

    /// Queues one LLC array write (endurance stream).
    pub(crate) fn push_endurance(&mut self, block: u64) {
        self.endurance[usize::from(self.endurance_len)] = block;
        self.endurance_len += 1;
    }

    /// Queues one DRAM access (detailed-DRAM stream).
    pub(crate) fn push_dram(&mut self, block: u64) {
        self.dram[usize::from(self.dram_len)] = block;
        self.dram_len += 1;
    }

    pub(crate) fn endurance(&self) -> &[u64] {
        &self.endurance[..usize::from(self.endurance_len)]
    }

    pub(crate) fn dram(&self) -> &[u64] {
        &self.dram[..usize::from(self.dram_len)]
    }
}

/// A block-address stream stored as zigzag-deltas in LEB128 varints.
///
/// Both side streams are dominated by short hops inside a working set
/// (writebacks and fills of nearby blocks), so the signed delta from the
/// previous address usually fits one or two bytes instead of the eight a
/// flat `u64` costs. Appending and sequential decoding are the only
/// operations replay needs, and both are branch-light.
#[derive(Debug, Clone, Default)]
pub struct PackedBlocks {
    bytes: Vec<u8>,
    len: usize,
    /// Encoder state: the previously pushed address.
    last: u64,
}

impl PackedBlocks {
    pub(crate) fn push(&mut self, block: u64) {
        let delta = block.wrapping_sub(self.last) as i64;
        self.last = block;
        let mut zigzag = ((delta << 1) ^ (delta >> 63)) as u64;
        loop {
            let byte = (zigzag & 0x7F) as u8;
            zigzag >>= 7;
            if zigzag == 0 {
                self.bytes.push(byte);
                break;
            }
            self.bytes.push(byte | 0x80);
        }
        self.len += 1;
    }

    /// Number of encoded addresses.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequential decoder over the stream.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter {
            bytes: &self.bytes,
            pos: 0,
            prev: 0,
            remaining: self.len,
        }
    }

    /// Heap bytes held by the encoded form.
    fn encoded_bytes(&self) -> usize {
        self.bytes.capacity()
    }

    /// The encoded stream's raw parts, for serialization: varint bytes,
    /// address count, and the encoder's last-address state.
    pub(crate) fn parts(&self) -> (&[u8], usize, u64) {
        (&self.bytes, self.len, self.last)
    }

    /// Rebuilds a stream from [`PackedBlocks::parts`] output.
    pub(crate) fn from_parts(bytes: Vec<u8>, len: usize, last: u64) -> PackedBlocks {
        PackedBlocks { bytes, len, last }
    }

    /// Bytes a flat `Vec<u64>` of the same stream would hold.
    fn raw_bytes(&self) -> usize {
        self.len * std::mem::size_of::<u64>()
    }
}

/// Decoding iterator over a [`PackedBlocks`] stream.
#[derive(Debug, Clone)]
pub struct BlockIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev: u64,
    remaining: usize,
}

impl Iterator for BlockIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut zigzag = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.bytes[self.pos];
            self.pos += 1;
            zigzag |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        let delta = ((zigzag >> 1) as i64) ^ -((zigzag & 1) as i64);
        self.prev = self.prev.wrapping_add(delta as u64);
        Some(self.prev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BlockIter<'_> {}

/// The recorded functional outcome of one `(trace, geometry)` pair —
/// everything Phase B (timing/energy replay) needs, and nothing else.
#[derive(Debug, Clone, Default)]
pub struct OutcomeTape {
    /// One packed record per post-warmup trace event, in trace order.
    records: Vec<EventRecord>,
    /// LLC array-write block addresses (endurance stream), in order,
    /// varint/delta-compacted.
    endurance_blocks: PackedBlocks,
    /// DRAM access block addresses (detailed-DRAM stream), in order,
    /// varint/delta-compacted.
    dram_blocks: PackedBlocks,
    /// Functional counters (the timing-side fields stay zero).
    stats: SimStats,
    /// Core count the tape was recorded for (replay must match).
    cores: u32,
    /// Memoized flat decode, built on first batched replay and shared by
    /// every later one of the same (cached) tape. Lives and dies with
    /// the tape, so cache eviction frees both forms together.
    decoded: std::sync::OnceLock<DecodedTape>,
}

impl OutcomeTape {
    pub(crate) fn with_capacity(events: usize, cores: u32) -> OutcomeTape {
        OutcomeTape {
            records: Vec::with_capacity(events),
            endurance_blocks: PackedBlocks::default(),
            dram_blocks: PackedBlocks::default(),
            stats: SimStats::default(),
            cores,
            decoded: std::sync::OnceLock::new(),
        }
    }

    pub(crate) fn push(&mut self, record: EventRecord, sides: &SideEvents) {
        debug_assert!(
            self.decoded.get().is_none(),
            "tapes are frozen once decoded"
        );
        self.records.push(record);
        for &block in sides.endurance() {
            self.endurance_blocks.push(block);
        }
        for &block in sides.dram() {
            self.dram_blocks.push(block);
        }
    }

    pub(crate) fn set_stats(&mut self, stats: SimStats) {
        self.stats = stats;
    }

    /// Rebuilds a tape from deserialized parts (`crate::persist`). The
    /// decoded form starts empty, exactly as after recording.
    pub(crate) fn from_parts(
        records: Vec<EventRecord>,
        endurance_blocks: PackedBlocks,
        dram_blocks: PackedBlocks,
        stats: SimStats,
        cores: u32,
    ) -> OutcomeTape {
        OutcomeTape {
            records,
            endurance_blocks,
            dram_blocks,
            stats,
            cores,
            decoded: std::sync::OnceLock::new(),
        }
    }

    /// The raw packed side streams (endurance, DRAM), for serialization
    /// by [`crate::persist`].
    pub(crate) fn packed_streams(&self) -> (&PackedBlocks, &PackedBlocks) {
        (&self.endurance_blocks, &self.dram_blocks)
    }

    /// The flat decode of this tape, built on first use ([`DecodedTape`])
    /// and memoized: a warm batched matrix replays a cached tape many
    /// times but unpacks it exactly once.
    pub fn decoded(&self) -> &DecodedTape {
        self.decoded.get_or_init(|| {
            let _span = nvm_llc_obs::span!("tape_decode");
            DecodedTape::decode(self)
        })
    }

    /// Per-event records.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// The endurance stream (LLC array writes, block addresses), decoded
    /// sequentially from its varint/delta form.
    pub fn endurance_blocks(&self) -> BlockIter<'_> {
        self.endurance_blocks.iter()
    }

    /// The DRAM stream (block addresses, `Dram::access` call order),
    /// decoded sequentially from its varint/delta form.
    pub fn dram_blocks(&self) -> BlockIter<'_> {
        self.dram_blocks.iter()
    }

    /// The functional statistics of the recorded run (timing fields zero).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Core count the tape encodes.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Post-warmup events on the tape.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the tape holds no events.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate heap footprint in bytes (capacity-based), with the
    /// side streams at their encoded size.
    pub fn bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<EventRecord>()
            + self.endurance_blocks.encoded_bytes()
            + self.dram_blocks.encoded_bytes()
    }

    /// What the same tape would occupy with flat `u64` side arrays — the
    /// pre-compaction footprint the cache stats report against.
    pub fn raw_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<EventRecord>()
            + self.endurance_blocks.raw_bytes()
            + self.dram_blocks.raw_bytes()
    }
}

/// Events per replay chunk: the batched replay processes the decoded
/// lanes in fixed-size blocks of this many events (see
/// [`System::replay_batch`](crate::system::System::replay_batch)). At
/// 1024 events a chunk's hot lanes (`f64` gap + `u32` gap + flag + core)
/// total ~14 KiB — comfortably inside one L1 data cache while every
/// engine in the bank streams over it.
pub const REPLAY_CHUNK_EVENTS: usize = 1024;

/// Flat decode of an [`OutcomeTape`] in structure-of-arrays form: every
/// record unpacked once into parallel per-field lanes, and the varint
/// side streams decoded back to flat `u64` block arrays.
///
/// Built once per technology *group* by
/// [`System::replay_batch`](crate::system::System::replay_batch): the
/// record unpacking and varint decoding that a per-technology replay
/// repeats for every configuration happen a single time, and each timing
/// engine then streams the same pre-decoded lanes — event `i` consumes
/// side entries in exactly the order `TimingEngine::apply` emits them.
///
/// The lanes are parallel arrays indexed by event: `gap_lane` (non-memory
/// instructions), `gap_f64_lane` (the same gaps pre-converted to `f64`,
/// hoisting the int→float conversion the timing math would otherwise
/// repeat per technology — `u32 → f64` is exact, so the replay arithmetic
/// is bit-identical), `core_lane`, and `flag_lane` (the packed
/// [`DecodedEvent`] flag byte). `chunk_bases` records the side-stream
/// cursor positions at every [`REPLAY_CHUNK_EVENTS`] boundary so a
/// chunked replay can start any chunk without rewalking the prefix.
#[derive(Debug, Clone, Default)]
pub struct DecodedTape {
    gap_lane: Vec<u32>,
    gap_f64_lane: Vec<f64>,
    core_lane: Vec<u8>,
    flag_lane: Vec<u8>,
    wear_blocks: Vec<u64>,
    dram_blocks: Vec<u64>,
    /// `(wear, dram)` side-stream offsets at the start of each chunk,
    /// with one trailing entry holding the stream totals.
    chunk_bases: Vec<(usize, usize)>,
    stats: SimStats,
    cores: u32,
    /// Whether every event ran on core 0. A single-threaded workload
    /// under a multi-core config exercises only timing lane 0, so a
    /// replay may treat the engines as single-lane (the batched bank
    /// kernel depends on this).
    single_core: bool,
}

impl DecodedTape {
    /// Decodes `tape` once into flat-lane form.
    pub fn decode(tape: &OutcomeTape) -> DecodedTape {
        let n = tape.len();
        let mut decoded = DecodedTape {
            gap_lane: Vec::with_capacity(n),
            gap_f64_lane: Vec::with_capacity(n),
            core_lane: Vec::with_capacity(n),
            flag_lane: Vec::with_capacity(n),
            wear_blocks: tape.endurance_blocks().collect(),
            dram_blocks: tape.dram_blocks().collect(),
            chunk_bases: Vec::with_capacity(n.div_ceil(REPLAY_CHUNK_EVENTS) + 1),
            stats: tape.stats().clone(),
            cores: tape.cores(),
            single_core: true,
        };
        let (mut wear_pos, mut dram_pos) = (0usize, 0usize);
        for (i, rec) in tape.records().iter().enumerate() {
            let ev = rec.decode();
            if i % REPLAY_CHUNK_EVENTS == 0 {
                decoded.chunk_bases.push((wear_pos, dram_pos));
            }
            let (wear_n, dram_n) = ev.side_counts();
            wear_pos += wear_n as usize;
            dram_pos += dram_n as usize;
            decoded.gap_lane.push(ev.gap);
            decoded.gap_f64_lane.push(f64::from(ev.gap));
            decoded.core_lane.push(ev.core);
            decoded.flag_lane.push(ev.flags);
            decoded.single_core &= ev.core == 0;
        }
        decoded.chunk_bases.push((wear_pos, dram_pos));
        // Every side entry is claimed by exactly one event: the per-event
        // counts (mirroring `apply`'s early-outs) must sum to the stream
        // lengths, or replay cursors would drift between technologies.
        debug_assert_eq!(wear_pos, decoded.wear_blocks.len());
        debug_assert_eq!(dram_pos, decoded.dram_blocks.len());
        decoded
    }

    /// Post-warmup events on the tape.
    pub fn len(&self) -> usize {
        self.gap_lane.len()
    }

    /// Whether the tape holds no events.
    pub fn is_empty(&self) -> bool {
        self.gap_lane.is_empty()
    }

    /// Core count the tape encodes.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Whether every event ran on core 0 (single-threaded workload): a
    /// replay then touches only timing lane 0 of each engine.
    pub(crate) fn is_single_core(&self) -> bool {
        self.single_core
    }

    /// The functional statistics of the recorded run.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Event `i` reassembled into its flat-field form.
    pub(crate) fn event(&self, i: usize) -> DecodedEvent {
        DecodedEvent {
            gap: self.gap_lane[i],
            core: self.core_lane[i],
            flags: self.flag_lane[i],
        }
    }

    /// Number of replay chunks ([`REPLAY_CHUNK_EVENTS`] events each, the
    /// last possibly partial).
    pub(crate) fn num_chunks(&self) -> usize {
        self.gap_lane.len().div_ceil(REPLAY_CHUNK_EVENTS)
    }

    /// The event index range of chunk `chunk`.
    pub(crate) fn chunk_range(&self, chunk: usize) -> std::ops::Range<usize> {
        let lo = chunk * REPLAY_CHUNK_EVENTS;
        lo..(lo + REPLAY_CHUNK_EVENTS).min(self.gap_lane.len())
    }

    /// The `(wear, dram)` side-stream offsets at the start of `chunk`.
    pub(crate) fn chunk_side_base(&self, chunk: usize) -> (usize, usize) {
        self.chunk_bases[chunk]
    }

    /// The instruction-gap lane (`u32`), indexed by event.
    pub(crate) fn gap_lane(&self) -> &[u32] {
        &self.gap_lane
    }

    /// The instruction-gap lane pre-converted to `f64`, indexed by event.
    pub(crate) fn gap_f64_lane(&self) -> &[f64] {
        &self.gap_f64_lane
    }

    /// The core lane, indexed by event.
    pub(crate) fn core_lane(&self) -> &[u8] {
        &self.core_lane
    }

    /// The packed flag lane ([`DecodedEvent`] flag byte), indexed by
    /// event.
    pub(crate) fn flag_lane(&self) -> &[u8] {
        &self.flag_lane
    }

    /// The endurance side stream, flat.
    pub(crate) fn wear_blocks(&self) -> &[u64] {
        &self.wear_blocks
    }

    /// The DRAM side stream, flat.
    pub(crate) fn dram_blocks(&self) -> &[u64] {
        &self.dram_blocks
    }
}

/// Everything the functional pass depends on: change any field and the
/// outcome tape changes; hold them fixed and every technology shares one.
///
/// Notably absent: latencies, energies, the LLC write policy, ROB/MSHR
/// bounds, the DRAM backend choice, write mode, and endurance tracking —
/// those only shape Phase B.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TapeKey {
    trace_uid: u64,
    /// Content-derived trace identity ([`Trace::content_hash`]) — the
    /// process-independent half of the key, used by persistence
    /// ([`TapeKey::persist_bytes`]) where `trace_uid` would not survive
    /// a restart.
    trace_hash: u128,
    cores: u32,
    /// (capacity, associativity, block) per private level.
    l1d: (u64, u32, u32),
    l2: (u64, u32, u32),
    llc_capacity_bytes: u64,
    replacement: Replacement,
    /// `f64::to_bits` of the warmup fraction (bit-exact key).
    warmup_bits: u64,
    inclusive_llc: bool,
    l2_prefetch: bool,
    llc_bypass: bool,
}

impl TapeKey {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        trace_uid: u64,
        trace_hash: u128,
        cores: u32,
        l1d: (u64, u32, u32),
        l2: (u64, u32, u32),
        llc_capacity_bytes: u64,
        replacement: Replacement,
        warmup_fraction: f64,
        inclusive_llc: bool,
        l2_prefetch: bool,
        llc_bypass: bool,
    ) -> TapeKey {
        TapeKey {
            trace_uid,
            trace_hash,
            cores,
            l1d,
            l2,
            llc_capacity_bytes,
            replacement,
            warmup_bits: warmup_fraction.to_bits(),
            inclusive_llc,
            l2_prefetch,
            llc_bypass,
        }
    }

    /// The key's process-independent identity, serialized for content
    /// addressing: every field **except** the process-local `trace_uid`
    /// (the trace's content hash stands in for it). Two processes
    /// evaluating identical traces on identical geometries produce the
    /// same bytes — that is what lets a persistent store serve one's
    /// tapes to the other.
    pub(crate) fn persist_bytes(&self) -> Vec<u8> {
        let mut w = nvm_llc_store::wire::Writer::new();
        w.u128(self.trace_hash)
            .u32(self.cores)
            .u64(self.l1d.0)
            .u32(self.l1d.1)
            .u32(self.l1d.2)
            .u64(self.l2.0)
            .u32(self.l2.1)
            .u32(self.l2.2)
            .u64(self.llc_capacity_bytes)
            .u8(self.replacement.persist_tag())
            .u64(self.warmup_bits)
            .bool(self.inclusive_llc)
            .bool(self.l2_prefetch)
            .bool(self.llc_bypass);
        w.into_bytes()
    }
}

pub mod cache {
    //! Process-wide outcome-tape cache: one functional pass per distinct
    //! `(trace, geometry)` key, shared by every technology replaying it.
    //!
    //! Mirrors `nvm_llc_trace::cache`: concurrent fetches of one key race
    //! to install a slot, exactly one runs [`System::record`], the rest
    //! block on the slot's `OnceLock` and receive the same
    //! `Arc<OutcomeTape>`. [`stats`] exposes hit/miss/byte/eviction
    //! counters so experiment binaries can log cache effectiveness.
    //!
    //! Residency is bounded by a byte budget (default
    //! [`DEFAULT_BUDGET_BYTES`], overridable via the [`BUDGET_ENV`]
    //! environment variable or [`set_byte_budget`] — the
    //! `Evaluator::tape_cache_bytes` builder routes through the latter).
    //! When recorded tapes exceed the budget, least-recently-fetched
    //! entries are evicted; in-flight `Arc`s stay alive until their
    //! holders drop them, and a re-fetch of an evicted key simply records
    //! again.

    use std::collections::HashMap;
    use std::fmt;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    use nvm_llc_trace::Trace;

    use super::{OutcomeTape, TapeKey};
    use crate::system::System;

    type Slot = Arc<OnceLock<Arc<OutcomeTape>>>;

    /// Default residency budget: ~256 MiB of encoded tape.
    pub const DEFAULT_BUDGET_BYTES: u64 = 256 << 20;

    /// Environment variable overriding the budget, in MiB (`0` lifts the
    /// bound entirely). Read once, at the cache's first use; later
    /// changes go through [`set_byte_budget`].
    pub const BUDGET_ENV: &str = "NVM_LLC_TAPE_CACHE_MB";

    struct Entry {
        slot: Slot,
        /// Encoded size, filled in once the tape is recorded (`0` while
        /// the functional pass is still in flight — such entries are
        /// never evicted).
        bytes: u64,
        /// Lamport-style recency stamp from `Inner::clock`.
        last_used: u64,
    }

    struct Inner {
        map: HashMap<TapeKey, Entry>,
        clock: u64,
        /// Total encoded bytes of resident, fully recorded tapes.
        resident: u64,
        budget: u64,
    }

    /// Parses a [`BUDGET_ENV`] value into a byte budget (`0` lifts the
    /// bound). `Err` carries the one-line warning to print: the variable
    /// name, the rejected value, and the fallback that applies.
    pub(crate) fn parse_budget_mib(raw: &str) -> Result<u64, String> {
        match raw.trim().parse::<u64>() {
            Ok(0) => Ok(u64::MAX),
            Ok(mib) => Ok(mib << 20),
            Err(_) => Err(format!(
                "warning: ignoring invalid {BUDGET_ENV}={raw:?} \
                 (want MiB as an integer >= 0); using the default \
                 {} MiB budget",
                DEFAULT_BUDGET_BYTES >> 20
            )),
        }
    }

    fn inner() -> &'static Mutex<Inner> {
        static INNER: OnceLock<Mutex<Inner>> = OnceLock::new();
        INNER.get_or_init(|| {
            let budget = match std::env::var(BUDGET_ENV) {
                Ok(raw) => parse_budget_mib(&raw).unwrap_or_else(|warning| {
                    eprintln!("{warning}");
                    DEFAULT_BUDGET_BYTES
                }),
                Err(_) => DEFAULT_BUDGET_BYTES,
            };
            Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                resident: 0,
                budget,
            })
        })
    }

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static STORE_HITS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static RAW_BYTES: AtomicU64 = AtomicU64::new(0);
    static EVICTIONS: AtomicU64 = AtomicU64::new(0);

    /// The same counters, mirrored into the process-wide [`nvm_llc_obs`]
    /// registry (plus a residency gauge) so `/metricsz` and `/statsz`
    /// expose them without a bespoke snapshot path.
    pub mod metrics {
        use nvm_llc_obs::metrics::{counter, gauge, Counter, Gauge};

        /// `nvmllc_tape_cache_hits_total`
        pub fn hits() -> &'static Counter {
            counter(
                "nvmllc_tape_cache_hits_total",
                "Tape cache fetches served by an already-installed slot.",
            )
        }

        /// `nvmllc_tape_cache_misses_total`
        pub fn misses() -> &'static Counter {
            counter(
                "nvmllc_tape_cache_misses_total",
                "Tape cache fetches that found no resident tape.",
            )
        }

        /// `nvmllc_tape_cache_store_hits_total`
        pub fn store_hits() -> &'static Counter {
            counter(
                "nvmllc_tape_cache_store_hits_total",
                "Tape cache misses satisfied by decoding a persisted tape \
                 instead of re-running the functional pass.",
            )
        }

        /// `nvmllc_tape_cache_evictions_total`
        pub fn evictions() -> &'static Counter {
            counter(
                "nvmllc_tape_cache_evictions_total",
                "Tapes evicted to stay under the residency byte budget.",
            )
        }

        /// `nvmllc_tape_cache_resident_bytes`
        pub fn resident_bytes() -> &'static Gauge {
            gauge(
                "nvmllc_tape_cache_resident_bytes",
                "Encoded bytes of outcome tape currently resident.",
            )
        }

        /// Pre-registers this module's metric inventory, spans included.
        pub fn register() {
            hits();
            misses();
            store_hits();
            evictions();
            resident_bytes();
            for (name, help) in [
                (
                    "nvmllc_tape_fetch_seconds",
                    "Wall time of the `tape_fetch` span (cache hit or full fetch).",
                ),
                (
                    "nvmllc_tape_record_seconds",
                    "Wall time of the `tape_record` span.",
                ),
                (
                    "nvmllc_tape_replay_seconds",
                    "Wall time of the `tape_replay` span.",
                ),
                (
                    "nvmllc_tape_replay_batch_seconds",
                    "Wall time of the `tape_replay_batch` span.",
                ),
                (
                    "nvmllc_tape_replay_chunk_seconds",
                    "Wall time of one batched-replay event chunk (all \
                     engines over one block of decoded lanes).",
                ),
                (
                    "nvmllc_tape_decode_seconds",
                    "Wall time of the `tape_decode` span.",
                ),
            ] {
                nvm_llc_obs::metrics::histogram(name, help);
            }
        }
    }

    /// Counters describing the cache's effectiveness so far.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CacheStats {
        /// Fetches served by an already-installed tape slot.
        pub hits: u64,
        /// Fetches that found no resident tape. Each one either decoded
        /// a persisted tape ([`CacheStats::store_hits`]) or ran a
        /// functional pass — `misses - store_hits` is the number of
        /// functional passes actually executed.
        pub misses: u64,
        /// Memory misses satisfied by decoding a tape from the
        /// persistent store instead of re-running the functional pass.
        pub store_hits: u64,
        /// Total encoded bytes of tape recorded (varint/delta form).
        pub bytes: u64,
        /// What the same tapes would have occupied with flat `u64` side
        /// arrays — `bytes / raw_bytes` is the compaction ratio.
        pub raw_bytes: u64,
        /// Entries evicted to stay under the byte budget.
        pub evictions: u64,
        /// Encoded bytes currently resident.
        pub resident_bytes: u64,
    }

    impl fmt::Display for CacheStats {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "{} hits / {} misses ({} from store, {} functional \
                 passes), {:.1} MiB taped ({:.1} MiB raw, {} evictions)",
                self.hits,
                self.misses,
                self.store_hits,
                self.misses - self.store_hits,
                self.bytes as f64 / (1024.0 * 1024.0),
                self.raw_bytes as f64 / (1024.0 * 1024.0),
                self.evictions,
            )
        }
    }

    /// Fetches (recording exactly once while the key stays resident) the
    /// outcome tape for running `system` over `trace`.
    ///
    /// Keyed by [`System::tape_key`]; every technology whose
    /// configuration shares the functional geometry receives a pointer-
    /// equal `Arc<OutcomeTape>`.
    pub fn fetch(system: &System, trace: &Arc<Trace>) -> Arc<OutcomeTape> {
        fetch_with_store(system, trace, None)
    }

    /// [`fetch`] with a persistent middle tier: a memory miss first
    /// tries to decode the tape from `store` (content-addressed by
    /// [`crate::persist::tape_store_key`]) and only records when the
    /// disk also misses; freshly recorded tapes are written back. Any
    /// store read failure — absent, corrupt, stale format — silently
    /// falls through to recompute.
    pub fn fetch_with_store(
        system: &System,
        trace: &Arc<Trace>,
        store: Option<&Arc<nvm_llc_store::Store>>,
    ) -> Arc<OutcomeTape> {
        let _span = nvm_llc_obs::span!("tape_fetch");
        let key = system.tape_key(trace);
        let (slot, fresh) = {
            let mut inner = inner().lock().expect("tape cache lock");
            inner.clock += 1;
            let now = inner.clock;
            match inner.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = now;
                    (Arc::clone(&entry.slot), false)
                }
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    inner.map.insert(
                        key.clone(),
                        Entry {
                            slot: Arc::clone(&slot),
                            bytes: 0,
                            last_used: now,
                        },
                    );
                    (slot, true)
                }
            }
        };
        // A slot found in the map may still be mid-generation; only the
        // installer counts the miss, everyone else a hit (they reuse the
        // single functional pass either way).
        if fresh {
            MISSES.fetch_add(1, Ordering::Relaxed);
            metrics::misses().inc();
        } else {
            HITS.fetch_add(1, Ordering::Relaxed);
            metrics::hits().inc();
        }
        let tape = Arc::clone(slot.get_or_init(|| {
            if let Some(store) = store {
                let store_key = crate::persist::tape_store_key(&key);
                if let Some(tape) = store
                    .get_mapped(&store_key)
                    .and_then(|payload| crate::persist::decode_tape(&payload))
                {
                    STORE_HITS.fetch_add(1, Ordering::Relaxed);
                    metrics::store_hits().inc();
                    let tape = Arc::new(tape);
                    BYTES.fetch_add(tape.bytes() as u64, Ordering::Relaxed);
                    RAW_BYTES.fetch_add(tape.raw_bytes() as u64, Ordering::Relaxed);
                    return tape;
                }
                let tape = Arc::new(system.record(trace));
                let _ = store.put(&store_key, &crate::persist::encode_tape(&tape));
                BYTES.fetch_add(tape.bytes() as u64, Ordering::Relaxed);
                RAW_BYTES.fetch_add(tape.raw_bytes() as u64, Ordering::Relaxed);
                return tape;
            }
            let tape = Arc::new(system.record(trace));
            BYTES.fetch_add(tape.bytes() as u64, Ordering::Relaxed);
            RAW_BYTES.fetch_add(tape.raw_bytes() as u64, Ordering::Relaxed);
            tape
        }));
        if fresh {
            // Charge the recorded size to the residency account and shed
            // least-recently-used entries over budget. The key just
            // fetched is exempt: a budget smaller than one tape must not
            // turn every fetch into a record.
            let mut guard = inner().lock().expect("tape cache lock");
            let inner = &mut *guard;
            if let Some(entry) = inner.map.get_mut(&key) {
                if entry.bytes == 0 {
                    entry.bytes = tape.bytes() as u64;
                    inner.resident += entry.bytes;
                }
            }
            evict_over_budget(inner, Some(&key));
            metrics::resident_bytes().set(inner.resident);
        }
        tape
    }

    /// Removes least-recently-used recorded entries until residency fits
    /// the budget. Entries mid-recording (`bytes == 0`) and the `keep`
    /// key are never shed.
    fn evict_over_budget(inner: &mut Inner, keep: Option<&TapeKey>) {
        while inner.resident > inner.budget {
            let victim = inner
                .map
                .iter()
                .filter(|(k, e)| e.bytes > 0 && Some(*k) != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            let entry = inner.map.remove(&key).expect("victim key resident");
            inner.resident -= entry.bytes;
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            metrics::evictions().inc();
        }
    }

    /// Sets the residency budget in bytes (process-wide) and immediately
    /// sheds LRU entries down to it. `u64::MAX` lifts the bound.
    pub fn set_byte_budget(bytes: u64) {
        let mut inner = inner().lock().expect("tape cache lock");
        inner.budget = bytes;
        evict_over_budget(&mut inner, None);
        metrics::resident_bytes().set(inner.resident);
    }

    /// The current residency budget in bytes.
    pub fn byte_budget() -> u64 {
        inner().lock().expect("tape cache lock").budget
    }

    /// Drops every cached tape (cold-cache benchmarking; in-flight `Arc`s
    /// stay alive until their holders drop them). Counters keep running.
    pub fn clear() {
        let mut inner = inner().lock().expect("tape cache lock");
        inner.map.clear();
        inner.resident = 0;
        metrics::resident_bytes().set(0);
    }

    /// Number of cached tape slots.
    pub fn len() -> usize {
        inner().lock().expect("tape cache lock").map.len()
    }

    /// Snapshot of the process-wide cache counters.
    pub fn stats() -> CacheStats {
        let resident_bytes = inner().lock().expect("tape cache lock").resident;
        CacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            store_hits: STORE_HITS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
            raw_bytes: RAW_BYTES.load(Ordering::Relaxed),
            evictions: EVICTIONS.load(Ordering::Relaxed),
            resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_every_field() {
        let r = EventRecord::new(3, 0xDEAD_BEEF, true)
            .with_outcome(Outcome::LlcMiss)
            .with_l1_writeback_llc_write()
            .with_l2_writeback_llc_write()
            .with_prefetch_evict_llc_write()
            .with_prefetch_llc_fill()
            .with_llc_filled();
        assert_eq!(r.gap_instructions(), 0xDEAD_BEEF);
        assert_eq!(r.core(), 3);
        assert!(r.is_write());
        assert_eq!(r.outcome(), Outcome::LlcMiss);
        assert!(r.l1_writeback_llc_write());
        assert!(r.l2_writeback_llc_write());
        assert!(r.prefetch_evict_llc_write());
        assert!(r.prefetch_llc_fill());
        assert!(r.llc_filled());
    }

    #[test]
    fn parse_budget_mib_accepts_mib_and_warns_otherwise() {
        assert_eq!(cache::parse_budget_mib("64"), Ok(64 << 20));
        assert_eq!(cache::parse_budget_mib(" 1 "), Ok(1 << 20));
        // 0 lifts the bound entirely.
        assert_eq!(cache::parse_budget_mib("0"), Ok(u64::MAX));
        for bad in ["-3", "abc", "", "2.5"] {
            let warning = cache::parse_budget_mib(bad).unwrap_err();
            assert!(warning.contains(cache::BUDGET_ENV), "{warning}");
            assert!(warning.contains(&format!("{bad:?}")), "{warning}");
            assert!(warning.contains("256 MiB"), "{warning}");
        }
    }

    #[test]
    fn default_record_is_a_flagless_l1_hit() {
        let r = EventRecord::new(0, 7, false);
        assert_eq!(r.outcome(), Outcome::L1Hit);
        assert!(!r.is_write());
        assert!(!r.l1_writeback_llc_write());
        assert!(!r.l2_writeback_llc_write());
        assert!(!r.prefetch_evict_llc_write());
        assert!(!r.prefetch_llc_fill());
        assert!(!r.llc_filled());
        assert_eq!(r.gap_instructions(), 7);
    }

    #[test]
    fn outcome_classes_round_trip() {
        for o in [
            Outcome::L1Hit,
            Outcome::L2Hit,
            Outcome::LlcHit,
            Outcome::LlcMiss,
        ] {
            assert_eq!(EventRecord::new(0, 0, false).with_outcome(o).outcome(), o);
        }
    }

    #[test]
    fn side_events_accumulate_and_clear() {
        let mut s = SideEvents::default();
        s.push_endurance(10);
        s.push_endurance(20);
        s.push_dram(30);
        assert_eq!(s.endurance(), &[10, 20]);
        assert_eq!(s.dram(), &[30]);
        s.clear();
        assert!(s.endurance().is_empty());
        assert!(s.dram().is_empty());
    }

    #[test]
    fn tape_push_appends_records_and_streams() {
        let mut tape = OutcomeTape::with_capacity(2, 4);
        let mut s = SideEvents::default();
        s.push_endurance(1);
        s.push_dram(2);
        tape.push(EventRecord::new(0, 0, false), &s);
        s.clear();
        tape.push(EventRecord::new(1, 5, true), &s);
        assert_eq!(tape.len(), 2);
        assert!(!tape.is_empty());
        assert_eq!(tape.endurance_blocks().collect::<Vec<_>>(), vec![1]);
        assert_eq!(tape.dram_blocks().collect::<Vec<_>>(), vec![2]);
        assert_eq!(tape.cores(), 4);
        assert!(tape.bytes() >= 2 * 8);
        assert_eq!(tape.raw_bytes(), 2 * 8 + 2 * 8);
    }

    #[test]
    fn decode_round_trips_every_record_field() {
        let records = [
            EventRecord::new(0, 7, false),
            EventRecord::new(3, 0xDEAD_BEEF, true)
                .with_outcome(Outcome::LlcMiss)
                .with_l1_writeback_llc_write()
                .with_l2_writeback_llc_write()
                .with_prefetch_evict_llc_write()
                .with_prefetch_llc_fill()
                .with_llc_filled(),
            EventRecord::new(255, u32::MAX, true).with_outcome(Outcome::L2Hit),
        ];
        for r in records {
            let ev = r.decode();
            assert_eq!(ev.gap_instructions(), r.gap_instructions());
            assert_eq!(ev.core(), r.core());
            assert_eq!(ev.is_write(), r.is_write());
            assert_eq!(ev.outcome(), r.outcome());
            assert_eq!(ev.l1_writeback_llc_write(), r.l1_writeback_llc_write());
            assert_eq!(ev.l2_writeback_llc_write(), r.l2_writeback_llc_write());
            assert_eq!(ev.prefetch_evict_llc_write(), r.prefetch_evict_llc_write());
            assert_eq!(ev.prefetch_llc_fill(), r.prefetch_llc_fill());
            assert_eq!(ev.llc_filled(), r.llc_filled());
        }
    }

    #[test]
    fn packed_blocks_round_trip_adversarial_sequences() {
        let sequences: [&[u64]; 5] = [
            &[],
            &[0],
            &[u64::MAX, 0, u64::MAX, 1, u64::MAX - 1],
            &[7, 7, 7, 7],
            &[1 << 63, (1 << 63) - 1, 42, 0, u64::MAX],
        ];
        for seq in sequences {
            let mut packed = PackedBlocks::default();
            for &b in seq {
                packed.push(b);
            }
            assert_eq!(packed.len(), seq.len());
            assert_eq!(packed.iter().collect::<Vec<_>>(), seq);
            assert_eq!(packed.iter().len(), seq.len());
        }
    }

    #[test]
    fn packed_blocks_compact_local_streams() {
        // Block addresses hopping inside a working set: deltas fit one or
        // two varint bytes instead of eight.
        let mut packed = PackedBlocks::default();
        for i in 0..10_000u64 {
            packed.push((1 << 30) | ((i * 37) % 4096));
        }
        assert!(packed.bytes.len() * 3 < packed.raw_bytes());
        assert_eq!(packed.iter().count(), 10_000);
    }

    #[test]
    fn decoded_tape_mirrors_records_and_side_streams() {
        let mut tape = OutcomeTape::with_capacity(3, 2);
        let mut s = SideEvents::default();
        // L1 hit: no sides.
        tape.push(EventRecord::new(0, 3, false), &s);
        // L2 hit with an L1-writeback LLC write: one endurance entry.
        s.push_endurance(10);
        tape.push(
            EventRecord::new(1, 0, true)
                .with_outcome(Outcome::L2Hit)
                .with_l1_writeback_llc_write(),
            &s,
        );
        // Filled LLC miss: one endurance entry, one DRAM entry.
        s.clear();
        s.push_endurance(99);
        s.push_dram(99);
        tape.push(
            EventRecord::new(0, 5, false)
                .with_outcome(Outcome::LlcMiss)
                .with_llc_filled(),
            &s,
        );

        let decoded = DecodedTape::decode(&tape);
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded.cores(), 2);
        for (i, &rec) in tape.records().iter().enumerate() {
            assert_eq!(decoded.event(i), rec.decode());
        }
        // The lanes are parallel views of the same events, with the gap
        // pre-converted exactly to f64.
        for i in 0..decoded.len() {
            let ev = decoded.event(i);
            assert_eq!(decoded.gap_lane()[i], ev.gap);
            assert_eq!(decoded.gap_f64_lane()[i], f64::from(ev.gap));
            assert_eq!(decoded.core_lane()[i], ev.core);
            assert_eq!(decoded.flag_lane()[i], ev.flags);
        }
        // The flat side arrays carry the streams in emission order, and
        // the per-event counts partition them: (0, 0) + (1, 0) + (1, 1).
        assert_eq!(decoded.wear_blocks(), &[10, 99]);
        assert_eq!(decoded.dram_blocks(), &[99]);
        let counts: Vec<_> = (0..decoded.len())
            .map(|i| decoded.event(i).side_counts())
            .collect();
        assert_eq!(counts, vec![(0, 0), (1, 0), (1, 1)]);
        // A three-event tape is one (partial) chunk; its base offsets
        // start at zero and the trailing entry holds the stream totals.
        assert_eq!(decoded.num_chunks(), 1);
        assert_eq!(decoded.chunk_range(0), 0..3);
        assert_eq!(decoded.chunk_side_base(0), (0, 0));
        assert_eq!(decoded.chunk_bases.last(), Some(&(2, 1)));
    }

    #[test]
    fn tape_keys_distinguish_every_functional_knob() {
        let base = || {
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            )
        };
        assert_eq!(base(), base());
        let mut variants = vec![
            TapeKey::new(
                2,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                8,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                4 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Random,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Srrip,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Drrip,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Ship,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Endurance,
                0.25,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.0,
                false,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                true,
                false,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                true,
                false,
            ),
            TapeKey::new(
                1,
                0xABCD,
                4,
                (32768, 8, 64),
                (262144, 8, 64),
                2 << 20,
                Replacement::Lru,
                0.25,
                false,
                false,
                true,
            ),
        ];
        variants.dedup();
        for v in &variants {
            assert_ne!(*v, base());
        }
    }
}
