//! Experiment runner: workload × LLC-technology matrices with
//! SRAM-normalized metrics (the data behind the paper's Figures 1 and 2).

use nvm_llc_circuit::LlcModel;
use nvm_llc_trace::WorkloadProfile;

use crate::config::ArchConfig;
use crate::result::SimResult;
use crate::system::System;

/// How many accesses (per thread, before the workload's relative-volume
/// scaling) an evaluation replays by default. Tests use smaller runs.
pub const DEFAULT_BASE_ACCESSES: usize = 200_000;

/// The seed every reproducible experiment uses.
pub const DEFAULT_SEED: u64 = 2019; // the paper's publication year

/// Cache-warmup fraction for steady-state measurement (Sniper-style
/// warmup before the region of interest).
pub const DEFAULT_WARMUP: f64 = 0.25;

/// One technology's normalized outcome for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixEntry {
    /// LLC display name (e.g. `Kang_P`).
    pub llc: String,
    /// Raw simulation result.
    pub result: SimResult,
    /// Speedup vs the SRAM baseline (>1 is faster).
    pub speedup: f64,
    /// LLC energy normalized to SRAM (<1 is better).
    pub energy: f64,
    /// ED²P normalized to SRAM (<1 is better).
    pub ed2p: f64,
}

/// A full row of Figure 1/2: one workload against every technology.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Workload name.
    pub workload: String,
    /// The SRAM baseline run.
    pub baseline: SimResult,
    /// One entry per evaluated NVM.
    pub entries: Vec<MatrixEntry>,
}

impl MatrixRow {
    /// The entry for a technology by display or citation name.
    pub fn entry(&self, name: &str) -> Option<&MatrixEntry> {
        self.entries
            .iter()
            .find(|e| e.llc == name || e.llc.starts_with(&format!("{name}_")) || e.llc == format!("{name}"))
    }

    /// The most energy-efficient technology of this row.
    pub fn best_energy(&self) -> Option<&MatrixEntry> {
        self.entries
            .iter()
            .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite energy"))
    }

    /// The fastest technology of this row.
    pub fn best_speedup(&self) -> Option<&MatrixEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite speedup"))
    }
}

/// Evaluation harness over a fixed set of LLC models.
#[derive(Debug, Clone)]
pub struct Evaluator {
    baseline: LlcModel,
    nvms: Vec<LlcModel>,
    base_accesses: usize,
    seed: u64,
    cores: Option<u32>,
    warmup: f64,
}

impl Evaluator {
    /// Creates an evaluator normalizing against `baseline` (the SRAM row).
    pub fn new(baseline: LlcModel, nvms: Vec<LlcModel>) -> Self {
        Evaluator {
            baseline,
            nvms,
            base_accesses: DEFAULT_BASE_ACCESSES,
            seed: DEFAULT_SEED,
            cores: None,
            warmup: DEFAULT_WARMUP,
        }
    }

    /// Overrides the cache-warmup fraction (default 25%).
    pub fn warmup(mut self, fraction: f64) -> Self {
        self.warmup = fraction;
        self
    }

    /// Overrides the base per-thread access count (scaled per workload by
    /// its relative volume).
    pub fn base_accesses(mut self, accesses: usize) -> Self {
        self.base_accesses = accesses;
        self
    }

    /// Overrides the trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the core count (Section V-C core sweep); defaults to the
    /// Gainestown quad-core.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Runs one workload against the baseline and every NVM.
    pub fn run_workload(&self, workload: &WorkloadProfile) -> MatrixRow {
        let accesses = workload.scaled_accesses(self.base_accesses);
        let trace = workload.generate(self.seed, accesses);
        let config = |llc: &LlcModel| {
            let mut c = ArchConfig::gainestown(llc.clone());
            if let Some(cores) = self.cores {
                c = c.with_cores(cores);
            }
            c
        };
        let baseline = System::new(config(&self.baseline))
            .with_warmup(self.warmup)
            .run(&trace);
        let entries = self
            .nvms
            .iter()
            .map(|llc| {
                let result = System::new(config(llc)).with_warmup(self.warmup).run(&trace);
                MatrixEntry {
                    llc: result.llc_name.clone(),
                    speedup: result.speedup_vs(&baseline),
                    energy: result.energy_vs(&baseline),
                    ed2p: result.ed2p_vs(&baseline),
                    result,
                }
            })
            .collect();
        MatrixRow {
            workload: workload.name().to_owned(),
            baseline,
            entries,
        }
    }

    /// Runs a whole workload list (a full Figure 1a/1b/2a/2b panel).
    pub fn run_all(&self, workloads: &[WorkloadProfile]) -> Vec<MatrixRow> {
        workloads.iter().map(|w| self.run_workload(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_circuit::reference;
    use nvm_llc_trace::workloads;

    fn small_evaluator() -> Evaluator {
        let models = reference::fixed_capacity();
        let baseline = reference::by_name(&models, "SRAM").unwrap();
        let nvms: Vec<_> = models
            .into_iter()
            .filter(|m| m.name != "SRAM")
            .collect();
        Evaluator::new(baseline, nvms).base_accesses(8_000)
    }

    #[test]
    fn row_contains_all_ten_nvms() {
        let row = small_evaluator().run_workload(&workloads::by_name("tonto").unwrap());
        assert_eq!(row.entries.len(), 10);
        assert_eq!(row.workload, "tonto");
        assert!(row.entry("Jan").is_some());
        assert!(row.entry("Zhang_R").is_some());
    }

    #[test]
    fn baseline_normalizes_to_itself() {
        let row = small_evaluator().run_workload(&workloads::by_name("leela").unwrap());
        for e in &row.entries {
            assert!(e.speedup.is_finite() && e.speedup > 0.0);
            assert!(e.energy.is_finite() && e.energy > 0.0);
            assert!(e.ed2p.is_finite() && e.ed2p > 0.0);
        }
    }

    #[test]
    fn fixed_capacity_speedups_are_near_unity() {
        // Fig. 1: NVM performance within a few percent of SRAM.
        let row = small_evaluator().run_workload(&workloads::by_name("gamess").unwrap());
        for e in &row.entries {
            assert!(
                (0.75..=1.15).contains(&e.speedup),
                "{}: speedup {}",
                e.llc,
                e.speedup
            );
        }
    }

    #[test]
    fn most_nvms_save_energy_pcram_can_lose() {
        let row = small_evaluator().run_workload(&workloads::by_name("bzip2").unwrap());
        let jan = row.entry("Jan").unwrap();
        assert!(jan.energy < 0.6, "Jan energy {}", jan.energy);
        let kang = row.entry("Kang").unwrap();
        // Kang's 375 nJ writes make it the worst technology on
        // write-heavy bzip2 (Fig. 1: up to 6× SRAM).
        assert!(kang.energy > jan.energy * 3.0);
    }

    #[test]
    fn best_pickers_agree_with_entries() {
        let row = small_evaluator().run_workload(&workloads::by_name("tonto").unwrap());
        let best_e = row.best_energy().unwrap();
        assert!(row.entries.iter().all(|e| e.energy >= best_e.energy));
        let best_s = row.best_speedup().unwrap();
        assert!(row.entries.iter().all(|e| e.speedup <= best_s.speedup));
    }

    #[test]
    fn run_all_preserves_workload_order() {
        let ws: Vec<_> = ["tonto", "leela"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let rows = small_evaluator().run_all(&ws);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workload, "tonto");
        assert_eq!(rows[1].workload, "leela");
    }
}
