//! Experiment runner: workload × LLC-technology matrices with
//! SRAM-normalized metrics (the data behind the paper's Figures 1 and 2).
//!
//! [`Evaluator::run_all`] groups the (workload × technology) cell grid
//! by outcome-tape key — cells sharing a trace and a functional geometry
//! share one functional pass *and* one batched replay — and fans the
//! groups out over a scoped worker pool (`std::thread::scope` plus an
//! atomic work-index queue — no external dependencies). Results land in
//! a pre-sized slot vector indexed by cell number and rows are assembled
//! serially afterwards, so output is **bit-identical at every worker
//! count**. The worker count comes from [`Evaluator::threads`], else the
//! `NVM_LLC_THREADS` environment variable, else
//! [`std::thread::available_parallelism`]; `1` takes the exact legacy
//! serial path (no threads spawned).
//!
//! Cells share work at two levels. All technologies whose functional
//! geometry matches (the whole fixed-capacity matrix, for instance) run
//! Phase A once per workload via [`crate::tape::cache`]. On top of that,
//! the **batched replay path** ([`System::replay_batch`], the default —
//! see [`Evaluator::batched`]) decodes that shared tape once and drives
//! every technology's timing engine over the single decoded stream, so a
//! warm fixed-capacity matrix costs one decode + N cheap timing
//! applications per workload instead of N full replays. Singleton groups
//! (and `batched(false)` evaluators) take the per-technology
//! [`System::run_cached`] reference path.
//!
//! With a persistent store attached ([`Evaluator::store`], or the
//! process-wide [`crate::persist::set_global_store`]) two more tiers
//! appear: finished results are served straight from disk (skipping
//! evaluation entirely), and tape-cache misses try the disk before
//! re-running the functional pass. Both tiers are content-addressed
//! ([`crate::persist`]) and bit-exact, so attaching a store never
//! changes a result — only how fast it arrives.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use nvm_llc_circuit::LlcModel;
use nvm_llc_store::Store;
use nvm_llc_trace::{Trace, WorkloadProfile};

use crate::config::ArchConfig;
use crate::policy::{parse_policy, PolicyKind, POLICY_ENV};
use crate::result::SimResult;
use crate::system::System;
use crate::tape::TapeKey;

/// How many accesses (per thread, before the workload's relative-volume
/// scaling) an evaluation replays by default. Tests use smaller runs.
pub const DEFAULT_BASE_ACCESSES: usize = 200_000;

/// The seed every reproducible experiment uses.
pub const DEFAULT_SEED: u64 = 2019; // the paper's publication year

/// Cache-warmup fraction for steady-state measurement (Sniper-style
/// warmup before the region of interest).
pub const DEFAULT_WARMUP: f64 = 0.25;

/// Environment variable overriding the evaluation worker count (used when
/// [`Evaluator::threads`] was not called; `1` forces the serial path).
pub const THREADS_ENV: &str = "NVM_LLC_THREADS";

/// Parses a [`THREADS_ENV`] value into a worker count. `Err` carries
/// the one-line warning to print: the variable name, the rejected
/// value, and the fallback that applies.
pub(crate) fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "warning: ignoring invalid {THREADS_ENV}={raw:?} \
             (want an integer >= 1); using all available cores"
        )),
    }
}

/// Evaluator counters in the process-wide [`nvm_llc_obs`] registry.
pub mod metrics {
    use nvm_llc_obs::metrics::{counter, Counter};

    /// `nvmllc_eval_runs_total`
    pub fn runs() -> &'static Counter {
        counter(
            "nvmllc_eval_runs_total",
            "Calls to Evaluator::run_all (whole-matrix evaluations).",
        )
    }

    /// `nvmllc_eval_cells_total`
    pub fn cells() -> &'static Counter {
        counter(
            "nvmllc_eval_cells_total",
            "Workload x technology cells evaluated (excludes cells served \
             from the persistent result tier).",
        )
    }

    /// `nvmllc_eval_groups_total`
    pub fn groups() -> &'static Counter {
        counter(
            "nvmllc_eval_groups_total",
            "Tape-key groups scheduled (one functional pass + one batched \
             replay each).",
        )
    }

    /// `nvmllc_eval_result_tier_hits_total`
    pub fn result_tier_hits() -> &'static Counter {
        counter(
            "nvmllc_eval_result_tier_hits_total",
            "Cells filled straight from the persistent result store, \
             skipping evaluation entirely.",
        )
    }

    /// Pre-registers the evaluator's metric inventory, spans included.
    pub fn register() {
        runs();
        cells();
        groups();
        result_tier_hits();
        nvm_llc_obs::metrics::histogram(
            "nvmllc_eval_run_all_seconds",
            "Wall time of the `eval_run_all` span.",
        );
    }
}

/// One technology's normalized outcome for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixEntry {
    /// LLC display name (e.g. `Kang_P`).
    pub llc: String,
    /// Raw simulation result.
    pub result: SimResult,
    /// Speedup vs the SRAM baseline (>1 is faster).
    pub speedup: f64,
    /// LLC energy normalized to SRAM (<1 is better).
    pub energy: f64,
    /// ED²P normalized to SRAM (<1 is better).
    pub ed2p: f64,
}

/// A full row of Figure 1/2: one workload against every technology.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Workload name.
    pub workload: String,
    /// The SRAM baseline run.
    pub baseline: SimResult,
    /// One entry per evaluated NVM.
    pub entries: Vec<MatrixEntry>,
}

/// One replacement policy's full matrix: every workload row evaluated
/// with the LLC running that policy. [`Evaluator::run_matrix`] returns
/// one of these per requested policy, in request order.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyMatrix {
    /// The LLC replacement policy every row of this matrix ran under.
    pub policy: PolicyKind,
    /// One row per workload, in input order.
    pub rows: Vec<MatrixRow>,
}

impl PolicyMatrix {
    /// The row for a workload by name.
    pub fn row(&self, workload: &str) -> Option<&MatrixRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }
}

impl MatrixRow {
    /// The entry for a technology by display or citation name: an exact
    /// match, or a `_`-suffixed variant (`"Kang"` finds `Kang_P`).
    pub fn entry(&self, name: &str) -> Option<&MatrixEntry> {
        self.entries.iter().find(|e| {
            e.llc
                .strip_prefix(name)
                .is_some_and(|rest| rest.is_empty() || rest.starts_with('_'))
        })
    }

    /// The most energy-efficient technology of this row.
    pub fn best_energy(&self) -> Option<&MatrixEntry> {
        self.entries
            .iter()
            .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite energy"))
    }

    /// The fastest technology of this row.
    pub fn best_speedup(&self) -> Option<&MatrixEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite speedup"))
    }
}

/// Evaluation harness over a fixed set of LLC models.
#[derive(Debug, Clone)]
pub struct Evaluator {
    baseline: LlcModel,
    nvms: Vec<LlcModel>,
    base_accesses: usize,
    seed: u64,
    cores: Option<u32>,
    warmup: f64,
    threads: Option<usize>,
    batched: bool,
    tape_cache_bytes: Option<u64>,
    store: Option<Arc<Store>>,
    policy: Option<PolicyKind>,
}

impl Evaluator {
    /// Creates an evaluator normalizing against `baseline` (the SRAM row).
    pub fn new(baseline: LlcModel, nvms: Vec<LlcModel>) -> Self {
        Evaluator {
            baseline,
            nvms,
            base_accesses: DEFAULT_BASE_ACCESSES,
            seed: DEFAULT_SEED,
            cores: None,
            warmup: DEFAULT_WARMUP,
            threads: None,
            batched: true,
            tape_cache_bytes: None,
            store: None,
            policy: None,
        }
    }

    /// Pins the LLC replacement policy every system in the matrix runs
    /// under. Takes precedence over [`POLICY_ENV`]; the default is
    /// [`PolicyKind::Lru`].
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Overrides the cache-warmup fraction (default 25%).
    pub fn warmup(mut self, fraction: f64) -> Self {
        self.warmup = fraction;
        self
    }

    /// Overrides the base per-thread access count (scaled per workload by
    /// its relative volume).
    pub fn base_accesses(mut self, accesses: usize) -> Self {
        self.base_accesses = accesses;
        self
    }

    /// Overrides the trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the core count (Section V-C core sweep); defaults to the
    /// Gainestown quad-core.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Pins the evaluation worker count. `1` forces the serial path (no
    /// threads are spawned). Takes precedence over [`THREADS_ENV`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables or disables the batched replay path (default on). When
    /// off, every cell takes the per-technology [`System::run_cached`]
    /// reference path — useful for benchmarking the batching itself;
    /// results are bit-identical either way.
    pub fn batched(mut self, batched: bool) -> Self {
        self.batched = batched;
        self
    }

    /// Overrides the process-wide outcome-tape cache byte budget for
    /// this evaluator's runs (applied via
    /// [`crate::tape::cache::set_byte_budget`] at the start of each
    /// [`Evaluator::run_all`]).
    pub fn tape_cache_bytes(mut self, bytes: u64) -> Self {
        self.tape_cache_bytes = Some(bytes);
        self
    }

    /// Attaches a persistent result store: finished results and outcome
    /// tapes are read from (and written back to) it, so a repeated
    /// evaluation — even across process restarts — skips both the
    /// functional pass and the timing replay. Takes precedence over any
    /// process-wide store installed via
    /// [`crate::persist::set_global_store`].
    pub fn store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// The store this evaluator persists through: its own
    /// ([`Evaluator::store`]) if set, else the process-wide one.
    fn effective_store(&self) -> Option<Arc<Store>> {
        self.store.clone().or_else(crate::persist::global_store)
    }

    /// Worker count to use: explicit [`Evaluator::threads`], else the
    /// `NVM_LLC_THREADS` environment variable, else every available core.
    /// An unparsable environment value warns once (to stderr) and falls
    /// through to the default.
    fn effective_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n;
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            match parse_threads(&raw) {
                Ok(n) => return n,
                Err(warning) => eprintln!("{warning}"),
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Replacement policy to use: explicit [`Evaluator::policy`], else
    /// the `NVM_LLC_POLICY` environment variable, else LRU. An
    /// unparsable environment value warns once (to stderr) and falls
    /// through to LRU, mirroring [`Evaluator::effective_threads`].
    pub fn effective_policy(&self) -> PolicyKind {
        if let Some(p) = self.policy {
            return p;
        }
        if let Ok(raw) = std::env::var(POLICY_ENV) {
            match parse_policy(&raw) {
                Ok(p) => return p,
                Err(warning) => eprintln!("{warning}"),
            }
        }
        PolicyKind::Lru
    }

    fn config(&self, llc: &LlcModel) -> ArchConfig {
        let mut c = ArchConfig::gainestown(llc.clone());
        if let Some(cores) = self.cores {
            c = c.with_cores(cores);
        }
        c
    }

    /// Runs one workload against the baseline and every NVM.
    pub fn run_workload(&self, workload: &WorkloadProfile) -> MatrixRow {
        self.run_all(std::slice::from_ref(workload))
            .pop()
            .expect("one workload in, one row out")
    }

    /// Runs a whole workload list (a full Figure 1a/1b/2a/2b panel)
    /// under [`Evaluator::effective_policy`].
    ///
    /// Equivalent to a one-policy [`Evaluator::run_matrix`]; see there
    /// for the grouping, scheduling, and persistence story.
    pub fn run_all(&self, workloads: &[WorkloadProfile]) -> Vec<MatrixRow> {
        self.run_matrix(workloads, &[self.effective_policy()])
            .pop()
            .expect("one policy in, one matrix out")
            .rows
    }

    /// Runs the full workload × technology matrix once per requested
    /// replacement policy, in one scheduling pass.
    ///
    /// Cells live in a policy-major 3-D grid (policy × workload ×
    /// technology) and are grouped by outcome-tape key — all
    /// technologies sharing a workload's functional geometry *and*
    /// policy form one group, replayed in a single batched pass over one
    /// decoded tape ([`System::replay_batch`]) — and the groups are
    /// distributed over [`Evaluator::effective_threads`] scoped workers
    /// pulling group indices from an atomic queue. Distinct policies
    /// never share a tape (the policy is part of [`TapeKey`]), but their
    /// groups interleave in the same worker pool, so a multi-policy
    /// sweep parallelizes across policies for free. Every group is an
    /// independent deterministic computation over a shared
    /// [`Arc<Trace>`], and results land in a slot vector indexed by
    /// cell, so the output is bit-identical to the serial path
    /// regardless of worker count, scheduling, or whether batching is
    /// enabled.
    pub fn run_matrix(
        &self,
        workloads: &[WorkloadProfile],
        policies: &[PolicyKind],
    ) -> Vec<PolicyMatrix> {
        let _span = nvm_llc_obs::span!("eval_run_all");
        metrics::runs().inc();
        if let Some(bytes) = self.tape_cache_bytes {
            crate::tape::cache::set_byte_budget(bytes);
        }
        let store = self.effective_store();
        let traces: Vec<Arc<Trace>> = workloads
            .iter()
            .map(|w| w.generate_shared(self.seed, w.scaled_accesses(self.base_accesses)))
            .collect();
        // Cell grid: policy-major, then workload-major, baseline first
        // then each NVM. One `System` per (policy, technology) — they
        // are trace-independent.
        let width = 1 + self.nvms.len();
        let nworkloads = workloads.len();
        let cells = policies.len() * nworkloads * width;
        let cell = |pi: usize, wi: usize, mi: usize| (pi * nworkloads + wi) * width + mi;
        let systems: Vec<System> = policies
            .iter()
            .flat_map(|&policy| {
                (0..width).map(move |mi| {
                    let llc = if mi == 0 {
                        &self.baseline
                    } else {
                        &self.nvms[mi - 1]
                    };
                    System::new(self.config(llc))
                        .with_warmup(self.warmup)
                        .with_replacement(policy)
                })
            })
            .collect();
        let system = |pi: usize, mi: usize| &systems[pi * width + mi];

        // Persistent-result tier: a cell whose finished result is on
        // disk is filled directly and drops out of scheduling — no
        // functional pass, no replay. A corrupt or stale record decodes
        // to `None` and the cell simply computes as usual.
        let slots: Vec<OnceLock<SimResult>> = (0..cells).map(|_| OnceLock::new()).collect();
        if let Some(store) = &store {
            for pi in 0..policies.len() {
                for (wi, trace) in traces.iter().enumerate() {
                    for mi in 0..width {
                        if let Some(result) = store
                            .get_mapped(&crate::persist::result_store_key(system(pi, mi), trace))
                            .and_then(|payload| crate::persist::decode_result(&payload))
                        {
                            metrics::result_tier_hits().inc();
                            slots[cell(pi, wi, mi)]
                                .set(result)
                                .unwrap_or_else(|_| unreachable!("cell filled twice"));
                        }
                    }
                }
            }
        }
        let pending = |pi: usize, wi: usize, mi: usize| slots[cell(pi, wi, mi)].get().is_none();

        // Work items: per (policy, workload), the still-unserved
        // technology columns grouped by tape key (insertion-ordered, so
        // scheduling stays deterministic). With batching off every
        // column is its own singleton group.
        let mut groups: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        for pi in 0..policies.len() {
            for (wi, trace) in traces.iter().enumerate() {
                if self.batched {
                    let mut by_key: Vec<(TapeKey, Vec<usize>)> = Vec::new();
                    for mi in 0..width {
                        if !pending(pi, wi, mi) {
                            continue;
                        }
                        let key = system(pi, mi).tape_key(trace);
                        match by_key.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, cols)) => cols.push(mi),
                            None => by_key.push((key, vec![mi])),
                        }
                    }
                    groups.extend(by_key.into_iter().map(|(_, cols)| (pi, wi, cols)));
                } else {
                    groups.extend(
                        (0..width)
                            .filter(|&mi| pending(pi, wi, mi))
                            .map(|mi| (pi, wi, vec![mi])),
                    );
                }
            }
        }

        // Singleton groups take the per-technology reference path;
        // larger ones fetch the shared tape once and batch-replay it.
        // Either way the tape fetch goes through the persistent middle
        // tier when a store is attached, and freshly computed results
        // are written back (best-effort — a full disk never fails a
        // run).
        let run_group = |pi: usize, wi: usize, cols: &[usize]| -> Vec<SimResult> {
            if let [mi] = cols {
                let tape = crate::tape::cache::fetch_with_store(
                    system(pi, *mi),
                    &traces[wi],
                    store.as_ref(),
                );
                return vec![system(pi, *mi).replay(&tape)];
            }
            let group: Vec<&System> = cols.iter().map(|&mi| system(pi, mi)).collect();
            let tape = crate::tape::cache::fetch_with_store(group[0], &traces[wi], store.as_ref());
            System::replay_batch(&group, &tape)
        };
        let place = |slots: &[OnceLock<SimResult>], pi: usize, wi: usize, cols: &[usize]| {
            metrics::groups().inc();
            metrics::cells().add(cols.len() as u64);
            for (&mi, result) in cols.iter().zip(run_group(pi, wi, cols)) {
                if let Some(store) = &store {
                    let key = crate::persist::result_store_key(system(pi, mi), &traces[wi]);
                    let _ = store.put(&key, &crate::persist::encode_result(&result));
                }
                slots[cell(pi, wi, mi)]
                    .set(result)
                    .unwrap_or_else(|_| unreachable!("cell computed twice"));
            }
        };
        let threads = self.effective_threads().min(groups.len().max(1));
        if threads <= 1 {
            // Exact legacy serial path: groups in order, current thread.
            for (pi, wi, cols) in &groups {
                place(&slots, *pi, *wi, cols);
            }
        } else {
            let next = AtomicUsize::new(0);
            // Worker threads inherit the caller's trace context (if a
            // request is being traced) so their spans land in its tree.
            let trace = nvm_llc_obs::trace::handle();
            let (next, groups, slots, place) = (&next, &groups, &slots, &place);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let trace = trace.clone();
                    scope.spawn(move || {
                        let _trace = trace.map(|h| h.attach());
                        loop {
                            let item = next.fetch_add(1, Ordering::Relaxed);
                            let Some((pi, wi, cols)) = groups.get(item) else {
                                break;
                            };
                            place(slots.as_slice(), *pi, *wi, cols);
                        }
                    });
                }
            });
        }
        let results: Vec<SimResult> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every cell computed"))
            .collect();

        // Serial assembly: normalization against each row's baseline is
        // independent of how the cells were scheduled.
        let mut cells = results.into_iter();
        policies
            .iter()
            .map(|&policy| PolicyMatrix {
                policy,
                rows: workloads
                    .iter()
                    .map(|w| {
                        let baseline = cells.next().expect("baseline cell");
                        let entries = (1..width)
                            .map(|_| {
                                let result = cells.next().expect("technology cell");
                                MatrixEntry {
                                    llc: result.llc_name.clone(),
                                    speedup: result.speedup_vs(&baseline),
                                    energy: result.energy_vs(&baseline),
                                    ed2p: result.ed2p_vs(&baseline),
                                    result,
                                }
                            })
                            .collect();
                        MatrixRow {
                            workload: w.name().to_owned(),
                            baseline,
                            entries,
                        }
                    })
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_circuit::reference;
    use nvm_llc_trace::workloads;

    fn small_evaluator() -> Evaluator {
        let models = reference::fixed_capacity();
        let baseline = reference::by_name(&models, "SRAM").unwrap();
        let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
        Evaluator::new(baseline, nvms).base_accesses(8_000)
    }

    #[test]
    fn row_contains_all_ten_nvms() {
        let row = small_evaluator().run_workload(&workloads::by_name("tonto").unwrap());
        assert_eq!(row.entries.len(), 10);
        assert_eq!(row.workload, "tonto");
        assert!(row.entry("Jan").is_some());
        assert!(row.entry("Zhang_R").is_some());
    }

    #[test]
    fn baseline_normalizes_to_itself() {
        let row = small_evaluator().run_workload(&workloads::by_name("leela").unwrap());
        for e in &row.entries {
            assert!(e.speedup.is_finite() && e.speedup > 0.0);
            assert!(e.energy.is_finite() && e.energy > 0.0);
            assert!(e.ed2p.is_finite() && e.ed2p > 0.0);
        }
    }

    #[test]
    fn fixed_capacity_speedups_are_near_unity() {
        // Fig. 1: NVM performance within a few percent of SRAM.
        let row = small_evaluator().run_workload(&workloads::by_name("gamess").unwrap());
        for e in &row.entries {
            assert!(
                (0.75..=1.15).contains(&e.speedup),
                "{}: speedup {}",
                e.llc,
                e.speedup
            );
        }
    }

    #[test]
    fn most_nvms_save_energy_pcram_can_lose() {
        let row = small_evaluator().run_workload(&workloads::by_name("bzip2").unwrap());
        let jan = row.entry("Jan").unwrap();
        assert!(jan.energy < 0.6, "Jan energy {}", jan.energy);
        let kang = row.entry("Kang").unwrap();
        // Kang's 375 nJ writes make it the worst technology on
        // write-heavy bzip2 (Fig. 1: up to 6× SRAM).
        assert!(kang.energy > jan.energy * 3.0);
    }

    #[test]
    fn best_pickers_agree_with_entries() {
        let row = small_evaluator().run_workload(&workloads::by_name("tonto").unwrap());
        let best_e = row.best_energy().unwrap();
        assert!(row.entries.iter().all(|e| e.energy >= best_e.energy));
        let best_s = row.best_speedup().unwrap();
        assert!(row.entries.iter().all(|e| e.speedup <= best_s.speedup));
    }

    #[test]
    fn batched_and_per_technology_paths_are_bit_identical() {
        let ws: Vec<_> = ["tonto", "leela"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let batched = small_evaluator().run_all(&ws);
        let per_tech = small_evaluator().batched(false).run_all(&ws);
        assert_eq!(batched, per_tech);
    }

    #[test]
    fn batched_path_handles_mixed_group_sizes() {
        // Fixed-area models differ in LLC capacity, so a workload's cells
        // split into several groups — some batched, some singleton. The
        // result must not depend on that split.
        let models = reference::fixed_area();
        let baseline = reference::by_name(&models, "SRAM").unwrap();
        let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
        let make = || Evaluator::new(baseline.clone(), nvms.clone()).base_accesses(6_000);
        let w = workloads::by_name("gobmk").unwrap();
        assert_eq!(
            make().run_workload(&w),
            make().batched(false).run_workload(&w)
        );
    }

    #[test]
    fn parallel_and_serial_runs_are_bit_identical() {
        let ws: Vec<_> = ["tonto", "leela"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let serial = small_evaluator().threads(1).run_all(&ws);
        let parallel = small_evaluator().threads(4).run_all(&ws);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 2 "), Ok(2));
        for bad in ["0", "-1", "abc", "", "1.5"] {
            let warning = parse_threads(bad).unwrap_err();
            assert!(warning.contains(THREADS_ENV), "{warning}");
            assert!(warning.contains(&format!("{bad:?}")), "{warning}");
            assert!(warning.contains("available cores"), "{warning}");
        }
    }

    #[test]
    fn persistent_store_round_trips_bit_identically() {
        let dir =
            std::env::temp_dir().join(format!("nvm-llc-runner-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = workloads::by_name("milc").unwrap();
        let fresh = small_evaluator().run_workload(&w);
        let store = Arc::new(Store::open(&dir).unwrap());
        // Cold pass computes everything and writes results back …
        let cold = small_evaluator().store(Arc::clone(&store)).run_workload(&w);
        assert_eq!(cold, fresh, "attaching a store must not change results");
        assert!(store.stats().insertions > 0, "cold pass persisted results");
        // … and the warm pass serves every cell from the result tier,
        // still bit-identical.
        let warm = small_evaluator().store(Arc::clone(&store)).run_workload(&w);
        assert_eq!(warm, fresh);
        assert!(store.stats().hits >= 11, "11 cells served from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_threads_beat_env_override() {
        // threads() wins over NVM_LLC_THREADS; both paths must agree
        // anyway, so this just exercises the precedence plumbing.
        let e = small_evaluator().threads(3);
        let row = e.run_workload(&workloads::by_name("tonto").unwrap());
        assert_eq!(row.entries.len(), 10);
    }

    #[test]
    fn entry_matches_exact_and_suffixed_names_only() {
        let row = small_evaluator().run_workload(&workloads::by_name("tonto").unwrap());
        assert!(row.entry("Kang").is_some()); // citation name -> Kang_P
        assert!(row.entry("Kan").is_none()); // not a prefix match
        assert!(row.entry("").is_none()); // empty never matches by accident
    }

    #[test]
    fn run_all_preserves_workload_order() {
        let ws: Vec<_> = ["tonto", "leela"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let rows = small_evaluator().run_all(&ws);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workload, "tonto");
        assert_eq!(rows[1].workload, "leela");
    }

    #[test]
    fn run_matrix_multi_policy_equals_per_policy_run_all() {
        // One scheduling pass over a multi-policy matrix produces the
        // same bits as evaluating each policy on its own.
        let ws: Vec<_> = ["tonto", "leela"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let policies = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Endurance];
        let fused = small_evaluator().run_matrix(&ws, &policies);
        assert_eq!(fused.len(), policies.len());
        for (matrix, &policy) in fused.iter().zip(&policies) {
            assert_eq!(matrix.policy, policy);
            let solo = small_evaluator().policy(policy).run_all(&ws);
            assert_eq!(matrix.rows, solo, "{policy} matrix diverged");
        }
    }

    #[test]
    fn policies_change_functional_outcomes() {
        // The axis is real: the policy reshapes the hierarchy's miss
        // stream. (At smoke scale the 2 MB LLC rarely fills, so the
        // observable divergence shows up in the L1/L2 miss counts that
        // feed it.)
        let w = workloads::by_name("bzip2").unwrap();
        let lru = small_evaluator().run_workload(&w);
        let srrip = small_evaluator().policy(PolicyKind::Srrip).run_workload(&w);
        assert_ne!(
            lru.baseline.stats.l1d_misses, srrip.baseline.stats.l1d_misses,
            "SRRIP should reshape the miss stream vs LRU"
        );
    }

    #[test]
    fn default_policy_is_lru() {
        // run_all with no policy configured is byte-identical to an
        // explicit LRU request (the pre-policy-axis behavior).
        let w = workloads::by_name("tonto").unwrap();
        assert_eq!(
            small_evaluator().run_workload(&w),
            small_evaluator().policy(PolicyKind::Lru).run_workload(&w),
        );
    }

    #[test]
    fn endurance_policy_reduces_writebacks_on_write_heavy_row() {
        // The endurance-aware policy's whole point: steering victims to
        // clean lines cuts dirty evictions, which are exactly the LLC's
        // DRAM writebacks. gobmk is the one smoke-scale workload whose
        // footprint pressures the 2 MB LLC into evicting dirty lines.
        let w = workloads::by_name("gobmk").unwrap();
        let lru = small_evaluator().run_workload(&w);
        let endurance = small_evaluator()
            .policy(PolicyKind::Endurance)
            .run_workload(&w);
        let wb = |row: &MatrixRow| row.baseline.stats.dram_writebacks;
        assert!(
            wb(&endurance) < wb(&lru),
            "endurance writebacks {} should undercut LRU's {}",
            wb(&endurance),
            wb(&lru),
        );
    }

    #[test]
    fn parallel_multi_policy_matrix_is_bit_identical_to_serial() {
        let ws: Vec<_> = ["tonto", "leela"]
            .iter()
            .map(|n| workloads::by_name(n).unwrap())
            .collect();
        let policies = [PolicyKind::Drrip, PolicyKind::Ship];
        let serial = small_evaluator().threads(1).run_matrix(&ws, &policies);
        let parallel = small_evaluator().threads(4).run_matrix(&ws, &policies);
        assert_eq!(serial, parallel);
    }
}
