//! Simulated architecture configuration (paper Table IV).

use nvm_llc_circuit::LlcModel;

use crate::dram::DramConfig;
use crate::techniques::WriteMode;

/// Geometry and access latency of one private cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Set associativity.
    pub associativity: u32,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// Access latency in core cycles, exposed on a hit at this level.
    pub latency_cycles: u64,
}

impl CacheLevelConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.block_bytes) * u64::from(self.associativity))
    }
}

/// How the LLC handles writes relative to the critical path.
///
/// The paper's Sniper configuration assumes LLC writes happen **off** the
/// critical path (Section V-A.7 credits this explicitly); the blocking
/// mode exists for the ablation study quantifying that assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LlcWritePolicy {
    /// Writes are fully buffered away from the critical path and never
    /// interfere with execution — the paper's Sniper assumption.
    #[default]
    OffCriticalPath,
    /// Writes never stall the issuing core but *occupy* the LLC's banked
    /// ports, so later reads can queue behind them.
    PortContention,
    /// Every LLC write stalls the issuing core for the full write latency
    /// (the "without this assumption" case of Section V-A.7).
    Blocking,
}

/// Full simulated-architecture configuration.
///
/// Defaults mirror Table IV: a quad-core 2.66 GHz Gainestown with 32 KB
/// L1s, 256 KB private L2s, a 2 MB shared LLC, and four DRAM controllers.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Number of cores (= threads; 1 thread per core).
    pub cores: u32,
    /// Core clock, GHz.
    pub freq_ghz: f64,
    /// Base cycles-per-instruction of the OoO core on non-memory work.
    pub base_cpi: f64,
    /// Reorder-buffer entries (bounds miss overlap).
    pub rob_entries: u32,
    /// Load-queue entries.
    pub load_queue: u32,
    /// Store-queue entries.
    pub store_queue: u32,
    /// Private L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Private unified L2.
    pub l2: CacheLevelConfig,
    /// Shared LLC: the circuit-level model under evaluation (its
    /// `capacity` field sizes the cache).
    pub llc: LlcModel,
    /// LLC banks (parallel write/read ports).
    pub llc_banks: u32,
    /// LLC write criticality policy.
    pub llc_write_policy: LlcWritePolicy,
    /// DRAM access latency, ns (row activation + transfer through the
    /// on-chip directory path).
    pub dram_latency_ns: f64,
    /// Number of distributed DRAM controllers.
    pub dram_controllers: u32,
    /// Per-controller bandwidth, GB/s (Table IV: 7.6 GB/s).
    pub dram_bandwidth_gbs: f64,
    /// Detailed DRAM backend (banked row buffers, queueing) instead of
    /// the constant-latency model. Default off — the paper's results use
    /// the simple model; the ablation bench flips this.
    pub detailed_dram: bool,
    /// Geometry/timing for the detailed DRAM backend.
    pub dram_config: DramConfig,
    /// LLC write-energy mode: full-block writes (baseline) or
    /// differential writes that only drive flipped bits.
    pub llc_write_mode: WriteMode,
    /// Dead-block fill bypass for the LLC (off in the paper's baseline).
    pub llc_bypass: bool,
    /// Next-line prefetcher at the L2 (off in the paper's baseline —
    /// Sniper's Gainestown model was run without prefetching).
    pub l2_prefetch: bool,
    /// Inclusive LLC: evicting an LLC line back-invalidates every private
    /// copy (off in the baseline — the paper's Sniper hierarchy is
    /// non-inclusive).
    pub inclusive_llc: bool,
    /// Miss-status-holding registers per core: the number of misses that
    /// can overlap inside one ROB shadow. `None` (the default) leaves the
    /// overlap ROB-bounded only — the simplification DESIGN.md §7 notes;
    /// set to model MSHR pressure (Gainestown-class cores have ~10).
    pub mshrs: Option<u32>,
}

impl ArchConfig {
    /// The paper's Xeon x5550 "Gainestown" configuration (Table IV) around
    /// the given LLC model.
    pub fn gainestown(llc: LlcModel) -> Self {
        ArchConfig {
            cores: 4,
            freq_ghz: 2.66,
            base_cpi: 0.4,
            rob_entries: 128,
            load_queue: 48,
            store_queue: 32,
            l1d: CacheLevelConfig {
                capacity_bytes: 32 * 1024,
                associativity: 8,
                block_bytes: 64,
                latency_cycles: 1,
            },
            l2: CacheLevelConfig {
                capacity_bytes: 256 * 1024,
                associativity: 8,
                block_bytes: 64,
                latency_cycles: 8,
            },
            llc,
            llc_banks: 4,
            llc_write_policy: LlcWritePolicy::OffCriticalPath,
            dram_latency_ns: 70.0,
            dram_controllers: 4,
            dram_bandwidth_gbs: 7.6,
            detailed_dram: false,
            dram_config: DramConfig::default(),
            llc_write_mode: WriteMode::Full,
            llc_bypass: false,
            l2_prefetch: false,
            inclusive_llc: false,
            mshrs: None,
        }
    }

    /// Returns a copy with a bounded number of outstanding misses.
    pub fn with_mshrs(mut self, mshrs: u32) -> Self {
        self.mshrs = Some(mshrs.max(1));
        self
    }

    /// Returns a copy enforcing LLC inclusion (back-invalidation).
    pub fn with_inclusive_llc(mut self) -> Self {
        self.inclusive_llc = true;
        self
    }

    /// Returns a copy with the L2 next-line prefetcher enabled.
    pub fn with_l2_prefetch(mut self) -> Self {
        self.l2_prefetch = true;
        self
    }

    /// Returns a copy with differential (flipped-bits-only) LLC writes.
    pub fn with_differential_writes(mut self, flip_fraction: f64) -> Self {
        self.llc_write_mode = WriteMode::Differential { flip_fraction };
        self
    }

    /// Returns a copy with dead-block fill bypass enabled.
    pub fn with_llc_bypass(mut self) -> Self {
        self.llc_bypass = true;
        self
    }

    /// Returns a copy using the detailed banked DRAM backend.
    pub fn with_detailed_dram(mut self) -> Self {
        self.detailed_dram = true;
        self
    }

    /// Returns a copy with a different core count (the Section V-C core
    /// sweep).
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Returns a copy with a different LLC write policy (the
    /// off-critical-path ablation of DESIGN.md §6).
    pub fn with_llc_write_policy(mut self, policy: LlcWritePolicy) -> Self {
        self.llc_write_policy = policy;
        self
    }

    /// LLC capacity in bytes (from the LLC model).
    pub fn llc_capacity_bytes(&self) -> u64 {
        self.llc.capacity.bytes()
    }

    /// LLC read latency (tag + data) in core cycles.
    pub fn llc_read_cycles(&self) -> u64 {
        (self.llc.tag_latency + self.llc.read_latency).to_cycles(self.freq_ghz)
    }

    /// LLC tag-only (miss detection) latency in core cycles.
    pub fn llc_tag_cycles(&self) -> u64 {
        self.llc.tag_latency.to_cycles(self.freq_ghz)
    }

    /// LLC mean write occupancy in core cycles (even SET/RESET mix).
    pub fn llc_write_cycles(&self) -> u64 {
        self.llc.mean_write_latency().to_cycles(self.freq_ghz)
    }

    /// DRAM latency in core cycles.
    pub fn dram_cycles(&self) -> u64 {
        nvm_llc_cell::units::Nanoseconds::new(self.dram_latency_ns).to_cycles(self.freq_ghz)
    }

    /// Per-block DRAM transfer occupancy in core cycles: the bandwidth
    /// floor a miss pays even when its latency is fully overlapped by the
    /// ROB (64 B over one 7.6 GB/s controller ≈ 8.4 ns).
    pub fn dram_transfer_cycles(&self) -> u64 {
        let ns = f64::from(self.l2.block_bytes) / self.dram_bandwidth_gbs;
        nvm_llc_cell::units::Nanoseconds::new(ns).to_cycles(self.freq_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_circuit::reference;

    fn sram_config() -> ArchConfig {
        ArchConfig::gainestown(reference::sram_baseline())
    }

    #[test]
    fn gainestown_matches_table_4() {
        let c = sram_config();
        assert_eq!(c.cores, 4);
        assert_eq!(c.freq_ghz, 2.66);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.load_queue, 48);
        assert_eq!(c.store_queue, 32);
        assert_eq!(c.l1d.capacity_bytes, 32 * 1024);
        assert_eq!(c.l2.capacity_bytes, 256 * 1024);
        assert_eq!(c.llc_capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(c.dram_controllers, 4);
        assert_eq!(c.dram_bandwidth_gbs, 7.6);
        assert_eq!(c.llc_write_policy, LlcWritePolicy::OffCriticalPath);
    }

    #[test]
    fn cache_level_sets() {
        let c = sram_config();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
    }

    #[test]
    fn latency_conversions_round_up() {
        let c = sram_config();
        // SRAM: tag 0.439 + read 1.234 = 1.673 ns at 2.66 GHz = 4.45 -> 5.
        assert_eq!(c.llc_read_cycles(), 5);
        // 70 ns DRAM = 186.2 -> 187 cycles.
        assert_eq!(c.dram_cycles(), 187);
    }

    #[test]
    fn nvm_write_cycles_reflect_asymmetry() {
        let kang = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
        let c = ArchConfig::gainestown(kang);
        // Kang mean write (301.018+51.018)/2 = 176.018 ns -> 469 cycles.
        assert_eq!(c.llc_write_cycles(), 469);
    }

    #[test]
    fn with_cores_clamps_to_one() {
        assert_eq!(sram_config().with_cores(0).cores, 1);
        assert_eq!(sram_config().with_cores(32).cores, 32);
    }
}
