//! Simulation outputs and normalized metrics.

use std::fmt;

use nvm_llc_cell::units::{Joules, Seconds};

use crate::endurance::EnduranceReport;

/// Event counts and derived statistics from one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Memory accesses replayed.
    pub accesses: u64,
    /// L1D hits / misses (summed over cores).
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC demand (read) hits.
    pub llc_hits: u64,
    /// LLC demand misses.
    pub llc_misses: u64,
    /// LLC writes paying `E_dyn,write` (equation (8)): L2 dirty
    /// writebacks into the LLC.
    pub llc_writes: u64,
    /// LLC miss fills (block allocations). Charged as misses per
    /// equation (7); tracked separately because they still cycle the NVM
    /// array for endurance purposes.
    pub llc_fills: u64,
    /// Blocks written back from the LLC to DRAM.
    pub dram_writebacks: u64,
    /// Cycles each core spent stalled on LLC port contention.
    pub llc_port_stall_cycles: u64,
    /// DRAM row-buffer hits (detailed backend only; 0 otherwise).
    pub dram_row_hits: u64,
    /// DRAM row conflicts (detailed backend only).
    pub dram_row_conflicts: u64,
    /// Cycles requests queued on busy DRAM banks (detailed backend only).
    pub dram_queue_cycles: u64,
    /// Demand fills skipped by the dead-block bypass predictor.
    pub llc_bypassed_fills: u64,
    /// Next-line prefetches issued by the L2 prefetcher.
    pub prefetches: u64,
    /// Private-cache lines dropped by inclusive back-invalidation.
    pub inclusion_invalidations: u64,
}

impl SimStats {
    /// LLC misses per thousand instructions — Table V's selection metric.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 / (self.instructions as f64 / 1000.0)
        }
    }

    /// LLC demand accesses.
    pub fn llc_accesses(&self) -> u64 {
        self.llc_hits + self.llc_misses
    }
}

/// The result of simulating one trace on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Technology display name of the LLC that ran (e.g. `Jan_S`).
    pub llc_name: String,
    /// Execution time (slowest core).
    pub exec_time: Seconds,
    /// LLC dynamic energy (equations (6)–(8) summed over events).
    pub llc_dynamic_energy: Joules,
    /// LLC leakage energy (leakage power × execution time).
    pub llc_leakage_energy: Joules,
    /// Endurance/lifetime report, when tracking was enabled.
    pub endurance: Option<EnduranceReport>,
    /// Event statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// Total LLC energy: dynamic + leakage.
    pub fn llc_energy(&self) -> Joules {
        self.llc_dynamic_energy + self.llc_leakage_energy
    }

    /// Energy-delay-squared product of the LLC (`E·D²`), the paper's
    /// combined efficiency metric.
    pub fn ed2p(&self) -> f64 {
        self.llc_energy().value() * self.exec_time.value().powi(2)
    }

    /// Speedup of this run relative to `baseline` (>1 is faster).
    pub fn speedup_vs(&self, baseline: &SimResult) -> f64 {
        baseline.exec_time.value() / self.exec_time.value()
    }

    /// LLC energy normalized to `baseline` (<1 is better).
    pub fn energy_vs(&self, baseline: &SimResult) -> f64 {
        self.llc_energy().value() / baseline.llc_energy().value()
    }

    /// ED²P normalized to `baseline` (<1 is better).
    pub fn ed2p_vs(&self, baseline: &SimResult) -> f64 {
        self.ed2p() / baseline.ed2p()
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} ms, LLC {:.3} mJ ({:.3} dyn + {:.3} leak), mpki {:.2}",
            self.llc_name,
            self.exec_time.value() * 1e3,
            self.llc_energy().value() * 1e3,
            self.llc_dynamic_energy.value() * 1e3,
            self.llc_leakage_energy.value() * 1e3,
            self.stats.llc_mpki(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(time_s: f64, dyn_j: f64, leak_j: f64) -> SimResult {
        SimResult {
            llc_name: "X".into(),
            exec_time: Seconds::new(time_s),
            llc_dynamic_energy: Joules::new(dyn_j),
            llc_leakage_energy: Joules::new(leak_j),
            endurance: None,
            stats: SimStats {
                instructions: 1_000_000,
                llc_misses: 5_000,
                ..SimStats::default()
            },
        }
    }

    #[test]
    fn mpki_is_misses_per_kiloinstruction() {
        let r = result(1.0, 0.0, 0.0);
        assert!((r.stats.llc_mpki() - 5.0).abs() < 1e-12);
        assert_eq!(SimStats::default().llc_mpki(), 0.0);
    }

    #[test]
    fn ed2p_squares_delay() {
        let fast = result(1.0, 1.0, 0.0);
        let slow = result(2.0, 1.0, 0.0);
        assert!((slow.ed2p() / fast.ed2p() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_metrics() {
        let base = result(1.0, 0.5, 0.5);
        let other = result(2.0, 0.25, 0.25);
        assert!((other.speedup_vs(&base) - 0.5).abs() < 1e-12);
        assert!((other.energy_vs(&base) - 0.5).abs() < 1e-12);
        assert!((other.ed2p_vs(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_vs(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = result(0.001, 1e-6, 2e-6).to_string();
        assert!(s.contains("mpki"));
        assert!(s.starts_with("X:"));
    }
}
