//! # nvm-llc-sim — trace-driven multicore simulator with NVM-aware LLC
//!
//! The Sniper role in the paper's pipeline (Section IV): a quad-core
//! Gainestown model (Table IV) with a three-level write-back cache
//! hierarchy whose shared LLC takes any [`nvm_llc_circuit::LlcModel`] —
//! SRAM baseline or NVM — and exposes its asymmetric read/write latency
//! and energy to the timing and energy model.
//!
//! ```
//! use nvm_llc_circuit::reference;
//! use nvm_llc_sim::runner::Evaluator;
//! use nvm_llc_trace::workloads;
//!
//! let models = reference::fixed_capacity();
//! let sram = reference::by_name(&models, "SRAM").unwrap();
//! let jan = reference::by_name(&models, "Jan").unwrap();
//! let row = Evaluator::new(sram, vec![jan])
//!     .base_accesses(4_000)
//!     .run_workload(&workloads::by_name("tonto").unwrap());
//! let jan = row.entry("Jan").unwrap();
//! assert!(jan.energy < 1.0); // Jan_S saves LLC energy vs SRAM
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod endurance;
pub mod hybrid;
pub mod persist;
pub mod policy;
pub mod result;
pub mod runner;
pub mod system;
pub mod tape;
pub mod techniques;

pub use cache::{AccessOutcome, Eviction, Replacement, SetAssocCache};
pub use config::{ArchConfig, CacheLevelConfig, LlcWritePolicy};
pub use dram::{Dram, DramConfig, DramStats};
pub use endurance::{EnduranceReport, EnduranceTracker, WearPolicy};
pub use hybrid::{simulate_hybrid, HybridConfig, HybridResult, HybridStats};
pub use policy::{PolicyKind, ReplacementPolicy, POLICY_ENV};
pub use result::{SimResult, SimStats};
pub use runner::{Evaluator, MatrixEntry, MatrixRow, PolicyMatrix};
pub use system::System;
pub use tape::{
    DecodedEvent, DecodedTape, EventRecord, Outcome, OutcomeTape, TapeKey, REPLAY_CHUNK_EVENTS,
};
pub use techniques::{DeadBlockPredictor, WriteMode};

#[cfg(test)]
mod proptests {
    use crate::cache::{Replacement, SetAssocCache};
    use crate::config::ArchConfig;
    use crate::system::System;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Cache stats always balance: hits + misses == accesses, and a
        /// re-access of the most recent block always hits.
        #[test]
        fn cache_accounting_balances(
            blocks in proptest::collection::vec(0u64..4096, 1..400),
            ways in 1u32..8,
        ) {
            let mut c = SetAssocCache::new(64, ways, Replacement::Lru);
            for b in &blocks {
                c.access(*b, b % 3 == 0);
            }
            prop_assert_eq!(c.hits() + c.misses(), blocks.len() as u64);
            let last = *blocks.last().unwrap();
            prop_assert!(c.contains(last));
            prop_assert!(c.access(last, false).hit);
        }

        /// A working set no larger than one set's ways never misses after
        /// the cold pass (LRU never evicts within capacity).
        #[test]
        fn lru_within_capacity_never_misses_after_warmup(
            ways in 2u32..16,
            rounds in 2usize..5,
        ) {
            let mut c = SetAssocCache::new(1, ways, Replacement::Lru);
            for round in 0..rounds {
                for b in 0..u64::from(ways) {
                    let hit = c.access(b, false).hit;
                    if round > 0 {
                        prop_assert!(hit);
                    }
                }
            }
            prop_assert_eq!(c.misses(), u64::from(ways));
        }

        /// The hierarchy conserves traffic for arbitrary workload shapes:
        /// L2 demand accesses equal L1 misses, LLC demand accesses equal
        /// L2 misses, and every LLC miss produced exactly one fill.
        #[test]
        fn hierarchy_conservation(
            seed in 0u64..50,
            n in 500usize..3000,
            rf in 0.3f64..0.9,
            fp_log2 in 10u32..18,
        ) {
            use nvm_llc_trace::{Suite, WorkloadProfile};
            let w = WorkloadProfile::builder("prop", Suite::Npb)
                .footprint_blocks(1 << fp_log2)
                .read_fraction(rf)
                .threads(2)
                .build();
            let trace = w.generate(seed, n);
            let llc = nvm_llc_circuit::reference::sram_baseline();
            let r = System::new(ArchConfig::gainestown(llc)).run(&trace);
            let s = &r.stats;
            prop_assert_eq!(s.accesses, trace.len() as u64);
            prop_assert_eq!(s.l1d_hits + s.l1d_misses, s.accesses);
            prop_assert_eq!(s.l2_hits + s.l2_misses, s.l1d_misses);
            prop_assert_eq!(s.llc_hits + s.llc_misses, s.l2_misses);
            prop_assert_eq!(s.llc_fills, s.llc_misses);
            prop_assert!(r.exec_time.value() > 0.0);
            prop_assert!(r.llc_energy().value() > 0.0);
        }

        /// Technique knobs never break conservation: bypass reduces fills
        /// but misses still bound them, and differential writes change
        /// energy only.
        #[test]
        fn techniques_preserve_conservation(seed in 0u64..20, n in 500usize..2000) {
            use nvm_llc_trace::{Suite, WorkloadProfile};
            let w = WorkloadProfile::builder("prop", Suite::Cpu2017)
                .footprint_blocks(1 << 16)
                .build();
            let trace = w.generate(seed, n);
            let llc = nvm_llc_circuit::reference::sram_baseline();
            let r = System::new(
                ArchConfig::gainestown(llc)
                    .with_llc_bypass()
                    .with_differential_writes(0.5)
                    .with_l2_prefetch(),
            )
            .run(&trace);
            let s = &r.stats;
            prop_assert_eq!(s.llc_hits + s.llc_misses, s.l2_misses);
            prop_assert!(s.llc_fills + s.llc_bypassed_fills == s.llc_misses);
        }

        /// Every dirty block eventually reports exactly one writeback.
        #[test]
        fn dirty_blocks_write_back_once(n in 1u64..64) {
            let mut c = SetAssocCache::new(1, 2, Replacement::Lru);
            let mut writebacks = 0u64;
            for b in 0..n {
                if c.access(b, true).writeback().is_some() {
                    writebacks += 1;
                }
            }
            // With 2 ways, all but the final two dirty blocks are evicted.
            prop_assert_eq!(writebacks, n.saturating_sub(2));
        }
    }
}
