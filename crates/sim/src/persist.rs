//! Persistent serialization of simulation artifacts.
//!
//! Bridges the simulator and [`nvm_llc_store`]: derives content
//! addresses for outcome tapes and finished results, and encodes both
//! to the store's bit-exact wire format. Two independent processes
//! evaluating the same trace on the same configuration derive the same
//! keys and bytes, which is what lets a persistent store serve one
//! process's work to the other.
//!
//! ## Key derivation
//!
//! Every key digests three things, in order:
//!
//! 1. a **namespace tag** (`"tape"` or `"result"`), so the two record
//!    kinds can never collide;
//! 2. [`MODEL_VERSION`], bumped whenever the simulator's observable
//!    behavior changes — old records become unreachable rather than
//!    silently wrong;
//! 3. the artifact's identity payload: the trace's
//!    [content hash](nvm_llc_trace::Trace::content_hash) (never the
//!    process-local `uid`) plus either the tape key's functional
//!    geometry ([`TapeKey::persist_bytes`]) or the full system
//!    fingerprint (every timing, energy, and policy knob).
//!
//! Decoding is strict: version-tagged, length-checked by the store's
//! record header, and rejected on any trailing or missing bytes, so a
//! stale or corrupt payload decodes to `None` and the caller recomputes.

use std::sync::{Arc, Mutex, OnceLock};

use nvm_llc_cell::units::{Joules, Seconds};
use nvm_llc_cell::MemClass;
use nvm_llc_store::wire::{Reader, WireError, Writer};
use nvm_llc_store::{Key, Store};
use nvm_llc_trace::Trace;

use crate::endurance::EnduranceReport;
use crate::result::{SimResult, SimStats};
use crate::system::System;
use crate::tape::{EventRecord, OutcomeTape, PackedBlocks, TapeKey};

/// Version of the simulator's observable model baked into every store
/// key. Bump it whenever a change alters simulation outputs (timing,
/// energy, endurance, functional behavior, or the wire layout below):
/// records written by older code then miss instead of replaying stale
/// results.
///
/// Version history:
/// * 1 — the original functional/timing split keyspace.
/// * 2 — the replacement-policy subsystem: tape keys carry a six-way
///   policy tag ([`crate::policy::PolicyKind::persist_tag`]) and
///   request keys gained a policy axis, so geometry-only keys from
///   version 1 must never alias a policy-keyed record.
pub const MODEL_VERSION: u32 = 2;

/// Digests `tag | MODEL_VERSION | payload` into a store key.
fn derive_key(tag: &str, payload: &[u8]) -> Key {
    let mut w = Writer::new();
    w.str(tag).u32(MODEL_VERSION).bytes(payload);
    Key::digest(&w.into_bytes())
}

/// Store key of the outcome tape identified by `key`: the functional
/// geometry plus the trace's content hash (the process-local trace uid
/// is deliberately excluded — see [`TapeKey::persist_bytes`]).
pub fn tape_store_key(key: &TapeKey) -> Key {
    derive_key("tape", &key.persist_bytes())
}

/// Store key of the finished [`SimResult`] of running `system` over
/// `trace`.
///
/// The system half of the identity is its `Debug` rendering: `System`
/// is plain data (architecture configuration, replacement policy,
/// warmup fraction, endurance policy), so equal fingerprints mean equal
/// observable behavior. Shortest-round-trip float formatting keeps the
/// rendering injective on every `f64` knob; a formatting change across
/// toolchains would only cause spurious misses, never false hits, and
/// [`MODEL_VERSION`] guards deliberate model changes.
pub fn result_store_key(system: &System, trace: &Trace) -> Key {
    let mut w = Writer::new();
    w.u128(trace.content_hash()).str(&format!("{system:?}"));
    derive_key("result", &w.into_bytes())
}

/// Store-keyspace routing key of one service request, derivable by
/// anything that can see the request line — in particular a router that
/// holds no simulator state. Digests the full request identity
/// (`models` set, workload, optional technology, access count,
/// replacement policy) under its own namespace tag, so the cluster
/// shards the same 128-bit keyspace the persisted artifacts live in:
/// every node and every router derives the same owner for the same
/// request.
pub fn request_key(
    models: &str,
    workload: &str,
    tech: Option<&str>,
    accesses: usize,
    policy: crate::policy::PolicyKind,
) -> Key {
    let mut w = Writer::new();
    w.str(models)
        .str(workload)
        .bool(tech.is_some())
        .str(tech.unwrap_or(""))
        .u64(accesses as u64)
        .u8(policy.persist_tag());
    derive_key("route", &w.into_bytes())
}

fn encode_stats(w: &mut Writer, s: &SimStats) {
    w.u64(s.instructions)
        .u64(s.accesses)
        .u64(s.l1d_hits)
        .u64(s.l1d_misses)
        .u64(s.l2_hits)
        .u64(s.l2_misses)
        .u64(s.llc_hits)
        .u64(s.llc_misses)
        .u64(s.llc_writes)
        .u64(s.llc_fills)
        .u64(s.dram_writebacks)
        .u64(s.llc_port_stall_cycles)
        .u64(s.dram_row_hits)
        .u64(s.dram_row_conflicts)
        .u64(s.dram_queue_cycles)
        .u64(s.llc_bypassed_fills)
        .u64(s.prefetches)
        .u64(s.inclusion_invalidations);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<SimStats, WireError> {
    Ok(SimStats {
        instructions: r.u64()?,
        accesses: r.u64()?,
        l1d_hits: r.u64()?,
        l1d_misses: r.u64()?,
        l2_hits: r.u64()?,
        l2_misses: r.u64()?,
        llc_hits: r.u64()?,
        llc_misses: r.u64()?,
        llc_writes: r.u64()?,
        llc_fills: r.u64()?,
        dram_writebacks: r.u64()?,
        llc_port_stall_cycles: r.u64()?,
        dram_row_hits: r.u64()?,
        dram_row_conflicts: r.u64()?,
        dram_queue_cycles: r.u64()?,
        llc_bypassed_fills: r.u64()?,
        prefetches: r.u64()?,
        inclusion_invalidations: r.u64()?,
    })
}

fn class_to_u8(class: MemClass) -> u8 {
    match class {
        MemClass::Sram => 0,
        MemClass::Pcram => 1,
        MemClass::Sttram => 2,
        MemClass::Rram => 3,
    }
}

fn class_from_u8(v: u8) -> Result<MemClass, WireError> {
    match v {
        0 => Ok(MemClass::Sram),
        1 => Ok(MemClass::Pcram),
        2 => Ok(MemClass::Sttram),
        3 => Ok(MemClass::Rram),
        _ => Err(WireError),
    }
}

/// Encodes a finished result for the store. Floats travel as raw bits,
/// so a decoded result is bit-identical to the computed one.
pub fn encode_result(result: &SimResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&result.llc_name)
        .f64(result.exec_time.value())
        .f64(result.llc_dynamic_energy.value())
        .f64(result.llc_leakage_energy.value())
        .bool(result.endurance.is_some());
    if let Some(e) = &result.endurance {
        w.u8(class_to_u8(e.class))
            .u64(e.total_writes)
            .u64(e.max_set_writes)
            .f64(e.mean_set_writes)
            .f64(e.worst_cell_write_rate_hz)
            .f64(e.lifetime_years);
    }
    encode_stats(&mut w, &result.stats);
    w.into_bytes()
}

/// Decodes a result payload, or `None` when it does not parse exactly
/// (truncated, malformed, or trailing bytes) — the caller recomputes.
pub fn decode_result(payload: &[u8]) -> Option<SimResult> {
    fn parse(r: &mut Reader<'_>) -> Result<SimResult, WireError> {
        let llc_name = r.str()?.to_owned();
        let exec_time = Seconds::new(r.f64()?);
        let llc_dynamic_energy = Joules::new(r.f64()?);
        let llc_leakage_energy = Joules::new(r.f64()?);
        let endurance = if r.bool()? {
            Some(EnduranceReport {
                class: class_from_u8(r.u8()?)?,
                total_writes: r.u64()?,
                max_set_writes: r.u64()?,
                mean_set_writes: r.f64()?,
                worst_cell_write_rate_hz: r.f64()?,
                lifetime_years: r.f64()?,
            })
        } else {
            None
        };
        let stats = decode_stats(r)?;
        Ok(SimResult {
            llc_name,
            exec_time,
            llc_dynamic_energy,
            llc_leakage_energy,
            endurance,
            stats,
        })
    }
    let mut r = Reader::new(payload);
    let result = parse(&mut r).ok()?;
    r.is_exhausted().then_some(result)
}

fn encode_packed(w: &mut Writer, blocks: &PackedBlocks) {
    let (bytes, len, last) = blocks.parts();
    w.bytes(bytes).u64(len as u64).u64(last);
}

fn decode_packed(r: &mut Reader<'_>) -> Result<PackedBlocks, WireError> {
    let bytes = r.bytes()?.to_vec();
    let len = usize::try_from(r.u64()?).map_err(|_| WireError)?;
    let last = r.u64()?;
    Ok(PackedBlocks::from_parts(bytes, len, last))
}

/// Encodes an outcome tape for the store: core count, the packed
/// per-event records, both varint/delta side streams in their encoded
/// form, and the functional counters.
pub fn encode_tape(tape: &OutcomeTape) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(tape.cores()).u64(tape.records().len() as u64);
    for record in tape.records() {
        w.u64(record.bits());
    }
    let (endurance, dram) = tape.packed_streams();
    encode_packed(&mut w, endurance);
    encode_packed(&mut w, dram);
    encode_stats(&mut w, tape.stats());
    w.into_bytes()
}

/// Decodes a tape payload, or `None` when it does not parse exactly —
/// the caller falls back to re-recording the functional pass.
pub fn decode_tape(payload: &[u8]) -> Option<OutcomeTape> {
    fn parse(r: &mut Reader<'_>) -> Result<OutcomeTape, WireError> {
        let cores = r.u32()?;
        let n = usize::try_from(r.u64()?).map_err(|_| WireError)?;
        // Grow as records actually decode: a corrupt length then fails
        // on its first missing byte instead of pre-allocating for it.
        let mut records = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            records.push(EventRecord::from_bits(r.u64()?));
        }
        let endurance_blocks = decode_packed(r)?;
        let dram_blocks = decode_packed(r)?;
        let stats = decode_stats(r)?;
        Ok(OutcomeTape::from_parts(
            records,
            endurance_blocks,
            dram_blocks,
            stats,
            cores,
        ))
    }
    let mut r = Reader::new(payload);
    let tape = parse(&mut r).ok()?;
    r.is_exhausted().then_some(tape)
}

fn global() -> &'static Mutex<Option<Arc<Store>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<Store>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Installs (or clears, with `None`) the process-wide persistent store.
/// Evaluators built without an explicit store pick this one up — the
/// CLI's `--store-dir` flag routes through here so every evaluation in
/// the process shares one store.
pub fn set_global_store(store: Option<Arc<Store>>) {
    *global().lock().expect("global store lock") = store;
}

/// The process-wide persistent store, if one is installed.
pub fn global_store() -> Option<Arc<Store>> {
    global().lock().expect("global store lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::endurance::WearPolicy;
    use nvm_llc_trace::workloads;

    fn sample_system() -> System {
        let llc = nvm_llc_circuit::reference::sram_baseline();
        System::new(ArchConfig::gainestown(llc))
            .with_warmup(0.25)
            .with_endurance_tracking(WearPolicy::None)
    }

    fn sample_trace() -> std::sync::Arc<Trace> {
        workloads::by_name("tonto")
            .unwrap()
            .generate_shared(7, 1_500)
    }

    #[test]
    fn result_round_trips_bit_exactly() {
        let system = sample_system();
        let trace = sample_trace();
        let result = system.run(&trace);
        assert!(result.endurance.is_some(), "endurance tracking was on");
        let decoded = decode_result(&encode_result(&result)).unwrap();
        assert_eq!(decoded, result);
        assert_eq!(
            decoded.exec_time.value().to_bits(),
            result.exec_time.value().to_bits(),
        );
    }

    #[test]
    fn result_without_endurance_round_trips() {
        let llc = nvm_llc_circuit::reference::sram_baseline();
        let system = System::new(ArchConfig::gainestown(llc));
        let result = system.run(&sample_trace());
        assert!(result.endurance.is_none());
        assert_eq!(decode_result(&encode_result(&result)).unwrap(), result);
    }

    #[test]
    fn result_decode_rejects_damage() {
        let result = sample_system().run(&sample_trace());
        let bytes = encode_result(&result);
        // Truncation and trailing garbage both fail cleanly.
        assert!(decode_result(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_result(&padded).is_none());
        assert!(decode_result(&[]).is_none());
    }

    #[test]
    fn tape_round_trip_replays_identically() {
        let system = sample_system();
        let trace = sample_trace();
        let tape = system.record(&trace);
        let decoded = decode_tape(&encode_tape(&tape)).unwrap();
        assert_eq!(decoded.cores(), tape.cores());
        assert_eq!(decoded.stats(), tape.stats());
        assert_eq!(decoded.len(), tape.len());
        assert!(decoded.endurance_blocks().eq(tape.endurance_blocks()));
        assert!(decoded.dram_blocks().eq(tape.dram_blocks()));
        // The decisive check: replaying the decoded tape reproduces the
        // original run bit for bit.
        assert_eq!(system.replay(&decoded), system.run(&trace));
    }

    #[test]
    fn tape_decode_rejects_damage() {
        let tape = sample_system().record(&sample_trace());
        let bytes = encode_tape(&tape);
        assert!(decode_tape(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_tape(&padded).is_none());
        assert!(decode_tape(&[]).is_none());
    }

    #[test]
    fn keys_are_content_derived_not_process_local() {
        let system = sample_system();
        // Two separately built traces with identical events: distinct
        // uids, identical persistent keys.
        let a = sample_trace();
        let b = workloads::by_name("tonto")
            .unwrap()
            .generate_shared(7, 1_500);
        assert_eq!(
            tape_store_key(&system.tape_key(&a)),
            tape_store_key(&system.tape_key(&b)),
        );
        assert_eq!(result_store_key(&system, &a), result_store_key(&system, &b));
        // Any knob the result depends on moves the result key.
        let warmer = sample_system().with_warmup(0.5);
        assert_ne!(result_store_key(&system, &a), result_store_key(&warmer, &a),);
        // Tape and result namespaces never collide.
        assert_ne!(
            tape_store_key(&system.tape_key(&a)).hex(),
            result_store_key(&system, &a).hex(),
        );
    }

    #[test]
    fn request_keys_separate_every_identity_axis() {
        use crate::policy::PolicyKind;
        let base = request_key("fixed_capacity", "tonto", None, 20_000, PolicyKind::Lru);
        assert_eq!(
            base,
            request_key("fixed_capacity", "tonto", None, 20_000, PolicyKind::Lru),
            "same request, same key, any process"
        );
        for other in [
            request_key("fixed_area", "tonto", None, 20_000, PolicyKind::Lru),
            request_key("fixed_capacity", "x264", None, 20_000, PolicyKind::Lru),
            request_key(
                "fixed_capacity",
                "tonto",
                Some("Jan"),
                20_000,
                PolicyKind::Lru,
            ),
            request_key("fixed_capacity", "tonto", None, 40_000, PolicyKind::Lru),
            request_key("fixed_capacity", "tonto", None, 20_000, PolicyKind::Srrip),
        ] {
            assert_ne!(base, other);
        }
        // Every policy routes to its own key.
        let keys: Vec<_> = PolicyKind::ALL
            .iter()
            .map(|&p| request_key("fixed_capacity", "tonto", None, 20_000, p))
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // A row and a cell whose tech string is empty stay distinct.
        assert_ne!(
            request_key("fixed_capacity", "tonto", None, 20_000, PolicyKind::Lru),
            request_key("fixed_capacity", "tonto", Some(""), 20_000, PolicyKind::Lru),
        );
    }

    /// Golden-key regression pin: the persistent key derivation for one
    /// fixed (trace, system, policy) triple, frozen at `MODEL_VERSION`
    /// 2. If any of these hex digests move, either the key derivation
    /// changed by accident (fix the code) or the observable model
    /// changed on purpose (bump `MODEL_VERSION` and re-pin here).
    #[test]
    fn golden_keys_pin_model_version_2_derivation() {
        use crate::policy::PolicyKind;
        let trace = sample_trace();
        let system = sample_system().with_replacement(PolicyKind::Srrip);
        let tape_key = tape_store_key(&system.tape_key(&trace)).hex();
        let result_key = result_store_key(&system, &trace).hex();
        let route_key = request_key(
            "fixed_capacity",
            "tonto",
            Some("Jan"),
            1_500,
            PolicyKind::Srrip,
        )
        .hex();
        let got = format!("tape={tape_key} result={result_key} route={route_key}");
        let want = "tape=2e88fb236a4a19145fad3dabf603175f \
                    result=dab4d6cc8671889ee5ce0488db612df7 \
                    route=0b7521ed755edbaa163a8b8fcbe26ef7";
        assert_eq!(got, want, "persistent key derivation moved");
    }

    #[test]
    fn global_store_installs_and_clears() {
        // Serialize against other tests touching the global (none today,
        // but the lock makes the invariant local).
        let dir = std::env::temp_dir().join(format!(
            "nvm-llc-persist-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos(),
        ));
        let store = Arc::new(Store::open(&dir).unwrap());
        set_global_store(Some(Arc::clone(&store)));
        assert!(global_store().is_some());
        set_global_store(None);
        assert!(global_store().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
