//! A registry of cell models, addressable by citation name.
//!
//! The paper releases its NVM cell models publicly; [`Catalog::paper`]
//! reconstructs exactly that release — the ten Table II technologies plus
//! the SRAM baseline — and supports lookup, class filtering, and bulk
//! export through [`crate::cellfile`].

use std::collections::BTreeMap;
use std::fmt;

use crate::class::MemClass;
use crate::error::CellError;
use crate::params::CellParams;
use crate::technologies;

/// An ordered collection of named cell models.
///
/// Iteration order is insertion order (Table II column order for
/// [`Catalog::paper`]).
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::{Catalog, MemClass};
///
/// let catalog = Catalog::paper();
/// assert_eq!(catalog.len(), 11); // 10 NVMs + SRAM
/// let zhang = catalog.get("Zhang")?;
/// assert_eq!(zhang.class(), MemClass::Rram);
/// # Ok::<(), nvm_llc_cell::CellError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    order: Vec<String>,
    cells: BTreeMap<String, CellParams>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's released model set: Table II's ten NVMs followed by the
    /// 45 nm SRAM baseline.
    pub fn paper() -> Self {
        let mut catalog = Catalog::new();
        for cell in technologies::all_nvms() {
            catalog.insert(cell);
        }
        catalog.insert(technologies::sram_baseline());
        catalog
    }

    /// Inserts (or replaces) a model, keyed by its citation name. Returns
    /// the previous model with that name, if any.
    pub fn insert(&mut self, cell: CellParams) -> Option<CellParams> {
        let name = cell.name().to_owned();
        let prev = self.cells.insert(name.clone(), cell);
        if prev.is_none() {
            self.order.push(name);
        }
        prev
    }

    /// Looks up a model by citation name (case-sensitive, e.g. `"Zhang"`).
    ///
    /// # Errors
    ///
    /// [`CellError::UnknownTechnology`] when absent.
    pub fn get(&self, name: &str) -> Result<&CellParams, CellError> {
        self.cells
            .get(name)
            .ok_or_else(|| CellError::UnknownTechnology(name.to_owned()))
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the catalog holds no models.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates models in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &CellParams> {
        self.order.iter().map(|n| &self.cells[n])
    }

    /// All models of one class, in insertion order.
    pub fn by_class(&self, class: MemClass) -> Vec<&CellParams> {
        self.iter().filter(|c| c.class() == class).collect()
    }

    /// The non-volatile models only, in insertion order.
    pub fn nvms(&self) -> Vec<&CellParams> {
        self.iter()
            .filter(|c| c.class().is_non_volatile())
            .collect()
    }

    /// Validates every model in the catalog.
    ///
    /// # Errors
    ///
    /// The first validation failure, naming the offending technology.
    pub fn validate_all(&self) -> Result<(), CellError> {
        self.iter().try_for_each(CellParams::validate)
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "catalog of {} cell models [", self.len())?;
        for (i, cell) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", cell.display_name())?;
        }
        write!(f, "]")
    }
}

impl FromIterator<CellParams> for Catalog {
    fn from_iter<I: IntoIterator<Item = CellParams>>(iter: I) -> Self {
        let mut catalog = Catalog::new();
        catalog.extend(iter);
        catalog
    }
}

impl Extend<CellParams> for Catalog {
    fn extend<I: IntoIterator<Item = CellParams>>(&mut self, iter: I) {
        for cell in iter {
            self.insert(cell);
        }
    }
}

impl<'a> IntoIterator for &'a Catalog {
    type Item = &'a CellParams;
    type IntoIter = std::vec::IntoIter<&'a CellParams>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_contains_eleven_models_in_table_order() {
        let c = Catalog::paper();
        assert_eq!(c.len(), 11);
        let names: Vec<_> = c.iter().map(|m| m.name()).collect();
        assert_eq!(names.first(), Some(&"Oh"));
        assert_eq!(names.last(), Some(&"SRAM"));
        assert!(c.validate_all().is_ok());
    }

    #[test]
    fn lookup_by_name() {
        let c = Catalog::paper();
        assert_eq!(c.get("Jan").unwrap().class(), MemClass::Sttram);
        assert!(matches!(
            c.get("Mystery"),
            Err(CellError::UnknownTechnology(_))
        ));
    }

    #[test]
    fn class_filters() {
        let c = Catalog::paper();
        assert_eq!(c.by_class(MemClass::Pcram).len(), 4);
        assert_eq!(c.by_class(MemClass::Sttram).len(), 4);
        assert_eq!(c.by_class(MemClass::Rram).len(), 2);
        assert_eq!(c.by_class(MemClass::Sram).len(), 1);
        assert_eq!(c.nvms().len(), 10);
    }

    #[test]
    fn insert_replaces_and_keeps_order() {
        let mut c = Catalog::paper();
        let replacement = crate::technologies::zhang();
        let prev = c.insert(replacement);
        assert!(prev.is_some());
        assert_eq!(c.len(), 11);
        // Zhang keeps its original position (10th, before SRAM).
        let names: Vec<_> = c.iter().map(|m| m.name()).collect();
        assert_eq!(names[9], "Zhang");
    }

    #[test]
    fn collects_from_iterator() {
        let c: Catalog = crate::technologies::all_nvms().into_iter().collect();
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
    }

    #[test]
    fn display_lists_display_names() {
        let c: Catalog = [crate::technologies::zhang()].into_iter().collect();
        assert_eq!(c.to_string(), "catalog of 1 cell models [Zhang_R]");
    }
}
