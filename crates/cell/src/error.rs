//! Error types for the cell-model crate.

use std::error::Error;
use std::fmt;

use crate::params::Param;

/// Errors produced while building, completing, or parsing cell models.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// A class name in input text was not one of SRAM/PCRAM/STTRAM/RRAM.
    UnknownClass(String),
    /// An access-device name was not recognized.
    UnknownAccessDevice(String),
    /// A parameter required by the class's NVSim-style specification is
    /// missing and no heuristic could supply it.
    MissingParam {
        /// The technology being completed.
        technology: String,
        /// The parameter that could not be determined.
        param: Param,
    },
    /// A parameter value is non-physical (negative, NaN, or infinite).
    NonPhysical {
        /// The technology being validated.
        technology: String,
        /// The offending parameter.
        param: Param,
        /// The raw value.
        value: f64,
    },
    /// A parameter does not apply to the technology's class (e.g. a reset
    /// voltage on a PCRAM cell, which is specified by current).
    Inapplicable {
        /// The technology being validated.
        technology: String,
        /// The offending parameter.
        param: Param,
    },
    /// Heuristic 2/3 had no same-class donor technology to draw from.
    NoDonor {
        /// The technology being completed.
        technology: String,
        /// The parameter that needed a donor.
        param: Param,
    },
    /// A `.cell` file line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A technology name was not found in the catalog.
    UnknownTechnology(String),
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::UnknownClass(s) => write!(f, "unknown memory class `{s}`"),
            CellError::UnknownAccessDevice(s) => write!(f, "unknown access device `{s}`"),
            CellError::MissingParam { technology, param } => {
                write!(f, "`{technology}` is missing required parameter {param}")
            }
            CellError::NonPhysical {
                technology,
                param,
                value,
            } => write!(f, "`{technology}` has non-physical {param} = {value}"),
            CellError::Inapplicable { technology, param } => {
                write!(f, "{param} does not apply to `{technology}`'s class")
            }
            CellError::NoDonor { technology, param } => write!(
                f,
                "no same-class donor technology supplies {param} for `{technology}`"
            ),
            CellError::Parse { line, message } => {
                write!(f, "cell file parse error at line {line}: {message}")
            }
            CellError::UnknownTechnology(s) => write!(f, "unknown technology `{s}`"),
        }
    }
}

impl Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = CellError::UnknownClass("DRAM".into());
        let msg = e.to_string();
        assert!(msg.starts_with("unknown"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CellError>();
    }

    #[test]
    fn missing_param_names_technology_and_param() {
        let e = CellError::MissingParam {
            technology: "Kang".into(),
            param: Param::SetCurrent,
        };
        let msg = e.to_string();
        assert!(msg.contains("Kang"));
        assert!(msg.contains("set current"));
    }
}
