//! Cell-level parameter sets (the rows of the paper's Table II).
//!
//! A [`CellParams`] value holds everything an NVSim-style simulator needs to
//! model one memory technology, with per-parameter [`Provenance`] recording
//! whether a value was reported in the original VLSI paper or derived by one
//! of the paper's three modeling heuristics (Section III-A).

use std::collections::BTreeMap;
use std::fmt;

use crate::class::{AccessDevice, MemClass};
use crate::error::CellError;
use crate::units::{
    FeatureSquared, Microamps, Microwatts, Nanometers, Nanoseconds, Picojoules, Volts,
};

/// Identifies one cell-level parameter (one row of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Param {
    /// Lithography process node.
    Process,
    /// Cell area in F².
    CellSize,
    /// Storage levels per cell (1 = SLC, 2 = MLC).
    CellLevels,
    /// Read current (PCRAM specification).
    ReadCurrent,
    /// Read voltage (STTRAM / RRAM specification).
    ReadVoltage,
    /// Read power (STTRAM / RRAM specification).
    ReadPower,
    /// Read energy (PCRAM specification).
    ReadEnergy,
    /// RESET current (PCRAM / STTRAM).
    ResetCurrent,
    /// RESET voltage (RRAM).
    ResetVoltage,
    /// RESET pulse width.
    ResetPulse,
    /// RESET energy (STTRAM / RRAM).
    ResetEnergy,
    /// SET current (PCRAM / STTRAM).
    SetCurrent,
    /// SET voltage (RRAM).
    SetVoltage,
    /// SET pulse width.
    SetPulse,
    /// SET energy (STTRAM / RRAM).
    SetEnergy,
}

impl Param {
    /// All parameters in Table II row order.
    pub const ALL: [Param; 15] = [
        Param::Process,
        Param::CellSize,
        Param::CellLevels,
        Param::ReadCurrent,
        Param::ReadVoltage,
        Param::ReadPower,
        Param::ReadEnergy,
        Param::ResetCurrent,
        Param::ResetVoltage,
        Param::ResetPulse,
        Param::ResetEnergy,
        Param::SetCurrent,
        Param::SetVoltage,
        Param::SetPulse,
        Param::SetEnergy,
    ];

    /// Whether this parameter applies to cells of `class`, per the
    /// greyed-out cells of Table II: PCRAM is specified by currents plus a
    /// read energy; STTRAM by read voltage/power plus write currents and
    /// energies; RRAM by voltages plus write energies.
    pub fn applies_to(self, class: MemClass) -> bool {
        use MemClass::*;
        use Param::*;
        match self {
            Process | CellSize | CellLevels => true,
            ReadCurrent | ReadEnergy => matches!(class, Pcram | Sram),
            ReadVoltage | ReadPower => matches!(class, Sttram | Rram | Sram),
            ResetCurrent | SetCurrent => matches!(class, Pcram | Sttram),
            ResetVoltage | SetVoltage => matches!(class, Rram),
            ResetPulse | SetPulse => class.is_non_volatile(),
            ResetEnergy | SetEnergy => matches!(class, Sttram | Rram),
        }
    }

    /// The parameters NVSim requires to specify a cell of `class`
    /// (Section III's per-class lists).
    pub fn required_for(class: MemClass) -> Vec<Param> {
        use Param::*;
        let mut v = vec![Process, CellSize];
        match class {
            MemClass::Pcram => v.extend([
                ReadCurrent,
                ReadEnergy,
                ResetCurrent,
                ResetPulse,
                SetCurrent,
                SetPulse,
            ]),
            MemClass::Sttram => v.extend([
                ReadVoltage,
                ReadPower,
                ResetCurrent,
                ResetPulse,
                ResetEnergy,
                SetCurrent,
                SetPulse,
                SetEnergy,
            ]),
            MemClass::Rram => v.extend([
                ReadVoltage,
                ReadPower,
                ResetVoltage,
                ResetPulse,
                ResetEnergy,
                SetVoltage,
                SetPulse,
                SetEnergy,
            ]),
            MemClass::Sram => {}
        }
        v
    }

    /// The `.cell`-file key for this parameter (see [`crate::cellfile`]).
    pub fn key(self) -> &'static str {
        use Param::*;
        match self {
            Process => "-ProcessNode",
            CellSize => "-CellArea (F^2)",
            CellLevels => "-CellLevels",
            ReadCurrent => "-ReadCurrent (uA)",
            ReadVoltage => "-ReadVoltage (V)",
            ReadPower => "-ReadPower (uW)",
            ReadEnergy => "-ReadEnergy (pJ)",
            ResetCurrent => "-ResetCurrent (uA)",
            ResetVoltage => "-ResetVoltage (V)",
            ResetPulse => "-ResetPulse (ns)",
            ResetEnergy => "-ResetEnergy (pJ)",
            SetCurrent => "-SetCurrent (uA)",
            SetVoltage => "-SetVoltage (V)",
            SetPulse => "-SetPulse (ns)",
            SetEnergy => "-SetEnergy (pJ)",
        }
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Param::*;
        let s = match self {
            Process => "process node",
            CellSize => "cell size",
            CellLevels => "cell levels",
            ReadCurrent => "read current",
            ReadVoltage => "read voltage",
            ReadPower => "read power",
            ReadEnergy => "read energy",
            ResetCurrent => "reset current",
            ResetVoltage => "reset voltage",
            ResetPulse => "reset pulse",
            ResetEnergy => "reset energy",
            SetCurrent => "set current",
            SetVoltage => "set voltage",
            SetPulse => "set pulse",
            SetEnergy => "set energy",
        };
        f.write_str(s)
    }
}

/// How a parameter value was obtained (Section III-A).
///
/// Ordered from most to least trustworthy: values straight out of the cited
/// VLSI paper, then the three heuristics in the paper's stated preference
/// order (electrical properties, interpolation, similarity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Provenance {
    /// Reported directly in the cited VLSI paper.
    #[default]
    Reported,
    /// Heuristic 1 — derived from known parameters via the electrical
    /// relations, equations (1)–(3). Marked `†` in Table II.
    Electrical,
    /// Heuristic 2 — interpolated from trends across same-class
    /// technologies. Marked `*` in Table II.
    Interpolated,
    /// Heuristic 3 — copied from a similar same-class technology.
    /// Marked `*` in Table II.
    Similarity,
}

impl Provenance {
    /// The marker Table II prints next to values of this provenance.
    pub fn marker(self) -> &'static str {
        match self {
            Provenance::Reported => "",
            Provenance::Electrical => "†",
            Provenance::Interpolated | Provenance::Similarity => "*",
        }
    }

    /// Whether the value came from a heuristic rather than the literature.
    pub fn is_derived(self) -> bool {
        self != Provenance::Reported
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provenance::Reported => "reported",
            Provenance::Electrical => "electrical (heuristic 1)",
            Provenance::Interpolated => "interpolated (heuristic 2)",
            Provenance::Similarity => "similarity (heuristic 3)",
        };
        f.write_str(s)
    }
}

/// A complete or partially-specified cell model: one column of Table II.
///
/// Build one with [`CellParams::builder`]; fill gaps with
/// [`crate::heuristics::HeuristicEngine`]; validate NVSim-readiness with
/// [`CellParams::validate`].
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::{CellParams, MemClass};
/// use nvm_llc_cell::units::*;
///
/// let cell = CellParams::builder("Demo", MemClass::Sttram, 2020)
///     .process(Nanometers::new(45.0))
///     .cell_size(FeatureSquared::new(20.0))
///     .read_voltage(Volts::new(0.4))
///     .read_power(Microwatts::new(10.0))
///     .reset_current(Microamps::new(100.0))
///     .reset_pulse(Nanoseconds::new(5.0))
///     .reset_energy(Picojoules::new(0.5))
///     .set_current(Microamps::new(100.0))
///     .set_pulse(Nanoseconds::new(5.0))
///     .set_energy(Picojoules::new(0.5))
///     .build();
/// assert!(cell.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellParams {
    name: String,
    class: MemClass,
    year: u16,
    access_device: AccessDevice,
    process: Option<Nanometers>,
    cell_size: Option<FeatureSquared>,
    cell_levels: u8,
    read_current: Option<Microamps>,
    read_voltage: Option<Volts>,
    read_power: Option<Microwatts>,
    read_energy: Option<Picojoules>,
    reset_current: Option<Microamps>,
    reset_voltage: Option<Volts>,
    reset_pulse: Option<Nanoseconds>,
    reset_energy: Option<Picojoules>,
    set_current: Option<Microamps>,
    set_voltage: Option<Volts>,
    set_pulse: Option<Nanoseconds>,
    set_energy: Option<Picojoules>,
    provenance: BTreeMap<Param, Provenance>,
}

impl CellParams {
    /// Starts building a cell model for `name` of `class`, published in
    /// `year`.
    pub fn builder(name: impl Into<String>, class: MemClass, year: u16) -> CellParamsBuilder {
        CellParamsBuilder {
            inner: CellParams {
                name: name.into(),
                class,
                year,
                access_device: AccessDevice::Cmos,
                process: None,
                cell_size: None,
                cell_levels: 1,
                read_current: None,
                read_voltage: None,
                read_power: None,
                read_energy: None,
                reset_current: None,
                reset_voltage: None,
                reset_pulse: None,
                reset_energy: None,
                set_current: None,
                set_voltage: None,
                set_pulse: None,
                set_energy: None,
                // `cell_levels` always has a value (default 1 = SLC), so
                // its provenance is recorded from the start.
                provenance: BTreeMap::from([(Param::CellLevels, Provenance::Reported)]),
            },
        }
    }

    /// The citation name ("Oh", "Chung", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The paper's display name: citation name plus class subscript, e.g.
    /// `Zhang_R`.
    pub fn display_name(&self) -> String {
        if self.class == MemClass::Sram {
            self.name.clone()
        } else {
            format!("{}_{}", self.name, self.class.subscript())
        }
    }

    /// Memory technology class.
    pub fn class(&self) -> MemClass {
        self.class
    }

    /// Publication year of the cited VLSI paper.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Access device (always CMOS in Table II).
    pub fn access_device(&self) -> AccessDevice {
        self.access_device
    }

    /// Process node, if specified.
    pub fn process(&self) -> Option<Nanometers> {
        self.process
    }

    /// Cell area in F², if specified.
    pub fn cell_size(&self) -> Option<FeatureSquared> {
        self.cell_size
    }

    /// Storage levels per cell (1 = SLC, 2 = MLC).
    pub fn cell_levels(&self) -> u8 {
        self.cell_levels
    }

    /// Read current, if specified (PCRAM).
    pub fn read_current(&self) -> Option<Microamps> {
        self.read_current
    }

    /// Read voltage, if specified (STTRAM/RRAM).
    pub fn read_voltage(&self) -> Option<Volts> {
        self.read_voltage
    }

    /// Read power, if specified (STTRAM/RRAM).
    pub fn read_power(&self) -> Option<Microwatts> {
        self.read_power
    }

    /// Read energy, if specified (PCRAM).
    pub fn read_energy(&self) -> Option<Picojoules> {
        self.read_energy
    }

    /// RESET current, if specified (PCRAM/STTRAM).
    pub fn reset_current(&self) -> Option<Microamps> {
        self.reset_current
    }

    /// RESET voltage, if specified (RRAM).
    pub fn reset_voltage(&self) -> Option<Volts> {
        self.reset_voltage
    }

    /// RESET pulse width, if specified.
    pub fn reset_pulse(&self) -> Option<Nanoseconds> {
        self.reset_pulse
    }

    /// RESET energy, if specified (STTRAM/RRAM).
    pub fn reset_energy(&self) -> Option<Picojoules> {
        self.reset_energy
    }

    /// SET current, if specified (PCRAM/STTRAM).
    pub fn set_current(&self) -> Option<Microamps> {
        self.set_current
    }

    /// SET voltage, if specified (RRAM).
    pub fn set_voltage(&self) -> Option<Volts> {
        self.set_voltage
    }

    /// SET pulse width, if specified.
    pub fn set_pulse(&self) -> Option<Nanoseconds> {
        self.set_pulse
    }

    /// SET energy, if specified (STTRAM/RRAM).
    pub fn set_energy(&self) -> Option<Picojoules> {
        self.set_energy
    }

    /// The recorded provenance for `param`, if the parameter has a value.
    pub fn provenance(&self, param: Param) -> Option<Provenance> {
        if self.get(param).is_some() {
            Some(self.provenance.get(&param).copied().unwrap_or_default())
        } else {
            None
        }
    }

    /// Raw numeric value of `param`, unit-erased — convenient for table
    /// rendering and interpolation. `None` if unset.
    pub fn get(&self, param: Param) -> Option<f64> {
        use Param::*;
        match param {
            Process => self.process.map(|v| v.value()),
            CellSize => self.cell_size.map(|v| v.value()),
            CellLevels => Some(f64::from(self.cell_levels)),
            ReadCurrent => self.read_current.map(|v| v.value()),
            ReadVoltage => self.read_voltage.map(|v| v.value()),
            ReadPower => self.read_power.map(|v| v.value()),
            ReadEnergy => self.read_energy.map(|v| v.value()),
            ResetCurrent => self.reset_current.map(|v| v.value()),
            ResetVoltage => self.reset_voltage.map(|v| v.value()),
            ResetPulse => self.reset_pulse.map(|v| v.value()),
            ResetEnergy => self.reset_energy.map(|v| v.value()),
            SetCurrent => self.set_current.map(|v| v.value()),
            SetVoltage => self.set_voltage.map(|v| v.value()),
            SetPulse => self.set_pulse.map(|v| v.value()),
            SetEnergy => self.set_energy.map(|v| v.value()),
        }
    }

    /// Sets `param` to a raw value with the given provenance. Used by the
    /// heuristic engine and the `.cell` parser.
    pub(crate) fn set(&mut self, param: Param, value: f64, provenance: Provenance) {
        use Param::*;
        match param {
            Process => self.process = Some(Nanometers::new(value)),
            CellSize => self.cell_size = Some(FeatureSquared::new(value)),
            CellLevels => self.cell_levels = value as u8,
            ReadCurrent => self.read_current = Some(Microamps::new(value)),
            ReadVoltage => self.read_voltage = Some(Volts::new(value)),
            ReadPower => self.read_power = Some(Microwatts::new(value)),
            ReadEnergy => self.read_energy = Some(Picojoules::new(value)),
            ResetCurrent => self.reset_current = Some(Microamps::new(value)),
            ResetVoltage => self.reset_voltage = Some(Volts::new(value)),
            ResetPulse => self.reset_pulse = Some(Nanoseconds::new(value)),
            ResetEnergy => self.reset_energy = Some(Picojoules::new(value)),
            SetCurrent => self.set_current = Some(Microamps::new(value)),
            SetVoltage => self.set_voltage = Some(Volts::new(value)),
            SetPulse => self.set_pulse = Some(Nanoseconds::new(value)),
            SetEnergy => self.set_energy = Some(Picojoules::new(value)),
        }
        self.provenance.insert(param, provenance);
    }

    /// The parameters required by this cell's class that are still missing.
    pub fn missing_params(&self) -> Vec<Param> {
        Param::required_for(self.class)
            .into_iter()
            .filter(|p| self.get(*p).is_none())
            .collect()
    }

    /// Counts parameters whose value was heuristically derived.
    pub fn derived_count(&self) -> usize {
        Param::ALL
            .iter()
            .filter(|p| self.provenance(**p).is_some_and(Provenance::is_derived))
            .count()
    }

    /// Checks that the model is complete for its class (all NVSim-required
    /// parameters present), physical (finite, non-negative), and contains no
    /// parameter inapplicable to the class.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::MissingParam`], [`CellError::NonPhysical`], or
    /// [`CellError::Inapplicable`] naming the first offending parameter.
    pub fn validate(&self) -> Result<(), CellError> {
        for param in Param::required_for(self.class) {
            if self.get(param).is_none() {
                return Err(CellError::MissingParam {
                    technology: self.name.clone(),
                    param,
                });
            }
        }
        for param in Param::ALL {
            if let Some(value) = self.get(param) {
                if !value.is_finite() || value < 0.0 {
                    return Err(CellError::NonPhysical {
                        technology: self.name.clone(),
                        param,
                        value,
                    });
                }
                if !param.applies_to(self.class) {
                    return Err(CellError::Inapplicable {
                        technology: self.name.clone(),
                        param,
                    });
                }
            }
        }
        Ok(())
    }

    /// Effective per-bit cell area in F²: MLC cells store `cell_levels`
    /// bits' worth of states in one footprint, so density scales by the
    /// level count (Section II-D).
    ///
    /// Returns `None` when the cell size is unspecified.
    pub fn area_per_bit(&self) -> Option<FeatureSquared> {
        self.cell_size
            .map(|a| FeatureSquared::new(a.value() / f64::from(self.cell_levels)))
    }

    /// Write energy of the worst-case transition, in picojoules: the max of
    /// SET and RESET energies where known, deriving PCRAM energies from
    /// `I · V · t` with the supplied access voltage when only currents are
    /// reported.
    pub fn worst_write_energy(&self, access_voltage: Volts) -> Option<Picojoules> {
        let set = self
            .set_energy
            .or_else(|| Some(self.set_current? * self.set_pulse? * access_voltage));
        let reset = self
            .reset_energy
            .or_else(|| Some(self.reset_current? * self.reset_pulse? * access_voltage));
        match (set, reset) {
            (Some(s), Some(r)) => Some(s.max(r)),
            (Some(s), None) => Some(s),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }

    /// Write latency of the slower transition (max of SET/RESET pulses).
    pub fn worst_write_pulse(&self) -> Option<Nanoseconds> {
        match (self.set_pulse, self.reset_pulse) {
            (Some(s), Some(r)) => Some(s.max(r)),
            (Some(s), None) => Some(s),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }
}

impl fmt::Display for CellParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {}, {} nm)",
            self.display_name(),
            self.class,
            self.year,
            self.process.map_or(f64::NAN, |p| p.value())
        )
    }
}

/// Builder for [`CellParams`] (see C-BUILDER).
///
/// Every setter records [`Provenance::Reported`]; use the
/// `*_derived` variants to record a heuristic provenance explicitly when
/// transcribing Table II's starred values.
#[derive(Debug, Clone)]
pub struct CellParamsBuilder {
    inner: CellParams,
}

macro_rules! builder_setter {
    ($(#[$meta:meta])* $fn_name:ident, $param:expr, $ty:ty) => {
        $(#[$meta])*
        pub fn $fn_name(mut self, value: $ty) -> Self {
            self.inner.set($param, value.value(), Provenance::Reported);
            self
        }
    };
}

impl CellParamsBuilder {
    /// Re-opens an existing parameter set for further additions, keeping
    /// all recorded provenance.
    pub(crate) fn from_params(params: CellParams) -> Self {
        CellParamsBuilder { inner: params }
    }

    builder_setter!(
        /// Sets the process node (reported).
        process,
        Param::Process,
        Nanometers
    );
    builder_setter!(
        /// Sets the cell area in F² (reported).
        cell_size,
        Param::CellSize,
        FeatureSquared
    );
    builder_setter!(
        /// Sets the read current (reported; PCRAM).
        read_current,
        Param::ReadCurrent,
        Microamps
    );
    builder_setter!(
        /// Sets the read voltage (reported; STTRAM/RRAM).
        read_voltage,
        Param::ReadVoltage,
        Volts
    );
    builder_setter!(
        /// Sets the read power (reported; STTRAM/RRAM).
        read_power,
        Param::ReadPower,
        Microwatts
    );
    builder_setter!(
        /// Sets the read energy (reported; PCRAM).
        read_energy,
        Param::ReadEnergy,
        Picojoules
    );
    builder_setter!(
        /// Sets the RESET current (reported; PCRAM/STTRAM).
        reset_current,
        Param::ResetCurrent,
        Microamps
    );
    builder_setter!(
        /// Sets the RESET voltage (reported; RRAM).
        reset_voltage,
        Param::ResetVoltage,
        Volts
    );
    builder_setter!(
        /// Sets the RESET pulse width (reported).
        reset_pulse,
        Param::ResetPulse,
        Nanoseconds
    );
    builder_setter!(
        /// Sets the RESET energy (reported; STTRAM/RRAM).
        reset_energy,
        Param::ResetEnergy,
        Picojoules
    );
    builder_setter!(
        /// Sets the SET current (reported; PCRAM/STTRAM).
        set_current,
        Param::SetCurrent,
        Microamps
    );
    builder_setter!(
        /// Sets the SET voltage (reported; RRAM).
        set_voltage,
        Param::SetVoltage,
        Volts
    );
    builder_setter!(
        /// Sets the SET pulse width (reported).
        set_pulse,
        Param::SetPulse,
        Nanoseconds
    );
    builder_setter!(
        /// Sets the SET energy (reported; STTRAM/RRAM).
        set_energy,
        Param::SetEnergy,
        Picojoules
    );

    /// Sets the number of storage levels per cell (default 1).
    pub fn cell_levels(mut self, levels: u8) -> Self {
        self.inner.cell_levels = levels.max(1);
        self.inner
            .provenance
            .insert(Param::CellLevels, Provenance::Reported);
        self
    }

    /// Sets the access device (default CMOS).
    pub fn access_device(mut self, device: AccessDevice) -> Self {
        self.inner.access_device = device;
        self
    }

    /// Sets an arbitrary parameter with explicit provenance — used when
    /// transcribing Table II's pre-derived (`*`/`†`) values.
    pub fn derived(mut self, param: Param, value: f64, provenance: Provenance) -> Self {
        self.inner.set(param, value, provenance);
        self
    }

    /// Finalizes the cell model. No validation is performed here; call
    /// [`CellParams::validate`] once heuristics have filled any gaps.
    pub fn build(self) -> CellParams {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sttram() -> CellParams {
        CellParams::builder("Demo", MemClass::Sttram, 2020)
            .process(Nanometers::new(45.0))
            .cell_size(FeatureSquared::new(20.0))
            .read_voltage(Volts::new(0.4))
            .read_power(Microwatts::new(10.0))
            .reset_current(Microamps::new(100.0))
            .reset_pulse(Nanoseconds::new(5.0))
            .reset_energy(Picojoules::new(0.5))
            .set_current(Microamps::new(100.0))
            .set_pulse(Nanoseconds::new(5.0))
            .set_energy(Picojoules::new(0.5))
            .build()
    }

    #[test]
    fn builder_records_reported_provenance() {
        let cell = demo_sttram();
        assert_eq!(
            cell.provenance(Param::ReadVoltage),
            Some(Provenance::Reported)
        );
        assert_eq!(cell.derived_count(), 0);
    }

    #[test]
    fn derived_setter_records_marker() {
        let cell = CellParams::builder("X", MemClass::Rram, 2016)
            .derived(Param::CellSize, 4.0, Provenance::Interpolated)
            .build();
        assert_eq!(
            cell.provenance(Param::CellSize),
            Some(Provenance::Interpolated)
        );
        assert_eq!(Provenance::Interpolated.marker(), "*");
        assert_eq!(Provenance::Electrical.marker(), "†");
        assert_eq!(cell.derived_count(), 1);
    }

    #[test]
    fn validate_flags_missing_required_param() {
        let cell = CellParams::builder("Partial", MemClass::Sttram, 2020)
            .process(Nanometers::new(45.0))
            .build();
        let err = cell.validate().unwrap_err();
        assert!(matches!(err, CellError::MissingParam { .. }));
    }

    #[test]
    fn validate_flags_non_physical() {
        let mut cell = demo_sttram();
        cell.set(Param::ReadPower, -1.0, Provenance::Reported);
        assert!(matches!(
            cell.validate().unwrap_err(),
            CellError::NonPhysical { .. }
        ));
    }

    #[test]
    fn validate_flags_inapplicable_param() {
        let mut cell = demo_sttram();
        // A reset *voltage* is an RRAM-style parameter.
        cell.set(Param::ResetVoltage, 1.0, Provenance::Reported);
        assert!(matches!(
            cell.validate().unwrap_err(),
            CellError::Inapplicable { .. }
        ));
    }

    #[test]
    fn validate_accepts_complete_model() {
        assert!(demo_sttram().validate().is_ok());
    }

    #[test]
    fn missing_params_lists_gaps_in_required_order() {
        let cell = CellParams::builder("Partial", MemClass::Pcram, 2006)
            .process(Nanometers::new(100.0))
            .cell_size(FeatureSquared::new(16.6))
            .reset_current(Microamps::new(600.0))
            .reset_pulse(Nanoseconds::new(50.0))
            .set_pulse(Nanoseconds::new(300.0))
            .build();
        let missing = cell.missing_params();
        assert_eq!(
            missing,
            vec![Param::ReadCurrent, Param::ReadEnergy, Param::SetCurrent]
        );
    }

    #[test]
    fn display_name_uses_class_subscript() {
        assert_eq!(demo_sttram().display_name(), "Demo_S");
        let sram = CellParams::builder("SRAM", MemClass::Sram, 2009).build();
        assert_eq!(sram.display_name(), "SRAM");
    }

    #[test]
    fn area_per_bit_halves_for_mlc() {
        let slc = demo_sttram();
        assert_eq!(slc.area_per_bit().unwrap().value(), 20.0);
        let mlc = CellParams::builder("Mlc", MemClass::Sttram, 2016)
            .cell_size(FeatureSquared::new(63.0))
            .cell_levels(2)
            .build();
        assert_eq!(mlc.area_per_bit().unwrap().value(), 31.5);
    }

    #[test]
    fn worst_write_energy_prefers_reported_energies() {
        let cell = demo_sttram();
        let e = cell.worst_write_energy(Volts::new(1.0)).unwrap();
        assert_eq!(e.value(), 0.5);
    }

    #[test]
    fn worst_write_energy_derives_for_pcram() {
        let cell = CellParams::builder("Oh", MemClass::Pcram, 2005)
            .reset_current(Microamps::new(600.0))
            .reset_pulse(Nanoseconds::new(10.0))
            .set_current(Microamps::new(200.0))
            .set_pulse(Nanoseconds::new(180.0))
            .build();
        // set: 200 µA * 180 ns * 1.0 V = 36 pJ; reset: 6 pJ.
        let e = cell.worst_write_energy(Volts::new(1.0)).unwrap();
        assert!((e.value() - 36.0).abs() < 1e-9);
        assert_eq!(cell.worst_write_pulse().unwrap().value(), 180.0);
    }

    #[test]
    fn applicability_matrix_matches_table_2_grey_cells() {
        use MemClass::*;
        use Param::*;
        assert!(ReadCurrent.applies_to(Pcram));
        assert!(!ReadCurrent.applies_to(Sttram));
        assert!(!ReadVoltage.applies_to(Pcram));
        assert!(ReadVoltage.applies_to(Rram));
        assert!(ResetVoltage.applies_to(Rram));
        assert!(!ResetVoltage.applies_to(Sttram));
        assert!(SetCurrent.applies_to(Sttram));
        assert!(!SetCurrent.applies_to(Rram));
        assert!(!SetEnergy.applies_to(Pcram));
    }

    #[test]
    fn cell_levels_clamped_to_at_least_one() {
        let cell = CellParams::builder("Z", MemClass::Rram, 2016)
            .cell_levels(0)
            .build();
        assert_eq!(cell.cell_levels(), 1);
    }

    #[test]
    fn get_returns_levels_as_f64() {
        let cell = CellParams::builder("Z", MemClass::Rram, 2016)
            .cell_levels(2)
            .build();
        assert_eq!(cell.get(Param::CellLevels), Some(2.0));
    }
}
