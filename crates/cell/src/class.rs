//! Memory technology classes studied by the paper (Section II, Table I).

use std::fmt;
use std::str::FromStr;

use crate::error::CellError;

/// A memory technology class.
///
/// The paper studies three emerging non-volatile classes — [`Pcram`],
/// [`Sttram`], [`Rram`] — against an [`Sram`] baseline. Which cell-level
/// parameters a simulator requires depends on the class (Section III):
/// PCRAM is specified with currents and a read energy, STTRAM with a read
/// voltage/power and set/reset currents and energies, RRAM with voltages
/// throughout.
///
/// [`Pcram`]: MemClass::Pcram
/// [`Sttram`]: MemClass::Sttram
/// [`Rram`]: MemClass::Rram
/// [`Sram`]: MemClass::Sram
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::MemClass;
///
/// assert!(MemClass::Sttram.is_non_volatile());
/// assert!(!MemClass::Sram.is_non_volatile());
/// assert_eq!(MemClass::Rram.subscript(), 'R');
/// assert_eq!("PCRAM".parse::<MemClass>().unwrap(), MemClass::Pcram);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemClass {
    /// Static RAM — the baseline LLC technology.
    Sram,
    /// Phase Change RAM: heat-driven melt (RESET) / crystallize (SET).
    Pcram,
    /// Spin-Torque Transfer RAM: magnetic tunnel junction storage.
    Sttram,
    /// (Metal-oxide) Resistive RAM.
    Rram,
}

impl MemClass {
    /// All classes, in the order the paper's tables list them.
    pub const ALL: [MemClass; 4] = [
        MemClass::Pcram,
        MemClass::Sttram,
        MemClass::Rram,
        MemClass::Sram,
    ];

    /// The non-volatile classes only.
    pub const NVM: [MemClass; 3] = [MemClass::Pcram, MemClass::Sttram, MemClass::Rram];

    /// Whether this class retains data without power.
    pub fn is_non_volatile(self) -> bool {
        !matches!(self, MemClass::Sram)
    }

    /// The single-letter subscript the paper attaches to technology names
    /// (e.g. `Zhang_R` for an RRAM technology, `Jan_S` for STTRAM).
    ///
    /// # Panics
    ///
    /// Never panics; SRAM uses `'-'` since the paper never subscripts it.
    pub fn subscript(self) -> char {
        match self {
            MemClass::Sram => '-',
            MemClass::Pcram => 'P',
            MemClass::Sttram => 'S',
            MemClass::Rram => 'R',
        }
    }

    /// Write endurance order of magnitude (writes before stuck-at faults),
    /// from Section II: PCRAM 10⁷–10⁸ (we take the midpoint exponent),
    /// RRAM 10¹⁰, STTRAM effectively unlimited for LLC lifetimes (10¹⁵ is
    /// the figure commonly cited for MTJ endurance), SRAM unlimited.
    pub fn write_endurance(self) -> f64 {
        match self {
            MemClass::Sram => f64::INFINITY,
            MemClass::Pcram => 1e8,
            MemClass::Sttram => 1e15,
            MemClass::Rram => 1e10,
        }
    }
}

impl fmt::Display for MemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemClass::Sram => "SRAM",
            MemClass::Pcram => "PCRAM",
            MemClass::Sttram => "STTRAM",
            MemClass::Rram => "RRAM",
        };
        f.write_str(s)
    }
}

impl FromStr for MemClass {
    type Err = CellError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "SRAM" => Ok(MemClass::Sram),
            "PCRAM" | "PCM" => Ok(MemClass::Pcram),
            "STTRAM" | "STT-RAM" | "MRAM" => Ok(MemClass::Sttram),
            "RRAM" | "RERAM" => Ok(MemClass::Rram),
            other => Err(CellError::UnknownClass(other.to_owned())),
        }
    }
}

/// The device used to access (select) a cell.
///
/// Every technology in Table II is CMOS-accessed; the variant list keeps the
/// door open for the crossbar RRAMs Section II-C describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AccessDevice {
    /// A MOSFET access transistor (1T1R / 1T1MTJ). All Table II entries.
    #[default]
    Cmos,
    /// Bipolar junction transistor access.
    Bjt,
    /// Selector-less crossbar (Section II-C's "unique dense crossbar").
    Crossbar,
}

impl fmt::Display for AccessDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessDevice::Cmos => "CMOS",
            AccessDevice::Bjt => "BJT",
            AccessDevice::Crossbar => "crossbar",
        };
        f.write_str(s)
    }
}

impl FromStr for AccessDevice {
    type Err = CellError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "CMOS" => Ok(AccessDevice::Cmos),
            "BJT" => Ok(AccessDevice::Bjt),
            "CROSSBAR" | "NONE" => Ok(AccessDevice::Crossbar),
            other => Err(CellError::UnknownAccessDevice(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscripts_match_paper_notation() {
        assert_eq!(MemClass::Pcram.subscript(), 'P');
        assert_eq!(MemClass::Sttram.subscript(), 'S');
        assert_eq!(MemClass::Rram.subscript(), 'R');
    }

    #[test]
    fn parse_round_trips_display() {
        for class in MemClass::ALL {
            let parsed: MemClass = class.to_string().parse().unwrap();
            assert_eq!(parsed, class);
        }
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_unknown() {
        assert_eq!("stt-ram".parse::<MemClass>().unwrap(), MemClass::Sttram);
        assert_eq!("ReRAM".parse::<MemClass>().unwrap(), MemClass::Rram);
        assert!("DRAM".parse::<MemClass>().is_err());
    }

    #[test]
    fn endurance_ordering_matches_section_2() {
        // PCRAM < RRAM < STTRAM <= SRAM.
        assert!(MemClass::Pcram.write_endurance() < MemClass::Rram.write_endurance());
        assert!(MemClass::Rram.write_endurance() < MemClass::Sttram.write_endurance());
        assert!(MemClass::Sram.write_endurance().is_infinite());
    }

    #[test]
    fn nvm_list_excludes_sram() {
        assert!(MemClass::NVM.iter().all(|c| c.is_non_volatile()));
    }

    #[test]
    fn access_device_parse_and_display() {
        assert_eq!("cmos".parse::<AccessDevice>().unwrap(), AccessDevice::Cmos);
        assert_eq!(AccessDevice::Cmos.to_string(), "CMOS");
        assert!("quantum".parse::<AccessDevice>().is_err());
        assert_eq!(AccessDevice::default(), AccessDevice::Cmos);
    }
}
