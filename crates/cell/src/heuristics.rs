//! The paper's three modeling heuristics (Section III-A).
//!
//! VLSI papers that introduce an NVM cell rarely report every parameter an
//! architectural simulator needs. The paper's first contribution is a
//! *consistent* set of strategies for filling those gaps, applied in
//! decreasing order of preference:
//!
//! 1. **Electrical properties** — derive the unknown from knowns via
//!    equations (1)–(3): `P_read = I_read · V_read`,
//!    `E_{s/r} = I_{s/r} · V_access · t_{s/r}`, and
//!    `A[F²] = l·w / s²`. Marked `†` in Table II.
//! 2. **Interpolation** — fit the trend of the parameter across same-class
//!    technologies (against process node) and read off the unknown.
//!    Marked `*`.
//! 3. **Similarity** — copy the value from the most similar same-class
//!    technology, where similarity is agreement on the parameters both
//!    report (the paper's worked example: Kang takes Oh's 200 µA set
//!    current because their reset currents are identical). Marked `*`.
//!
//! [`HeuristicEngine::complete`] applies these strategies to every missing
//! NVSim-required parameter of a cell and records per-parameter
//! [`Provenance`].

use crate::class::MemClass;
use crate::error::CellError;
use crate::params::{CellParams, Param, Provenance};
use crate::units::{Nanometers, SquareMillimeters, Volts};

/// Derives a cell size in F² from physical cell dimensions — the paper's
/// equation (3): `A[F²] = (l_cell · w_cell) / s_proc²`.
///
/// `length`/`width` are in nanometers.
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::heuristics::cell_size_from_dimensions;
/// use nvm_llc_cell::units::Nanometers;
///
/// // Umeki's 48 F² at 65 nm corresponds to a ~0.45 µm × 0.45 µm cell.
/// let f2 = cell_size_from_dimensions(450.4, 450.4, Nanometers::new(65.0));
/// assert!((f2.value() - 48.0).abs() < 0.1);
/// ```
pub fn cell_size_from_dimensions(
    length: f64,
    width: f64,
    process: Nanometers,
) -> crate::units::FeatureSquared {
    let s = process.value();
    crate::units::FeatureSquared::new(length * width / (s * s))
}

/// Converts a cell size in F² to physical area at a process node — the
/// inverse direction of equation (3), used by the circuit model.
pub fn physical_cell_area(cell: &CellParams) -> Option<SquareMillimeters> {
    Some(cell.cell_size()?.physical_area(cell.process()?))
}

/// A record of one heuristic application, for audit trails and the
/// Table II marker column.
#[derive(Debug, Clone, PartialEq)]
pub struct Derivation {
    /// The parameter that was filled in.
    pub param: Param,
    /// The value chosen.
    pub value: f64,
    /// Which heuristic supplied it.
    pub provenance: Provenance,
    /// Donor technology name, for heuristics 2/3.
    pub donor: Option<String>,
}

/// Applies the paper's modeling heuristics to incomplete cell models.
///
/// The engine is constructed over a set of *donor* technologies (typically
/// [`crate::technologies::all_nvms`], or the reported-only forms when
/// reproducing the paper's own derivation process) and completes any cell
/// against the same-class donors.
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::heuristics::HeuristicEngine;
/// use nvm_llc_cell::technologies;
///
/// let engine = HeuristicEngine::new(technologies::all_nvms_reported());
/// let (kang, log) = engine.complete(technologies::kang_reported())?;
/// assert!(kang.validate().is_ok());
/// assert!(!log.is_empty());
/// # Ok::<(), nvm_llc_cell::CellError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HeuristicEngine {
    donors: Vec<CellParams>,
    access_voltage_override: Option<Volts>,
}

impl HeuristicEngine {
    /// Builds an engine over the given donor technologies.
    pub fn new(donors: impl IntoIterator<Item = CellParams>) -> Self {
        HeuristicEngine {
            donors: donors.into_iter().collect(),
            access_voltage_override: None,
        }
    }

    /// Overrides the access voltage used by equation (2) when a cell does
    /// not report a read voltage (defaults to the class supply voltage).
    pub fn with_access_voltage(mut self, voltage: Volts) -> Self {
        self.access_voltage_override = Some(voltage);
        self
    }

    /// The donor set.
    pub fn donors(&self) -> &[CellParams] {
        &self.donors
    }

    /// Completes every NVSim-required parameter of `cell`, trying
    /// heuristic 1, then 2, then 3 for each gap.
    ///
    /// Returns the completed cell and the derivation log.
    ///
    /// # Errors
    ///
    /// [`CellError::NoDonor`] if a parameter cannot be derived electrically
    /// and no same-class donor reports it.
    pub fn complete(&self, cell: CellParams) -> Result<(CellParams, Vec<Derivation>), CellError> {
        let mut cell = cell;
        let mut log = Vec::new();
        // Iterate to a fixed point: an electrical derivation may unlock
        // another (e.g. read power requires a derived read current).
        loop {
            let missing = cell.missing_params();
            if missing.is_empty() {
                break;
            }
            let mut progressed = false;
            for param in &missing {
                if let Some(d) = self.try_heuristics(&cell, *param) {
                    cell.set(d.param, d.value, d.provenance);
                    log.push(d);
                    progressed = true;
                }
            }
            if !progressed {
                let param = missing[0];
                return Err(CellError::NoDonor {
                    technology: cell.name().to_owned(),
                    param,
                });
            }
        }
        Ok((cell, log))
    }

    /// Preference order: heuristic 1 (electrical); heuristic 3 *when a
    /// donor matches exactly* on a shared operating parameter (the paper's
    /// Kang/Oh worked example — identical reset currents trump any trend
    /// fit); heuristic 2 (interpolation); heuristic 3 in its general form;
    /// and finally class-level literature defaults.
    fn try_heuristics(&self, cell: &CellParams, param: Param) -> Option<Derivation> {
        self.electrical(cell, param)
            .or_else(|| self.similarity(cell, param, SimilarityMode::ExactMatchOnly))
            .or_else(|| self.interpolate(cell, param))
            .or_else(|| self.similarity(cell, param, SimilarityMode::Nearest))
            .or_else(|| class_default(cell.class(), param))
    }

    /// The access voltage `V_access` used in equation (2).
    fn access_voltage(&self, cell: &CellParams) -> Volts {
        if let Some(v) = self.access_voltage_override {
            return v;
        }
        cell.read_voltage().unwrap_or_else(|| {
            // Class supply-voltage defaults at the relevant nodes.
            Volts::new(match cell.class() {
                MemClass::Pcram => 1.8,
                MemClass::Sttram => 1.0,
                MemClass::Rram => 1.0,
                MemClass::Sram => 1.0,
            })
        })
    }

    /// Heuristic 1 — equations (1) and (2), in both directions.
    fn electrical(&self, cell: &CellParams, param: Param) -> Option<Derivation> {
        let v_access = self.access_voltage(cell).value();
        let value = match param {
            // Equation (1): P_read = I_read * V_read (and inversions).
            Param::ReadPower => {
                let i = cell.read_current()?.value();
                let v = cell.read_voltage()?.value();
                i * v
            }
            Param::ReadCurrent => {
                let p = cell.read_power()?.value();
                let v = cell.read_voltage()?.value();
                if v == 0.0 {
                    return None;
                }
                p / v
            }
            Param::ReadVoltage => {
                let p = cell.read_power()?.value();
                let i = cell.read_current()?.value();
                if i == 0.0 {
                    return None;
                }
                p / i
            }
            // Equation (2): E = I * V_access * t, in fC·V = fJ -> pJ.
            Param::SetEnergy => {
                let i = cell.set_current()?.value();
                let t = cell.set_pulse()?.value();
                i * v_access * t * 1e-3
            }
            Param::ResetEnergy => {
                let i = cell.reset_current()?.value();
                let t = cell.reset_pulse()?.value();
                i * v_access * t * 1e-3
            }
            Param::SetCurrent => {
                let e = cell.set_energy()?.value();
                let t = cell.set_pulse()?.value();
                if t == 0.0 || v_access == 0.0 {
                    return None;
                }
                e / (v_access * t) * 1e3
            }
            Param::ResetCurrent => {
                let e = cell.reset_energy()?.value();
                let t = cell.reset_pulse()?.value();
                if t == 0.0 || v_access == 0.0 {
                    return None;
                }
                e / (v_access * t) * 1e3
            }
            _ => return None,
        };
        if !value.is_finite() || value < 0.0 {
            return None;
        }
        Some(Derivation {
            param,
            value,
            provenance: Provenance::Electrical,
            donor: None,
        })
    }

    /// Same-class donors that report `param` (excluding the cell itself).
    fn reporting_donors(&self, cell: &CellParams, param: Param) -> Vec<&CellParams> {
        self.donors
            .iter()
            .filter(|d| {
                d.class() == cell.class() && d.name() != cell.name() && d.get(param).is_some()
            })
            .collect()
    }

    /// Heuristic 2 — linear interpolation of the parameter against process
    /// node across same-class donors. Needs at least two donors with
    /// distinct process nodes and the target's own process node; with a
    /// single donor this degenerates to heuristic 3 and is left to it.
    fn interpolate(&self, cell: &CellParams, param: Param) -> Option<Derivation> {
        let target = cell.process()?.value();
        let points: Vec<(f64, f64, &str)> = self
            .reporting_donors(cell, param)
            .into_iter()
            .filter_map(|d| Some((d.process()?.value(), d.get(param)?, d.name())))
            .collect();
        if points.len() < 2 {
            return None;
        }
        // Least-squares line over (process, value).
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            // All donors sit at one node: no trend; defer to similarity.
            return None;
        }
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        let slope = sxy / sxx;
        let value = mean_y + slope * (target - mean_x);
        if !value.is_finite() || value <= 0.0 {
            return None;
        }
        let donor = points
            .iter()
            .min_by(|a, b| {
                (a.0 - target)
                    .abs()
                    .partial_cmp(&(b.0 - target).abs())
                    .expect("finite process nodes")
            })
            .map(|p| p.2.to_owned());
        Some(Derivation {
            param,
            value,
            provenance: Provenance::Interpolated,
            donor,
        })
    }

    /// Heuristic 3 — copy from the most similar same-class donor.
    ///
    /// Similarity is the mean relative difference over the parameters both
    /// technologies report (lower is more similar). In
    /// [`SimilarityMode::ExactMatchOnly`] a donor is only eligible when it
    /// agrees *exactly* with the target on some shared operating parameter —
    /// the paper's Kang/Oh example, where an identical 600 µA reset current
    /// justifies copying Oh's set current.
    fn similarity(
        &self,
        cell: &CellParams,
        param: Param,
        mode: SimilarityMode,
    ) -> Option<Derivation> {
        let candidates: Vec<_> = self
            .reporting_donors(cell, param)
            .into_iter()
            .filter(|d| mode == SimilarityMode::Nearest || has_exact_shared_param(cell, d))
            .collect();
        let best = candidates.into_iter().min_by(|a, b| {
            similarity_distance(cell, a)
                .partial_cmp(&similarity_distance(cell, b))
                .expect("finite distances")
        })?;
        Some(Derivation {
            param,
            value: best.get(param).expect("donor reports param"),
            provenance: Provenance::Similarity,
            donor: Some(best.name().to_owned()),
        })
    }
}

/// How [`HeuristicEngine`] selects a similarity donor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimilarityMode {
    /// Only donors agreeing exactly on a shared operating parameter.
    ExactMatchOnly,
    /// Any donor; the closest by mean relative difference wins.
    Nearest,
}

/// Whether `a` and `b` report an identical value for any shared operating
/// (non-structural) parameter.
fn has_exact_shared_param(a: &CellParams, b: &CellParams) -> bool {
    Param::ALL.iter().any(|&param| {
        if matches!(param, Param::Process | Param::CellLevels | Param::CellSize) {
            return false;
        }
        match (a.get(param), b.get(param)) {
            (Some(x), Some(y)) => {
                let denom = x.abs().max(y.abs());
                denom > 0.0 && (x - y).abs() / denom < 1e-9
            }
            _ => false,
        }
    })
}

/// Last-resort literature defaults for parameters that *no* technology in
/// a class reports (the oldest technology in a class has no older donor to
/// draw from — the paper faced exactly this for Oh's read current and read
/// energy, whose 40 µA / 2 pJ figures are the PCRAM-literature norms).
///
/// Tagged [`Provenance::Interpolated`] since they summarize a trend across
/// the external literature rather than copying a single donor.
fn class_default(class: MemClass, param: Param) -> Option<Derivation> {
    let value = match (class, param) {
        (MemClass::Pcram, Param::ReadCurrent) => 40.0,
        (MemClass::Pcram, Param::ReadEnergy) => 2.0,
        (MemClass::Sttram, Param::ReadVoltage) => 0.65,
        (MemClass::Rram, Param::ReadVoltage) => 0.4,
        // Metal-oxide RRAM's hallmark density (Section II-C): the 4 F²
        // crossbar-class cell both Table II RRAMs are assigned.
        (MemClass::Rram, Param::CellSize) => 4.0,
        _ => return None,
    };
    Some(Derivation {
        param,
        value,
        provenance: Provenance::Interpolated,
        donor: None,
    })
}

/// Mean relative difference over shared parameters; +∞ when nothing is
/// shared (the donor can still be used, but only as a last resort).
fn similarity_distance(a: &CellParams, b: &CellParams) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for param in Param::ALL {
        // Process/levels are structural, not operating characteristics.
        if matches!(param, Param::Process | Param::CellLevels) {
            continue;
        }
        if let (Some(x), Some(y)) = (a.get(param), b.get(param)) {
            let denom = x.abs().max(y.abs());
            if denom > 0.0 {
                total += (x - y).abs() / denom;
            }
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technologies;
    use crate::units::*;

    fn engine() -> HeuristicEngine {
        HeuristicEngine::new(technologies::all_nvms_reported())
    }

    #[test]
    fn completes_every_reported_nvm() {
        let engine = engine();
        for cell in technologies::all_nvms_reported() {
            let name = cell.name().to_owned();
            let (done, _) = engine
                .complete(cell)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(done.validate().is_ok(), "{name}");
        }
    }

    #[test]
    fn xue_needs_no_derivations() {
        let (done, log) = engine().complete(technologies::xue_reported()).unwrap();
        assert!(log.is_empty());
        assert_eq!(done, technologies::xue());
    }

    #[test]
    fn chung_reset_energy_matches_table_2_dagger() {
        // 80 µA × 0.65 V × 10 ns = 0.52 pJ, heuristic 1.
        let (done, log) = engine().complete(technologies::chung_reported()).unwrap();
        let e = done.reset_energy().unwrap().value();
        assert!((e - 0.52).abs() < 1e-9, "got {e}");
        let d = log.iter().find(|d| d.param == Param::ResetEnergy).unwrap();
        assert_eq!(d.provenance, Provenance::Electrical);
    }

    #[test]
    fn umeki_reset_current_derived_electrically_near_table_2() {
        // Table II lists 255 µA †. With V_access = read voltage (0.38 V):
        // I = 1.12 pJ / (0.38 V · 10 ns) ≈ 295 µA — same order, same
        // heuristic; the paper evidently used a slightly higher V_access.
        let (done, log) = engine().complete(technologies::umeki_reported()).unwrap();
        let i = done.reset_current().unwrap().value();
        assert!((150.0..=400.0).contains(&i), "got {i}");
        let d = log.iter().find(|d| d.param == Param::ResetCurrent).unwrap();
        assert_eq!(d.provenance, Provenance::Electrical);
    }

    #[test]
    fn kang_set_current_comes_from_oh_by_similarity() {
        // The paper's worked example for heuristic 3.
        let (done, log) = engine().complete(technologies::kang_reported()).unwrap();
        assert_eq!(done.set_current().unwrap().value(), 200.0);
        let d = log.iter().find(|d| d.param == Param::SetCurrent).unwrap();
        assert_eq!(d.provenance, Provenance::Similarity);
        assert_eq!(d.donor.as_deref(), Some("Oh"));
    }

    #[test]
    fn chung_read_power_uses_equation_1_after_current_known() {
        // Chung reports neither read power nor read current; the engine
        // derives the current from reset-energy electricals is impossible,
        // so read current falls to interpolation/similarity and power then
        // follows by equation (1) or the same donor. Either way the cell
        // completes and the provenance is recorded.
        let (done, log) = engine().complete(technologies::chung_reported()).unwrap();
        assert!(done.read_power().is_some());
        assert!(log.iter().any(|d| d.param == Param::ReadPower));
    }

    #[test]
    fn fails_cleanly_without_donors() {
        let lone = HeuristicEngine::new(vec![]);
        let err = lone
            .complete(technologies::hayakawa_reported())
            .unwrap_err();
        assert!(matches!(err, CellError::NoDonor { .. }));
    }

    #[test]
    fn access_voltage_override_changes_equation_2() {
        let eng = engine().with_access_voltage(Volts::new(2.0));
        let (done, _) = eng.complete(technologies::chung_reported()).unwrap();
        // 80 µA × 2.0 V × 10 ns = 1.6 pJ.
        assert!((done.reset_energy().unwrap().value() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn equation_3_round_trips() {
        let f2 = cell_size_from_dimensions(300.0, 280.0, Nanometers::new(65.0));
        assert!((f2.value() - 300.0 * 280.0 / (65.0 * 65.0)).abs() < 1e-12);
    }

    #[test]
    fn physical_cell_area_uses_process_node() {
        let cell = technologies::zhang();
        let a = physical_cell_area(&cell).unwrap();
        // 4 F² at 22 nm.
        assert!((a.value() - 4.0 * (22e-6f64).powi(2)).abs() < 1e-18);
    }

    #[test]
    fn similarity_distance_zero_for_identical_cells() {
        let a = technologies::xue();
        assert_eq!(similarity_distance(&a, &a.clone()), 0.0);
    }

    #[test]
    fn similarity_distance_infinite_without_shared_params() {
        let bare = crate::params::CellParams::builder("Bare", MemClass::Rram, 2020).build();
        let full = technologies::zhang();
        assert!(similarity_distance(&bare, &full).is_infinite());
    }

    #[test]
    fn derivation_log_is_auditable() {
        let (_, log) = engine().complete(technologies::kang_reported()).unwrap();
        for d in &log {
            assert!(d.value.is_finite() && d.value > 0.0);
            if d.provenance == Provenance::Similarity {
                assert!(d.donor.is_some());
            }
        }
    }
}
