//! # nvm-llc-cell — cell-level NVM models and modeling heuristics
//!
//! This crate implements Section III of *"Evaluation of Non-Volatile Memory
//! Based Last Level Cache Given Modern Use Case Behavior"* (Hankin et al.,
//! IISWC 2019): typed cell-level parameter models for the ten NVM
//! technologies of the paper's Table II, the three modeling heuristics used
//! to fill parameters the VLSI literature does not report, per-parameter
//! provenance tracking, and NVSim-style `.cell` file I/O matching the
//! paper's public model release.
//!
//! ## Quick start
//!
//! ```
//! use nvm_llc_cell::{Catalog, HeuristicEngine, technologies};
//!
//! // The paper's released models: ten NVMs + the SRAM baseline.
//! let catalog = Catalog::paper();
//! assert!(catalog.validate_all().is_ok());
//!
//! // Reproduce the paper's derivation process from reported values only.
//! let engine = HeuristicEngine::new(technologies::all_nvms_reported());
//! let (kang, log) = engine.complete(technologies::kang_reported())?;
//! assert_eq!(kang.set_current().unwrap().value(), 200.0); // Oh's, by similarity
//! assert!(log.iter().all(|d| d.value > 0.0));
//! # Ok::<(), nvm_llc_cell::CellError>(())
//! ```
//!
//! ## Modules
//!
//! * [`units`] — strongly-typed physical quantities.
//! * [`params`] — [`CellParams`], [`Param`], [`Provenance`].
//! * [`technologies`] — the Table II dataset (reported and completed forms).
//! * [`heuristics`] — the three-strategy [`HeuristicEngine`].
//! * [`catalog`] — the named model registry.
//! * [`cellfile`] — NVSim-style `.cell` serialization.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod cellfile;
pub mod class;
pub mod error;
pub mod heuristics;
pub mod params;
pub mod scaling;
pub mod technologies;
pub mod units;

pub use catalog::Catalog;
pub use class::{AccessDevice, MemClass};
pub use error::CellError;
pub use heuristics::{Derivation, HeuristicEngine};
pub use params::{CellParams, CellParamsBuilder, Param, Provenance};

#[cfg(test)]
mod proptests {
    use crate::params::{CellParams, Param, Provenance};
    use crate::units::*;
    use crate::MemClass;
    use proptest::prelude::*;

    fn arb_class() -> impl Strategy<Value = MemClass> {
        prop_oneof![
            Just(MemClass::Pcram),
            Just(MemClass::Sttram),
            Just(MemClass::Rram),
        ]
    }

    proptest! {
        /// Equation (2) algebra: deriving the energy from a current and
        /// then re-deriving the current from that energy is the identity.
        #[test]
        fn equation_2_inverts(
            current in 1.0f64..1000.0,
            voltage in 0.05f64..3.0,
            pulse in 0.5f64..500.0,
        ) {
            let e = Microamps::new(current) * Nanoseconds::new(pulse) * Volts::new(voltage);
            let back = e.value() / (voltage * pulse) * 1e3;
            prop_assert!((back - current).abs() / current < 1e-9);
        }

        /// A cell given every required parameter always validates, and its
        /// derived count equals the number of `derived` insertions.
        #[test]
        fn complete_cells_validate(class in arb_class(), seed in 1.0f64..100.0) {
            let mut cell = CellParams::builder("P", class, 2020)
                .process(Nanometers::new(45.0))
                .cell_size(FeatureSquared::new(seed))
                .build();
            for param in Param::required_for(class) {
                if cell.get(param).is_none() {
                    cell_set(&mut cell, param, seed);
                }
            }
            prop_assert!(cell.validate().is_ok());
        }

        /// `.cell` round trip is lossless for arbitrary valid STTRAM cells.
        #[test]
        fn cellfile_round_trip(
            rv in 0.05f64..2.0,
            rp in 0.01f64..100.0,
            ic in 1.0f64..500.0,
            t in 0.5f64..200.0,
            e in 0.01f64..10.0,
        ) {
            let cell = CellParams::builder("Rt", MemClass::Sttram, 2021)
                .process(Nanometers::new(45.0))
                .cell_size(FeatureSquared::new(20.0))
                .read_voltage(Volts::new(rv))
                .read_power(Microwatts::new(rp))
                .reset_current(Microamps::new(ic))
                .reset_pulse(Nanoseconds::new(t))
                .reset_energy(Picojoules::new(e))
                .set_current(Microamps::new(ic))
                .set_pulse(Nanoseconds::new(t))
                .set_energy(Picojoules::new(e))
                .build();
            let text = crate::cellfile::to_string(&cell);
            let back = crate::cellfile::from_str(&text).unwrap();
            prop_assert_eq!(back, cell);
        }
    }

    fn cell_set(cell: &mut CellParams, param: Param, value: f64) {
        cell_set_inner(cell, param, value);
    }

    fn cell_set_inner(cell: &mut CellParams, param: Param, value: f64) {
        // Uses the crate-internal setter through a tiny shim, recording
        // reported provenance.
        use crate::params::Provenance as P;
        let _ = P::Reported;
        cell_apply(cell, param, value);
    }

    fn cell_apply(cell: &mut CellParams, param: Param, value: f64) {
        let updated = cell
            .clone()
            .into_builder()
            .derived(param, value, Provenance::Reported)
            .build();
        *cell = updated;
    }
}
