//! NVSim-style `.cell` file serialization.
//!
//! The paper releases its cell models publicly in the configuration format
//! consumed by NVSim. This module writes and parses that format so the
//! models in this crate round-trip through the same artifact the authors
//! published:
//!
//! ```text
//! // Chung_S — STTRAM, IEDM 2010
//! -MemCellType: STTRAM
//! -CitationYear: 2010
//! -AccessType: CMOS
//! -ProcessNode: 54
//! -CellArea (F^2): 14  // reported
//! -ReadVoltage (V): 0.65  // reported
//! -ResetEnergy (pJ): 0.52  // derived: electrical (heuristic 1)
//! ...
//! ```
//!
//! Provenance survives the round trip via the trailing comment on each
//! parameter line.

use crate::class::{AccessDevice, MemClass};
use crate::error::CellError;
use crate::params::{CellParams, Param, Provenance};

/// Serializes a cell model to `.cell` text.
///
/// Only parameters applicable to the cell's class are emitted, in Table II
/// row order; derived values carry a `// derived:` comment naming the
/// heuristic.
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::{cellfile, technologies};
///
/// let text = cellfile::to_string(&technologies::zhang());
/// assert!(text.contains("-MemCellType: RRAM"));
/// let back = cellfile::from_str(&text)?;
/// assert_eq!(back, technologies::zhang());
/// # Ok::<(), nvm_llc_cell::CellError>(())
/// ```
pub fn to_string(cell: &CellParams) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "// {} — {}, {}\n",
        cell.display_name(),
        cell.class(),
        cell.year()
    ));
    out.push_str(&format!("-CellName: {}\n", cell.name()));
    out.push_str(&format!("-MemCellType: {}\n", cell.class()));
    out.push_str(&format!("-CitationYear: {}\n", cell.year()));
    out.push_str(&format!("-AccessType: {}\n", cell.access_device()));
    for param in Param::ALL {
        if let Some(value) = cell.get(param) {
            let provenance = cell.provenance(param).unwrap_or_default();
            let mut line = format!("{}: {}", param.key(), format_value(value));
            if provenance.is_derived() {
                line.push_str(&format!("  // derived: {provenance}"));
            } else {
                line.push_str("  // reported");
            }
            line.push('\n');
            out.push_str(&line);
        }
    }
    out
}

/// Serializes a whole catalog, models separated by blank lines.
pub fn catalog_to_string(catalog: &crate::catalog::Catalog) -> String {
    catalog.iter().map(to_string).collect::<Vec<_>>().join("\n")
}

/// Writes the catalog as a model-release directory: one
/// `<Name>.cell` file per technology — the layout of the paper's public
/// model release (`http://sites.tufts.edu/tcal/nvm-models`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_catalog_dir(
    catalog: &crate::catalog::Catalog,
    dir: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for cell in catalog.iter() {
        std::fs::write(dir.join(format!("{}.cell", cell.name())), to_string(cell))?;
    }
    Ok(())
}

/// Reads every `*.cell` file in a release directory back into a catalog.
///
/// # Errors
///
/// I/O errors, or [`CellError`] wrapped in `io::Error` on parse failure.
pub fn read_catalog_dir(dir: &std::path::Path) -> std::io::Result<crate::catalog::Catalog> {
    let mut cells = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .filter(|e| e.path().extension().is_some_and(|x| x == "cell"))
        .collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let text = std::fs::read_to_string(entry.path())?;
        let cell =
            from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        cells.push(cell);
    }
    Ok(cells.into_iter().collect())
}

fn format_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Parses one cell model from `.cell` text.
///
/// # Errors
///
/// [`CellError::Parse`] with a 1-based line number on malformed input;
/// [`CellError::UnknownClass`] / [`CellError::UnknownAccessDevice`] on bad
/// enumeration values.
pub fn from_str(text: &str) -> Result<CellParams, CellError> {
    let mut cells = parse_many(text)?;
    match cells.len() {
        1 => Ok(cells.remove(0)),
        n => Err(CellError::Parse {
            line: 1,
            message: format!("expected exactly one cell model, found {n}"),
        }),
    }
}

/// Parses any number of concatenated cell models (the bulk-release format).
///
/// # Errors
///
/// Same conditions as [`from_str`].
pub fn parse_many(text: &str) -> Result<Vec<CellParams>, CellError> {
    let mut cells = Vec::new();
    let mut current: Option<PendingCell> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once(':').ok_or_else(|| CellError::Parse {
            line: lineno,
            message: format!("expected `key: value`, got `{line}`"),
        })?;
        let key = key.trim();
        let value = value.trim();
        match key {
            "-CellName" => {
                if let Some(pending) = current.take() {
                    cells.push(pending.finish()?);
                }
                current = Some(PendingCell::new(value.to_owned()));
            }
            "-MemCellType" => {
                let pending = current.as_mut().ok_or_else(|| missing_name(lineno))?;
                pending.class = Some(value.parse()?);
            }
            "-CitationYear" => {
                let pending = current.as_mut().ok_or_else(|| missing_name(lineno))?;
                pending.year = Some(value.parse().map_err(|_| CellError::Parse {
                    line: lineno,
                    message: format!("invalid year `{value}`"),
                })?);
            }
            "-AccessType" => {
                let pending = current.as_mut().ok_or_else(|| missing_name(lineno))?;
                pending.access = Some(value.parse()?);
            }
            _ => {
                let pending = current.as_mut().ok_or_else(|| missing_name(lineno))?;
                let param = param_for_key(key).ok_or_else(|| CellError::Parse {
                    line: lineno,
                    message: format!("unknown parameter key `{key}`"),
                })?;
                let number: f64 = value.parse().map_err(|_| CellError::Parse {
                    line: lineno,
                    message: format!("invalid number `{value}` for {param}"),
                })?;
                let provenance = provenance_from_comment(raw);
                pending.params.push((param, number, provenance));
            }
        }
    }
    if let Some(pending) = current.take() {
        cells.push(pending.finish()?);
    }
    Ok(cells)
}

fn missing_name(line: usize) -> CellError {
    CellError::Parse {
        line,
        message: "parameter before any -CellName header".to_owned(),
    }
}

/// The part of a line before any `//` comment.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Extracts the provenance recorded in a trailing comment, defaulting to
/// reported.
fn provenance_from_comment(raw: &str) -> Provenance {
    let comment = match raw.find("//") {
        Some(pos) => &raw[pos..],
        None => return Provenance::Reported,
    };
    if comment.contains("electrical") {
        Provenance::Electrical
    } else if comment.contains("interpolated") {
        Provenance::Interpolated
    } else if comment.contains("similarity") {
        Provenance::Similarity
    } else {
        Provenance::Reported
    }
}

fn param_for_key(key: &str) -> Option<Param> {
    // Keys carry a unit suffix like " (uA)" which we match structurally so
    // hand-edited files with different spacing still parse.
    let base = key.split_whitespace().next()?;
    Param::ALL
        .into_iter()
        .find(|p| p.key().split_whitespace().next() == Some(base))
}

#[derive(Debug)]
struct PendingCell {
    name: String,
    class: Option<MemClass>,
    year: Option<u16>,
    access: Option<AccessDevice>,
    params: Vec<(Param, f64, Provenance)>,
}

impl PendingCell {
    fn new(name: String) -> Self {
        PendingCell {
            name,
            class: None,
            year: None,
            access: None,
            params: Vec::new(),
        }
    }

    fn finish(self) -> Result<CellParams, CellError> {
        let class = self.class.ok_or_else(|| CellError::Parse {
            line: 0,
            message: format!("cell `{}` has no -MemCellType", self.name),
        })?;
        let mut builder = CellParams::builder(self.name, class, self.year.unwrap_or(0));
        if let Some(access) = self.access {
            builder = builder.access_device(access);
        }
        for (param, value, provenance) in self.params {
            builder = builder.derived(param, value, provenance);
        }
        Ok(builder.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::technologies;

    #[test]
    fn every_paper_model_round_trips() {
        for cell in Catalog::paper().iter() {
            let text = to_string(cell);
            let back = from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
            assert_eq!(&back, cell, "{}", cell.name());
        }
    }

    #[test]
    fn provenance_survives_round_trip() {
        let text = to_string(&technologies::chung());
        let back = from_str(&text).unwrap();
        assert_eq!(
            back.provenance(Param::ResetEnergy),
            Some(Provenance::Electrical)
        );
        assert_eq!(
            back.provenance(Param::ReadVoltage),
            Some(Provenance::Reported)
        );
    }

    #[test]
    fn bulk_catalog_round_trips() {
        let catalog = Catalog::paper();
        let text = catalog_to_string(&catalog);
        let cells = parse_many(&text).unwrap();
        assert_eq!(cells.len(), catalog.len());
        for (parsed, original) in cells.iter().zip(catalog.iter()) {
            assert_eq!(parsed, original);
        }
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "-CellName: X\n-MemCellType: RRAM\n-ReadVoltage (V): not_a_number\n";
        match from_str(text) {
            Err(CellError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_parameter_before_header() {
        let text = "-ReadVoltage (V): 0.4\n";
        assert!(matches!(
            from_str(text),
            Err(CellError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn parse_rejects_unknown_key_and_class() {
        let unknown_key = "-CellName: X\n-MemCellType: RRAM\n-FluxCapacitance (W): 1\n";
        assert!(from_str(unknown_key).is_err());
        let unknown_class = "-CellName: X\n-MemCellType: DRAM\n";
        assert!(matches!(
            from_str(unknown_class),
            Err(CellError::UnknownClass(_))
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n// a banner\n-CellName: X\n-MemCellType: RRAM\n\n-ReadVoltage (V): 0.2 // reported\n";
        let cell = from_str(text).unwrap();
        assert_eq!(cell.read_voltage().unwrap().value(), 0.2);
    }

    #[test]
    fn from_str_rejects_multiple_cells() {
        let text = format!(
            "{}{}",
            to_string(&technologies::zhang()),
            to_string(&technologies::hayakawa())
        );
        assert!(from_str(&text).is_err());
        assert_eq!(parse_many(&text).unwrap().len(), 2);
    }

    #[test]
    fn release_directory_round_trips() {
        let dir = std::env::temp_dir().join("nvm_llc_cell_release_test");
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::paper();
        write_catalog_dir(&catalog, &dir).unwrap();
        let back = read_catalog_dir(&dir).unwrap();
        assert_eq!(back.len(), catalog.len());
        for cell in catalog.iter() {
            assert_eq!(back.get(cell.name()).unwrap(), cell);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn integer_values_print_without_decimal_point() {
        assert_eq!(format_value(150.0), "150");
        assert_eq!(format_value(0.52), "0.52");
    }
}
