//! Strongly-typed physical units used throughout the cell and circuit models.
//!
//! Every quantity the paper reports (Table II, Table III) carries a unit:
//! nanoseconds, picojoules, microamps, volts, microwatts, watts, square
//! millimeters, the lithography feature-squared area unit `F²`, nanometers of
//! process node, and mebibytes of capacity. Mixing these up silently is the
//! classic modeling bug this module rules out at compile time
//! (see C-NEWTYPE in the Rust API guidelines).
//!
//! All units are thin `f64` newtypes with:
//!
//! * a `new` constructor and a `value()` accessor,
//! * `Display` that prints the value with its unit suffix,
//! * arithmetic with plain scalars (`* f64`, `/ f64`) where scaling a
//!   quantity is meaningful,
//! * same-unit addition/subtraction,
//! * cross-unit products that produce the physically-correct unit (e.g.
//!   [`Microamps`] × [`Volts`] = [`Microwatts`], the paper's equation (1)).
//!
//! # Examples
//!
//! ```
//! use nvm_llc_cell::units::{Microamps, Volts, Nanoseconds};
//!
//! // Equation (2) of the paper: E_set = I_set * V_access * t_set
//! let energy = Microamps::new(80.0) * Volts::new(0.65) * Nanoseconds::new(10.0);
//! assert!((energy.value() - 0.52).abs() < 1e-9); // picojoules
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Declares an `f64` newtype unit with constructor, accessor, `Display`,
/// scalar scaling, and same-unit add/sub.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value, stripped of its unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite and non-negative —
            /// the validity condition for every physical quantity in the
            /// paper's tables.
            #[inline]
            pub fn is_physical(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two same-unit quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// Time in nanoseconds (`ns`). Used for pulse widths and cache latencies.
    Nanoseconds,
    "ns"
);
unit!(
    /// Energy in picojoules (`pJ`). Used for per-operation cell energies.
    Picojoules,
    "pJ"
);
unit!(
    /// Energy in nanojoules (`nJ`). Used for per-access cache energies
    /// (Table III).
    Nanojoules,
    "nJ"
);
unit!(
    /// Energy in joules (`J`). Used for whole-run LLC energy totals.
    Joules,
    "J"
);
unit!(
    /// Current in microamps (`µA`).
    Microamps,
    "uA"
);
unit!(
    /// Electric potential in volts (`V`).
    Volts,
    "V"
);
unit!(
    /// Power in microwatts (`µW`). Used for cell read power.
    Microwatts,
    "uW"
);
unit!(
    /// Power in watts (`W`). Used for cache leakage power (Table III).
    Watts,
    "W"
);
unit!(
    /// Area in square millimeters (`mm²`). Used for cache area (Table III).
    SquareMillimeters,
    "mm^2"
);
unit!(
    /// Cell area in squared lithography feature units (`F²`).
    FeatureSquared,
    "F^2"
);
unit!(
    /// Lithography process node in nanometers (`nm`).
    Nanometers,
    "nm"
);
unit!(
    /// Capacity in mebibytes (`MB` in the paper's notation).
    Mebibytes,
    "MB"
);
unit!(
    /// Time in seconds (`s`). Used for whole-run execution time.
    Seconds,
    "s"
);

// --- Cross-unit physics -------------------------------------------------

impl Mul<Volts> for Microamps {
    type Output = Microwatts;

    /// Equation (1) of the paper: `P_read = I_read * V_read`.
    /// `µA × V = µW` exactly.
    #[inline]
    fn mul(self, rhs: Volts) -> Microwatts {
        Microwatts::new(self.value() * rhs.value())
    }
}

impl Mul<Microamps> for Volts {
    type Output = Microwatts;
    #[inline]
    fn mul(self, rhs: Microamps) -> Microwatts {
        rhs * self
    }
}

impl Mul<Nanoseconds> for Microwatts {
    type Output = Picojoules;

    /// `µW × ns = 10⁻⁶ W × 10⁻⁹ s = 10⁻¹⁵ J = 10⁻³ pJ`... scaled:
    /// `1 µW · 1 ns = 1 fJ = 0.001 pJ`.
    #[inline]
    fn mul(self, rhs: Nanoseconds) -> Picojoules {
        Picojoules::new(self.value() * rhs.value() * 1e-3)
    }
}

impl Mul<Nanoseconds> for Microamps {
    /// Intermediate charge-like product used by equation (2); combined with
    /// a voltage it yields energy. `µA·ns = fC`; we expose the full
    /// `I·V·t` chain instead of a raw charge unit.
    type Output = MicroampNanoseconds;
    #[inline]
    fn mul(self, rhs: Nanoseconds) -> MicroampNanoseconds {
        MicroampNanoseconds(self.value() * rhs.value())
    }
}

/// Charge-like intermediate (`µA·ns = fC`) produced while evaluating the
/// paper's equation (2). Multiply by [`Volts`] to obtain [`Picojoules`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MicroampNanoseconds(f64);

impl MicroampNanoseconds {
    /// Returns the raw value in `µA·ns` (equivalently femtocoulombs).
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Mul<Volts> for MicroampNanoseconds {
    type Output = Picojoules;

    /// `fC × V = fJ = 10⁻³ pJ`.
    #[inline]
    fn mul(self, rhs: Volts) -> Picojoules {
        Picojoules::new(self.0 * rhs.value() * 1e-3)
    }
}

impl Picojoules {
    /// Converts to nanojoules (`1 nJ = 1000 pJ`).
    #[inline]
    pub fn to_nanojoules(self) -> Nanojoules {
        Nanojoules::new(self.value() * 1e-3)
    }

    /// Converts to joules.
    #[inline]
    pub fn to_joules(self) -> Joules {
        Joules::new(self.value() * 1e-12)
    }
}

impl Nanojoules {
    /// Converts to picojoules.
    #[inline]
    pub fn to_picojoules(self) -> Picojoules {
        Picojoules::new(self.value() * 1e3)
    }

    /// Converts to joules.
    #[inline]
    pub fn to_joules(self) -> Joules {
        Joules::new(self.value() * 1e-9)
    }
}

impl Nanoseconds {
    /// Converts to seconds.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.value() * 1e-9)
    }

    /// Converts a latency to whole clock cycles at `freq_ghz` GHz, rounding
    /// up (a partial cycle still occupies a full cycle slot).
    ///
    /// # Examples
    ///
    /// ```
    /// use nvm_llc_cell::units::Nanoseconds;
    /// // 1.234 ns at 2.66 GHz = 3.28 cycles -> 4
    /// assert_eq!(Nanoseconds::new(1.234).to_cycles(2.66), 4);
    /// ```
    #[inline]
    pub fn to_cycles(self, freq_ghz: f64) -> u64 {
        (self.value() * freq_ghz).ceil().max(0.0) as u64
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;

    /// `W × s = J` — leakage power integrated over runtime.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mebibytes {
    /// Number of bytes in this capacity.
    #[inline]
    pub fn bytes(self) -> u64 {
        (self.value() * 1024.0 * 1024.0).round() as u64
    }

    /// Builds a capacity from a byte count.
    #[inline]
    pub fn from_bytes(bytes: u64) -> Self {
        Self::new(bytes as f64 / (1024.0 * 1024.0))
    }
}

impl FeatureSquared {
    /// Physical area of one cell at the given process node, in mm².
    ///
    /// One `F²` at process `s` nm is `s² nm² = s² × 10⁻¹² mm² × 10⁻⁶`...
    /// concretely `(s × 10⁻⁶ mm)²`.
    #[inline]
    pub fn physical_area(self, process: Nanometers) -> SquareMillimeters {
        let f_mm = process.value() * 1e-6;
        SquareMillimeters::new(self.value() * f_mm * f_mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_microamps_times_volts_is_microwatts() {
        // Umeki reads at 0.38 V; a hypothetical 4.47 µA read current gives
        // the reported 1.70 µW.
        let p = Microamps::new(4.473684) * Volts::new(0.38);
        assert!((p.value() - 1.7).abs() < 1e-5);
    }

    #[test]
    fn equation_2_chung_reset_energy() {
        // Chung: 80 µA, 0.65 V access, 10 ns pulse -> 0.52 pJ (Table II †).
        let e = Microamps::new(80.0) * Nanoseconds::new(10.0) * Volts::new(0.65);
        assert!((e.value() - 0.52).abs() < 1e-9);
    }

    #[test]
    fn microwatt_nanosecond_product_is_femtojoules_as_picojoules() {
        let e = Microwatts::new(1000.0) * Nanoseconds::new(1.0);
        assert!((e.value() - 1.0).abs() < 1e-12); // 1000 µW * 1 ns = 1 pJ
    }

    #[test]
    fn display_includes_suffix_and_respects_precision() {
        assert_eq!(format!("{}", Nanoseconds::new(1.5)), "1.5 ns");
        assert_eq!(format!("{:.2}", Picojoules::new(0.525)), "0.53 pJ"); // round-half-even
        assert_eq!(format!("{:.1}", Watts::new(3.438)), "3.4 W");
    }

    #[test]
    fn same_unit_arithmetic() {
        let a = Nanoseconds::new(2.0) + Nanoseconds::new(3.0);
        assert_eq!(a.value(), 5.0);
        let b = Nanoseconds::new(2.0) - Nanoseconds::new(3.0);
        assert_eq!(b.value(), -1.0);
        assert_eq!((Nanoseconds::new(6.0) / Nanoseconds::new(3.0)), 2.0);
        assert_eq!((Nanoseconds::new(6.0) * 2.0).value(), 12.0);
        assert_eq!((2.0 * Nanoseconds::new(6.0)).value(), 12.0);
        assert_eq!((-Nanoseconds::new(6.0)).value(), -6.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Picojoules = (1..=4).map(|i| Picojoules::new(i as f64)).sum();
        assert_eq!(total.value(), 10.0);
    }

    #[test]
    fn capacity_round_trips_through_bytes() {
        let two_mb = Mebibytes::new(2.0);
        assert_eq!(two_mb.bytes(), 2 * 1024 * 1024);
        assert_eq!(Mebibytes::from_bytes(two_mb.bytes()).value(), 2.0);
    }

    #[test]
    fn latency_to_cycles_rounds_up() {
        assert_eq!(Nanoseconds::new(0.0).to_cycles(2.66), 0);
        assert_eq!(Nanoseconds::new(0.375).to_cycles(2.66), 1); // 0.9975 cycles
        assert_eq!(Nanoseconds::new(0.377).to_cycles(2.66), 2); // 1.0028 cycles
        assert_eq!(Nanoseconds::new(300.0).to_cycles(2.66), 798);
    }

    #[test]
    fn physical_cell_area_from_feature_squared() {
        // 4 F² at 22 nm: (22e-6 mm)² * 4 = 1.936e-9 mm².
        let a = FeatureSquared::new(4.0).physical_area(Nanometers::new(22.0));
        assert!((a.value() - 1.936e-9).abs() < 1e-15);
    }

    #[test]
    fn is_physical_rejects_nan_and_negative() {
        assert!(Volts::new(1.0).is_physical());
        assert!(Volts::new(0.0).is_physical());
        assert!(!Volts::new(-0.1).is_physical());
        assert!(!Volts::new(f64::NAN).is_physical());
        assert!(!Volts::new(f64::INFINITY).is_physical());
    }

    #[test]
    fn leakage_energy_is_power_times_seconds() {
        let e = Watts::new(3.438) * Seconds::new(2.0);
        assert!((e.value() - 6.876).abs() < 1e-12);
    }

    #[test]
    fn min_max_helpers() {
        let a = Nanojoules::new(1.0);
        let b = Nanojoules::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
