//! The ten NVM technologies of the paper's Table II, plus the SRAM baseline.
//!
//! Each technology comes in two forms:
//!
//! * `*_reported()` — only the values the cited VLSI paper actually reports
//!   (the unmarked entries of Table II). These are the inputs to the
//!   [`crate::heuristics::HeuristicEngine`], which must fill the gaps.
//! * the plain constructor (e.g. [`oh`]) — the complete Table II column,
//!   with the paper's derived values transcribed and tagged with their
//!   `†`/`*` provenance. This is the canonical dataset consumed by the
//!   circuit model and released as `.cell` files.

use crate::class::MemClass;
use crate::params::{CellParams, Param, Provenance};
use crate::units::*;

/// Oh \[28\] — 64 Mb PCRAM, ISSCC 2005.
pub fn oh() -> CellParams {
    oh_reported()
        .into_builder()
        .derived(Param::CellSize, 16.6, Provenance::Interpolated)
        .derived(Param::ReadCurrent, 40.0, Provenance::Interpolated)
        .derived(Param::ReadEnergy, 2.0, Provenance::Interpolated)
        .build()
}

/// Oh \[28\] with only literature-reported parameters.
pub fn oh_reported() -> CellParams {
    CellParams::builder("Oh", MemClass::Pcram, 2005)
        .process(Nanometers::new(120.0))
        .cell_levels(1)
        .reset_current(Microamps::new(600.0))
        .reset_pulse(Nanoseconds::new(10.0))
        .set_current(Microamps::new(200.0))
        .set_pulse(Nanoseconds::new(180.0))
        .build()
}

/// Chen \[29\] — phase-change bridge memory, IEDM 2006.
pub fn chen() -> CellParams {
    chen_reported()
        .into_builder()
        .derived(Param::Process, 60.0, Provenance::Interpolated)
        .derived(Param::CellSize, 10.0, Provenance::Interpolated)
        .derived(Param::ReadCurrent, 40.0, Provenance::Similarity)
        .derived(Param::ReadEnergy, 2.0, Provenance::Similarity)
        .build()
}

/// Chen \[29\] with only literature-reported parameters.
pub fn chen_reported() -> CellParams {
    CellParams::builder("Chen", MemClass::Pcram, 2006)
        .cell_levels(1)
        .reset_current(Microamps::new(90.0))
        .reset_pulse(Nanoseconds::new(60.0))
        .set_current(Microamps::new(55.0))
        .set_pulse(Nanoseconds::new(80.0))
        .build()
}

/// Kang \[30\] — 256 Mb synchronous-burst PRAM, ISSCC 2006.
pub fn kang() -> CellParams {
    kang_reported()
        .into_builder()
        .derived(Param::ReadCurrent, 60.0, Provenance::Interpolated)
        .derived(Param::ReadEnergy, 2.0, Provenance::Similarity)
        // Section III-A's worked example: Kang and Oh share an identical
        // 600 µA reset current, so Oh's 200 µA set current is selected.
        .derived(Param::SetCurrent, 200.0, Provenance::Similarity)
        .build()
}

/// Kang \[30\] with only literature-reported parameters.
pub fn kang_reported() -> CellParams {
    CellParams::builder("Kang", MemClass::Pcram, 2006)
        .process(Nanometers::new(100.0))
        .cell_size(FeatureSquared::new(16.6))
        .cell_levels(1)
        .reset_current(Microamps::new(600.0))
        .reset_pulse(Nanoseconds::new(50.0))
        .set_pulse(Nanoseconds::new(300.0))
        .build()
}

/// Close \[31\] — 256 Mcell 2+ bit/cell PCM, TCAS-I 2013.
pub fn close() -> CellParams {
    close_reported()
        .into_builder()
        .derived(Param::ReadCurrent, 60.0, Provenance::Similarity)
        .derived(Param::ReadEnergy, 2.0, Provenance::Similarity)
        .build()
}

/// Close \[31\] with only literature-reported parameters.
pub fn close_reported() -> CellParams {
    CellParams::builder("Close", MemClass::Pcram, 2013)
        .process(Nanometers::new(90.0))
        .cell_size(FeatureSquared::new(25.0))
        .cell_levels(2)
        .reset_current(Microamps::new(400.0))
        .reset_pulse(Nanoseconds::new(20.0))
        .set_current(Microamps::new(400.0))
        .set_pulse(Nanoseconds::new(20.0))
        .build()
}

/// Chung \[32\] — fully-integrated 54 nm STT-RAM, IEDM 2010.
pub fn chung() -> CellParams {
    chung_reported()
        .into_builder()
        .derived(Param::ReadPower, 24.1, Provenance::Electrical)
        .derived(Param::ResetEnergy, 0.52, Provenance::Electrical)
        .derived(Param::SetCurrent, 100.0, Provenance::Electrical)
        .derived(Param::SetEnergy, 0.75, Provenance::Electrical)
        .build()
}

/// Chung \[32\] with only literature-reported parameters.
pub fn chung_reported() -> CellParams {
    CellParams::builder("Chung", MemClass::Sttram, 2010)
        .process(Nanometers::new(54.0))
        .cell_size(FeatureSquared::new(14.0))
        .cell_levels(1)
        .read_voltage(Volts::new(0.65))
        .reset_current(Microamps::new(80.0))
        .reset_pulse(Nanoseconds::new(10.0))
        .set_pulse(Nanoseconds::new(10.0))
        .build()
}

/// Jan \[33\] — 8 Mb perpendicular STT-MRAM, VLSI 2014.
pub fn jan() -> CellParams {
    jan_reported()
        .into_builder()
        .derived(Param::ReadPower, 30.0, Provenance::Interpolated)
        .derived(Param::ResetEnergy, 1.0, Provenance::Interpolated)
        .derived(Param::SetEnergy, 1.0, Provenance::Interpolated)
        .build()
}

/// Jan \[33\] with only literature-reported parameters.
pub fn jan_reported() -> CellParams {
    CellParams::builder("Jan", MemClass::Sttram, 2014)
        .process(Nanometers::new(90.0))
        .cell_size(FeatureSquared::new(50.0))
        .cell_levels(1)
        .read_voltage(Volts::new(0.08))
        .reset_current(Microamps::new(52.0))
        .reset_pulse(Nanoseconds::new(4.0))
        .set_current(Microamps::new(38.0))
        .set_pulse(Nanoseconds::new(4.5))
        .build()
}

/// Umeki \[34\] — negative-resistance sense-amplifier STT-MRAM, ASP-DAC 2015.
pub fn umeki() -> CellParams {
    umeki_reported()
        .into_builder()
        .derived(Param::CellSize, 48.0, Provenance::Electrical)
        .derived(Param::ResetCurrent, 255.0, Provenance::Electrical)
        .derived(Param::SetCurrent, 255.0, Provenance::Electrical)
        .build()
}

/// Umeki \[34\] with only literature-reported parameters.
pub fn umeki_reported() -> CellParams {
    CellParams::builder("Umeki", MemClass::Sttram, 2015)
        .process(Nanometers::new(65.0))
        .cell_levels(1)
        .read_voltage(Volts::new(0.38))
        .read_power(Microwatts::new(1.70))
        .reset_pulse(Nanoseconds::new(10.0))
        .reset_energy(Picojoules::new(1.12))
        .set_pulse(Nanoseconds::new(10.0))
        .set_energy(Picojoules::new(1.12))
        .build()
}

/// Xue \[35\] — ODESY 3T-3MTJ cell, ICCAD 2016. Two levels per cell.
pub fn xue() -> CellParams {
    // Every Xue parameter in Table II is reported.
    xue_reported()
}

/// Xue \[35\] with only literature-reported parameters (all of them).
pub fn xue_reported() -> CellParams {
    CellParams::builder("Xue", MemClass::Sttram, 2016)
        .process(Nanometers::new(45.0))
        .cell_size(FeatureSquared::new(63.0))
        .cell_levels(2)
        .read_voltage(Volts::new(1.2))
        .read_power(Microwatts::new(65.0))
        .reset_current(Microamps::new(150.0))
        .reset_pulse(Nanoseconds::new(2.0))
        .reset_energy(Picojoules::new(0.36))
        .set_current(Microamps::new(150.0))
        .set_pulse(Nanoseconds::new(2.0))
        .set_energy(Picojoules::new(0.36))
        .build()
}

/// Hayakawa \[36\] — TaOx RRAM with centralized filament, VLSI 2015.
///
/// Section III-A notes the literature reports few parameters for this cell;
/// it is retained to balance the RRAM class, with most values derived.
pub fn hayakawa() -> CellParams {
    hayakawa_reported()
        .into_builder()
        .derived(Param::CellSize, 4.0, Provenance::Similarity)
        .derived(Param::ReadVoltage, 0.4, Provenance::Interpolated)
        .derived(Param::ReadPower, 0.16, Provenance::Interpolated)
        .derived(Param::ResetVoltage, 2.0, Provenance::Interpolated)
        .derived(Param::ResetPulse, 10.0, Provenance::Interpolated)
        .derived(Param::ResetEnergy, 0.6, Provenance::Interpolated)
        .derived(Param::SetVoltage, 2.0, Provenance::Interpolated)
        .derived(Param::SetPulse, 10.0, Provenance::Interpolated)
        .derived(Param::SetEnergy, 0.6, Provenance::Interpolated)
        .build()
}

/// Hayakawa \[36\] with only literature-reported parameters.
pub fn hayakawa_reported() -> CellParams {
    CellParams::builder("Hayakawa", MemClass::Rram, 2015)
        .process(Nanometers::new(40.0))
        .cell_levels(1)
        .build()
}

/// Zhang \[13\] — "Mellow Writes" RRAM, ISCA 2016.
pub fn zhang() -> CellParams {
    zhang_reported()
        .into_builder()
        .derived(Param::CellSize, 4.0, Provenance::Similarity)
        .build()
}

/// Zhang \[13\] with only literature-reported parameters.
pub fn zhang_reported() -> CellParams {
    CellParams::builder("Zhang", MemClass::Rram, 2016)
        .process(Nanometers::new(22.0))
        .cell_levels(1)
        .read_voltage(Volts::new(0.2))
        .read_power(Microwatts::new(0.02))
        .reset_voltage(Volts::new(1.0))
        .reset_pulse(Nanoseconds::new(150.0))
        .reset_energy(Picojoules::new(0.4))
        .set_voltage(Volts::new(1.0))
        .set_pulse(Nanoseconds::new(150.0))
        .set_energy(Picojoules::new(0.4))
        .build()
}

/// The 45 nm 6T SRAM baseline cell (Section IV: a 2 MB SRAM LLC at 45 nm).
///
/// SRAM is not specified in Table II; the parameters here are the standard
/// 6T figures used by circuit-level cache models: ~146 F² cell, sub-ns
/// access, symmetric read/write.
pub fn sram_baseline() -> CellParams {
    CellParams::builder("SRAM", MemClass::Sram, 2009)
        .process(Nanometers::new(45.0))
        .cell_size(FeatureSquared::new(146.0))
        .cell_levels(1)
        .build()
}

/// All ten NVM technologies in Table II column order.
pub fn all_nvms() -> Vec<CellParams> {
    vec![
        oh(),
        chen(),
        kang(),
        close(),
        chung(),
        jan(),
        umeki(),
        xue(),
        hayakawa(),
        zhang(),
    ]
}

/// All ten NVMs in reported-only (pre-heuristic) form, same order.
pub fn all_nvms_reported() -> Vec<CellParams> {
    vec![
        oh_reported(),
        chen_reported(),
        kang_reported(),
        close_reported(),
        chung_reported(),
        jan_reported(),
        umeki_reported(),
        xue_reported(),
        hayakawa_reported(),
        zhang_reported(),
    ]
}

impl CellParams {
    /// Re-opens a built cell model for further (derived) parameter
    /// additions. Used when transcribing Table II's starred values on top
    /// of the reported baseline.
    pub fn into_builder(self) -> crate::params::CellParamsBuilder {
        crate::params::CellParamsBuilder::from_params(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_has_ten_nvms_in_order() {
        let names: Vec<_> = all_nvms().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(
            names,
            ["Oh", "Chen", "Kang", "Close", "Chung", "Jan", "Umeki", "Xue", "Hayakawa", "Zhang"]
        );
    }

    #[test]
    fn class_split_is_4_pcram_4_sttram_2_rram() {
        let cells = all_nvms();
        let count = |class| cells.iter().filter(|c| c.class() == class).count();
        assert_eq!(count(MemClass::Pcram), 4);
        assert_eq!(count(MemClass::Sttram), 4);
        assert_eq!(count(MemClass::Rram), 2);
    }

    #[test]
    fn every_canonical_model_validates() {
        for cell in all_nvms() {
            cell.validate()
                .unwrap_or_else(|e| panic!("{} failed: {e}", cell.name()));
        }
    }

    #[test]
    fn every_reported_model_is_incomplete_except_xue() {
        for cell in all_nvms_reported() {
            if cell.name() == "Xue" {
                assert!(cell.validate().is_ok());
            } else {
                assert!(
                    !cell.missing_params().is_empty(),
                    "{} should have gaps",
                    cell.name()
                );
            }
        }
    }

    #[test]
    fn mlc_cells_are_close_and_xue() {
        let mlc: Vec<_> = all_nvms()
            .into_iter()
            .filter(|c| c.cell_levels() == 2)
            .map(|c| c.name().to_owned())
            .collect();
        assert_eq!(mlc, ["Close", "Xue"]);
    }

    #[test]
    fn chung_electrical_values_satisfy_equation_2() {
        // Table II marks Chung's reset energy †: 80 µA × 0.65 V × 10 ns.
        let c = chung();
        let e = c.reset_current().unwrap() * c.reset_pulse().unwrap() * c.read_voltage().unwrap();
        assert!((e.value() - c.reset_energy().unwrap().value()).abs() < 1e-9);
    }

    #[test]
    fn kang_set_current_is_similarity_from_oh() {
        let k = kang();
        assert_eq!(
            k.set_current().unwrap().value(),
            oh().set_current().unwrap().value()
        );
        assert_eq!(
            k.provenance(Param::SetCurrent),
            Some(Provenance::Similarity)
        );
    }

    #[test]
    fn derived_counts_match_table_2_markers() {
        // Count of */† markers per column in Table II.
        let expect = [
            ("Oh", 3),
            ("Chen", 4),
            ("Kang", 3),
            ("Close", 2),
            ("Chung", 4),
            ("Jan", 3),
            ("Umeki", 3),
            ("Xue", 0),
            ("Hayakawa", 9),
            ("Zhang", 1),
        ];
        for (cell, (name, count)) in all_nvms().iter().zip(expect) {
            assert_eq!(cell.name(), name);
            assert_eq!(cell.derived_count(), count, "{name}");
        }
    }

    #[test]
    fn zhang_is_densest_per_bit_among_slc() {
        let z = zhang();
        assert_eq!(z.area_per_bit().unwrap().value(), 4.0);
        assert!(z.process().unwrap().value() < 40.0);
    }

    #[test]
    fn sram_baseline_is_45nm_volatile() {
        let s = sram_baseline();
        assert_eq!(s.class(), MemClass::Sram);
        assert_eq!(s.process().unwrap().value(), 45.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn rram_cells_use_voltage_not_current_writes() {
        for cell in [hayakawa(), zhang()] {
            assert!(cell.set_voltage().is_some());
            assert!(cell.set_current().is_none());
            assert!(cell.reset_voltage().is_some());
            assert!(cell.reset_current().is_none());
        }
    }
}
