//! Technology-node scaling projections for cell models.
//!
//! Table II spans process nodes from 120 nm (Oh, 2005) to 22 nm (Zhang,
//! 2016), and the paper stresses comparing "across class and generations
//! within class". This module projects a cell model to a different node
//! using first-order constant-field scaling, so a designer can ask what a
//! 90 nm demonstration chip would look like manufactured at 22 nm — a
//! natural extension of the paper's heuristics (the projected values are
//! tagged [`Provenance::Interpolated`], since they extend literature
//! trends rather than report measurements).
//!
//! Scaling rules (`s = new / old`, so `s < 1` when shrinking):
//!
//! | quantity | rule | rationale |
//! |---|---|---|
//! | cell size (F²) | unchanged | F² is already normalized to the node |
//! | write/read currents | × s | smaller devices drive less current |
//! | voltages | × s^½ | supply scales slower than feature size |
//! | pulse widths | unchanged | set by material physics, not lithography |
//! | energies | recomputed | `I·V·t` with the scaled parameters |
//! | read power | recomputed | `I·V` (equation (1)) |

use crate::error::CellError;
use crate::params::{CellParams, Param, Provenance};
use crate::units::Nanometers;

/// Projects `cell` to `node`, tagging every adjusted parameter as
/// heuristically derived.
///
/// # Errors
///
/// [`CellError::MissingParam`] if the cell has no process node to scale
/// from; [`CellError::NonPhysical`] if `node` is not positive and finite.
///
/// # Examples
///
/// ```
/// use nvm_llc_cell::{scaling, technologies};
/// use nvm_llc_cell::units::Nanometers;
///
/// // Project Jan's 90 nm STTRAM down to 22 nm.
/// let jan22 = scaling::project_to_node(&technologies::jan(), Nanometers::new(22.0))?;
/// assert_eq!(jan22.process().unwrap().value(), 22.0);
/// // Write current shrinks with the device.
/// assert!(jan22.set_current().unwrap().value() < 38.0);
/// # Ok::<(), nvm_llc_cell::CellError>(())
/// ```
pub fn project_to_node(cell: &CellParams, node: Nanometers) -> Result<CellParams, CellError> {
    if !node.is_physical() || node.value() == 0.0 {
        return Err(CellError::NonPhysical {
            technology: cell.name().to_owned(),
            param: Param::Process,
            value: node.value(),
        });
    }
    let old = cell.process().ok_or(CellError::MissingParam {
        technology: cell.name().to_owned(),
        param: Param::Process,
    })?;
    let s = node.value() / old.value();
    let sv = s.sqrt();

    let mut builder = CellParams::builder(cell.name(), cell.class(), cell.year())
        .access_device(cell.access_device())
        .cell_levels(cell.cell_levels());
    builder = builder.derived(Param::Process, node.value(), Provenance::Interpolated);

    // Structural: F² size carries over unchanged.
    if let Some(a) = cell.cell_size() {
        builder = builder.derived(Param::CellSize, a.value(), provenance_for(s));
    }
    // Currents scale linearly, voltages by sqrt.
    for (param, factor) in [
        (Param::ReadCurrent, s),
        (Param::ResetCurrent, s),
        (Param::SetCurrent, s),
        (Param::ReadVoltage, sv),
        (Param::ResetVoltage, sv),
        (Param::SetVoltage, sv),
    ] {
        if let Some(v) = cell.get(param) {
            builder = builder.derived(param, v * factor, provenance_for(s));
        }
    }
    // Pulse widths: material-limited, unchanged.
    for param in [Param::ResetPulse, Param::SetPulse] {
        if let Some(v) = cell.get(param) {
            builder = builder.derived(param, v, provenance_for(s));
        }
    }
    // Energies and read power follow the electrical relations with the
    // scaled operating point: E ∝ I·V·t → × s^1.5; P ∝ I·V → × s^1.5.
    let se = s * sv;
    for param in [
        Param::ReadEnergy,
        Param::ResetEnergy,
        Param::SetEnergy,
        Param::ReadPower,
    ] {
        if let Some(v) = cell.get(param) {
            builder = builder.derived(param, v * se, provenance_for(s));
        }
    }
    Ok(builder.build())
}

/// Identity projections keep the original provenance semantics; actual
/// scaling is an interpolation of literature trends.
fn provenance_for(s: f64) -> Provenance {
    if (s - 1.0).abs() < 1e-12 {
        Provenance::Reported
    } else {
        Provenance::Interpolated
    }
}

/// Projects every Table II technology to a common node — the
/// apples-to-apples "same-generation" comparison the paper's Section III
/// motivates.
///
/// # Errors
///
/// Propagates the first projection failure.
pub fn normalize_generation(
    cells: &[CellParams],
    node: Nanometers,
) -> Result<Vec<CellParams>, CellError> {
    cells.iter().map(|c| project_to_node(c, node)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technologies;

    #[test]
    fn shrink_reduces_current_and_energy() {
        let kang22 = project_to_node(&technologies::kang(), Nanometers::new(22.0)).unwrap();
        let kang = technologies::kang();
        assert!(kang22.reset_current().unwrap().value() < kang.reset_current().unwrap().value());
        assert!(kang22.read_energy().unwrap().value() < kang.read_energy().unwrap().value());
        // Pulses are material physics: unchanged.
        assert_eq!(
            kang22.set_pulse().unwrap().value(),
            kang.set_pulse().unwrap().value()
        );
        assert_eq!(
            kang22.cell_size().unwrap().value(),
            kang.cell_size().unwrap().value()
        );
    }

    #[test]
    fn projection_is_reversible_to_first_order() {
        let jan = technologies::jan();
        let down = project_to_node(&jan, Nanometers::new(45.0)).unwrap();
        let back = project_to_node(&down, Nanometers::new(90.0)).unwrap();
        for param in Param::ALL {
            if let (Some(a), Some(b)) = (jan.get(param), back.get(param)) {
                assert!((a - b).abs() / a.max(1e-12) < 1e-9, "{param}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn projected_cells_still_validate() {
        for cell in technologies::all_nvms() {
            let name = cell.name().to_owned();
            let p = project_to_node(&cell, Nanometers::new(22.0)).unwrap();
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn identity_projection_preserves_values() {
        let xue = technologies::xue();
        let same = project_to_node(&xue, Nanometers::new(45.0)).unwrap();
        for param in Param::ALL {
            assert_eq!(xue.get(param), same.get(param), "{param}");
        }
    }

    #[test]
    fn normalize_generation_aligns_all_nodes() {
        let normalized =
            normalize_generation(&technologies::all_nvms(), Nanometers::new(45.0)).unwrap();
        assert!(normalized
            .iter()
            .all(|c| c.process().unwrap().value() == 45.0));
        assert_eq!(normalized.len(), 10);
    }

    #[test]
    fn projected_parameters_are_marked_derived() {
        let z = project_to_node(&technologies::zhang(), Nanometers::new(45.0)).unwrap();
        assert_eq!(
            z.provenance(Param::ResetVoltage),
            Some(Provenance::Interpolated)
        );
    }

    #[test]
    fn bad_targets_are_rejected() {
        let z = technologies::zhang();
        assert!(project_to_node(&z, Nanometers::new(0.0)).is_err());
        assert!(project_to_node(&z, Nanometers::new(f64::NAN)).is_err());
    }

    #[test]
    fn scaled_cell_feeds_the_circuit_heuristics() {
        // Energy relation still holds after scaling: E ≈ I·V·t within the
        // projection's own consistency.
        let chung22 = project_to_node(&technologies::chung(), Nanometers::new(27.0)).unwrap();
        let i = chung22.reset_current().unwrap().value();
        let v = chung22.read_voltage().unwrap().value();
        let t = chung22.reset_pulse().unwrap().value();
        let e = chung22.reset_energy().unwrap().value();
        assert!(
            (i * v * t * 1e-3 - e).abs() / e < 1e-9,
            "{} vs {e}",
            i * v * t * 1e-3
        );
    }
}
