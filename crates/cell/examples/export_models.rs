//! Regenerates the `models/` release directory (the paper's public cell
//! model release, reconstructed).
//!
//! ```text
//! cargo run -p nvm-llc-cell --example export_models [dir]
//! ```

use nvm_llc_cell::{cellfile, Catalog};

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "models".to_owned());
    let catalog = Catalog::paper();
    cellfile::write_catalog_dir(&catalog, std::path::Path::new(&dir))?;
    println!("wrote {} .cell files to {dir}/", catalog.len());
    Ok(())
}
