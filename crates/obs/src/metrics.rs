//! Process-wide metrics registry: counters, gauges, and log-linear
//! histograms, rendered as Prometheus text exposition or JSON.
//!
//! The registry is canonical by `(name, labels)`: the first registration
//! creates the metric (leaked, so handles are `&'static` and hot paths
//! never touch the registry lock again); later registrations of the same
//! identity return the same instance. Call sites cache the handle in a
//! `OnceLock` static — the [`crate::span!`] macro does exactly that —
//! so the steady-state cost of an event is a single relaxed atomic op.
//!
//! Naming convention (enforced by debug assertion): Prometheus-legal
//! `[a-zA-Z_][a-zA-Z0-9_]*`, and by project style
//! `nvmllc_<subsystem>_<name>_<unit>` with counters suffixed `_total`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Stripes per counter: enough that a handful of worker threads rarely
/// share one, small enough that a counter stays cheap to sum.
const STRIPES: usize = 8;

/// One cache-line-padded atomic cell, so neighboring stripes never share
/// a line and contended threads do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

/// The calling thread's stripe index, assigned round-robin on first use.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    INDEX.with(|i| *i)
}

/// A monotone counter, sharded across padded stripes by thread.
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Default for Counter {
    fn default() -> Counter {
        Counter {
            stripes: std::array::from_fn(|_| Stripe::default()),
        }
    }
}

impl Counter {
    /// Adds `n` — one relaxed atomic op on the calling thread's stripe.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across every stripe.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins gauge (resident bytes, queue depth, …).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram buckets: log-linear from 1 µs to 50 s — every
/// power of ten subdivided 1/2/5, which keeps relative error under
/// 2.5× per bucket across eight decades for the cost of 24 buckets.
pub fn default_seconds_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(24);
    for exp in -6..=1 {
        for mul in [1.0, 2.0, 5.0] {
            bounds.push(mul * 10f64.powi(exp));
        }
    }
    bounds
}

/// A fixed-bucket histogram: one atomic bucket increment plus one CAS
/// accumulation of the sum per recorded value.
pub struct Histogram {
    /// Upper bounds (`le`), ascending; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the `+Inf` bucket at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one value.
    pub fn record(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| value > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), `+Inf` last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates quantile `q` (0..=1) by linear interpolation inside the
    /// bucket holding the target rank. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_counts(&self.bounds, &self.bucket_counts(), q)
    }
}

/// The quantile estimator shared by live [`Histogram`]s and federated
/// [`crate::federate::ParsedHistogram`]s: find the bucket holding the
/// target rank, linearly interpolate inside it. `counts` is
/// non-cumulative with the `+Inf` bucket last. Returns 0 when empty.
pub(crate) fn quantile_from_counts(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if seen + c >= target {
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let upper = bounds.get(i).copied().unwrap_or(lower);
            if c == 0 || upper <= lower {
                return upper.max(lower);
            }
            let into = (target - seen) as f64 / c as f64;
            return lower + (upper - lower) * into;
        }
        seen += c;
    }
    *bounds.last().unwrap_or(&0.0)
}

/// What a registered metric is, for `# TYPE` lines and JSON rendering.
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: shared help/type, one instance per label set.
struct Family {
    help: String,
    /// `(rendered label pairs, metric)`, insertion-ordered.
    instances: Vec<(Vec<(String, String)>, Metric)>,
}

fn registry() -> &'static Mutex<BTreeMap<String, Family>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Family>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Finds or creates a metric in the registry. `make` runs only for the
/// first registration of `(name, labels)`; its result is leaked so the
/// handle is `'static` and hot paths never revisit the lock.
fn register<T>(
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    make: impl FnOnce() -> T,
    wrap: impl Fn(&'static T) -> Metric,
    unwrap: impl Fn(&Metric) -> Option<&'static T>,
) -> &'static T {
    debug_assert!(valid_name(name), "invalid metric name {name:?}");
    let labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let mut map = registry().lock().expect("metrics registry lock");
    let family = map.entry(name.to_owned()).or_insert_with(|| Family {
        help: help.to_owned(),
        instances: Vec::new(),
    });
    if let Some((_, metric)) = family.instances.iter().find(|(l, _)| *l == labels) {
        return unwrap(metric)
            .unwrap_or_else(|| panic!("metric {name} re-registered with a different type"));
    }
    let leaked: &'static T = Box::leak(Box::new(make()));
    family.instances.push((labels, wrap(leaked)));
    leaked
}

/// Finds or creates the unlabeled counter `name`.
pub fn counter(name: &str, help: &str) -> &'static Counter {
    counter_with(name, help, &[])
}

/// Finds or creates a counter carrying a fixed label set (e.g.
/// `nvmllc_serve_requests_total{class="2xx"}`).
pub fn counter_with(name: &str, help: &str, labels: &[(&str, &str)]) -> &'static Counter {
    register(
        name,
        help,
        labels,
        Counter::default,
        Metric::Counter,
        |m| match m {
            Metric::Counter(c) => Some(*c),
            _ => None,
        },
    )
}

/// Finds or creates the unlabeled gauge `name`.
pub fn gauge(name: &str, help: &str) -> &'static Gauge {
    register(
        name,
        help,
        &[],
        Gauge::default,
        Metric::Gauge,
        |m| match m {
            Metric::Gauge(g) => Some(*g),
            _ => None,
        },
    )
}

/// Finds or creates the histogram `name` with the default log-linear
/// seconds buckets ([`default_seconds_bounds`]).
pub fn histogram(name: &str, help: &str) -> &'static Histogram {
    histogram_with_bounds(name, help, &default_seconds_bounds())
}

/// Finds or creates the histogram `name` with explicit bucket bounds.
pub fn histogram_with_bounds(name: &str, help: &str, bounds: &[f64]) -> &'static Histogram {
    register(
        name,
        help,
        &[],
        || Histogram::new(bounds.to_vec()),
        Metric::Histogram,
        |m| match m {
            Metric::Histogram(h) => Some(*h),
            _ => None,
        },
    )
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Like [`render_labels`] but with one extra pair appended (histogram
/// `le`).
fn render_labels_plus(labels: &[(String, String)], extra_key: &str, extra_val: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((extra_key.to_owned(), extra_val.to_owned()));
    render_labels(&all)
}

/// Renders the whole registry in Prometheus text exposition format 0.0.4:
/// `# HELP` and `# TYPE` per family, one sample line per instance (plus
/// `_bucket`/`_sum`/`_count` for histograms). Bucket bounds are printed
/// with Rust's shortest-round-trip float formatting, so parsing a bound
/// back yields the exact `f64` the histogram buckets by.
pub fn render_prometheus() -> String {
    let map = registry().lock().expect("metrics registry lock");
    let mut out = String::new();
    for (name, family) in map.iter() {
        let kind = match family.instances.first() {
            Some((_, metric)) => metric.type_name(),
            None => continue,
        };
        let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, metric) in &family.instances {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels), g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, count) in counts.iter().enumerate() {
                        cumulative += count;
                        let le = match h.bounds().get(i) {
                            Some(b) => format!("{b}"),
                            None => "+Inf".to_owned(),
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels_plus(labels, "le", &le)
                        );
                    }
                    let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels), h.sum());
                    let _ = writeln!(out, "{name}_count{} {}", render_labels(labels), h.count());
                }
            }
        }
    }
    out
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry as one flat JSON object: counters and gauges as
/// numbers, histograms as `{"count":…,"sum":…,"p50":…,"p99":…}` with
/// bucket-interpolated quantile estimates. Labeled instances key as
/// `name{k=v,…}`.
pub fn render_json() -> String {
    let map = registry().lock().expect("metrics registry lock");
    let mut parts: Vec<String> = Vec::new();
    for (name, family) in map.iter() {
        for (labels, metric) in &family.instances {
            let key = if labels.is_empty() {
                name.clone()
            } else {
                let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{name}{{{}}}", body.join(","))
            };
            let value = match metric {
                Metric::Counter(c) => format!("{}", c.get()),
                Metric::Gauge(g) => format!("{}", g.get()),
                Metric::Histogram(h) => format!(
                    "{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
                    h.count(),
                    h.sum(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                ),
            };
            parts.push(format!("\"{}\":{value}", json_escape(&key)));
        }
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_exactly() {
        let c = counter("nvmllc_test_threads_total", "test");
        let before = c.get();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, 80_000);
    }

    #[test]
    fn registry_is_canonical_by_name_and_labels() {
        let a = counter("nvmllc_test_canonical_total", "test");
        let b = counter("nvmllc_test_canonical_total", "different help ignored");
        assert!(std::ptr::eq(a, b));
        let la = counter_with("nvmllc_test_canonical_total", "test", &[("k", "v")]);
        assert!(!std::ptr::eq(a, la));
        let lb = counter_with("nvmllc_test_canonical_total", "test", &[("k", "v")]);
        assert!(std::ptr::eq(la, lb));
    }

    #[test]
    fn histogram_counts_land_in_the_right_buckets() {
        let h = Histogram::new(vec![1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 100.0] {
            h.record(v);
        }
        // le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=5: {4.9, 5.0}; +Inf: {100}.
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        assert!((h.sum() - 114.9).abs() < 1e-9);
    }

    #[test]
    fn histogram_concurrent_records_sum_exactly() {
        let h = histogram_with_bounds(
            "nvmllc_test_hist_seconds",
            "test",
            &default_seconds_bounds(),
        );
        let before = h.count();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in 0..5_000 {
                        h.record((t * 5_000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(h.count() - before, 20_000);
    }

    #[test]
    fn default_bounds_ascend_and_round_trip_display() {
        let bounds = default_seconds_bounds();
        assert_eq!(bounds.len(), 24);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        for b in bounds {
            let text = format!("{b}");
            assert_eq!(text.parse::<f64>().unwrap(), b, "bound {text} round-trips");
        }
    }

    #[test]
    fn quantiles_interpolate_between_bounds() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for _ in 0..100 {
            h.record(1.5);
        }
        let p50 = h.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "p50 {p50}");
        assert_eq!(Histogram::new(vec![1.0]).quantile(0.99), 0.0, "empty");
    }

    #[test]
    fn prometheus_rendering_is_line_parseable() {
        counter("nvmllc_test_render_total", "a counter").add(3);
        gauge("nvmllc_test_render_bytes", "a gauge").set(42);
        histogram("nvmllc_test_render_seconds", "a histogram").record(0.003);
        counter_with(
            "nvmllc_test_render_labeled_total",
            "labeled",
            &[("class", "2xx")],
        )
        .inc();
        let text = render_prometheus();
        for line in text.lines() {
            let ok = line.starts_with("# HELP ") || line.starts_with("# TYPE ") || {
                let (series, value) = line.rsplit_once(' ').expect("sample has a value");
                let name_ok = {
                    let name = series.split('{').next().unwrap();
                    super::valid_name(name)
                };
                name_ok && (value == "+Inf" || value.parse::<f64>().is_ok())
            };
            assert!(ok, "unparseable line: {line:?}");
        }
        assert!(text.contains("# TYPE nvmllc_test_render_total counter"));
        assert!(text.contains("nvmllc_test_render_labeled_total{class=\"2xx\"} 1"));
        assert!(text.contains("nvmllc_test_render_seconds_bucket{le=\"+Inf\"}"));
    }

    #[test]
    fn prometheus_histogram_bounds_round_trip_through_text() {
        let h = histogram("nvmllc_test_roundtrip_seconds", "round trip");
        h.record(0.0);
        let text = render_prometheus();
        let mut parsed: Vec<f64> = text
            .lines()
            .filter(|l| l.starts_with("nvmllc_test_roundtrip_seconds_bucket{le=\""))
            .filter_map(|l| {
                let le = l.split("le=\"").nth(1)?.split('"').next()?;
                le.parse::<f64>().ok()
            })
            .filter(|b| b.is_finite()) // the +Inf bucket is implicit, not a bound
            .collect();
        parsed.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(parsed, h.bounds(), "every bound survives the text format");
    }

    #[test]
    fn json_rendering_flattens_and_summarizes() {
        counter("nvmllc_test_json_total", "c").add(7);
        histogram("nvmllc_test_json_seconds", "h").record(0.5);
        let json = render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"nvmllc_test_json_total\":"));
        assert!(json.contains("\"count\":"));
        assert!(json.contains("\"p99\":"));
    }
}
