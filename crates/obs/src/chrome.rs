//! chrome://tracing export: an optional ring buffer of completed spans.
//!
//! Recording is off by default and costs one relaxed atomic load per
//! span drop. [`start`] clears the buffer and begins capturing; every
//! span that completes while recording appends one entry (name, thread,
//! start offset, duration). [`export_json`] renders the buffer in the
//! Trace Event Format — an object with a `traceEvents` array of
//! complete (`"ph":"X"`) events — which chrome://tracing and Perfetto
//! load directly.
//!
//! The buffer is bounded ([`CAPACITY`] events); once full, later spans
//! are counted but dropped, and the export notes how many. A full
//! matrix run emits a few thousand spans, far below the bound.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum buffered events; later spans are dropped (and counted).
pub const CAPACITY: usize = 1 << 20;

struct Event {
    name: &'static str,
    tid: u64,
    ts_micros: f64,
    dur_micros: f64,
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicUsize = AtomicUsize::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn events() -> &'static Mutex<Vec<Event>> {
    static EVENTS: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// A small stable id for the calling thread (chrome's `tid` field).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Starts (or restarts) recording: clears the buffer and the dropped
/// count. Span guards created from now on are captured.
pub fn start() {
    epoch(); // pin the time origin before the first event
    let mut events = events().lock().expect("chrome trace lock");
    events.clear();
    DROPPED.store(0, Ordering::Relaxed);
    RECORDING.store(true, Ordering::Relaxed);
}

/// Stops recording; the buffer stays available for [`export_json`].
pub fn stop() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// Whether spans are currently being captured.
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Buffered event count.
pub fn len() -> usize {
    events().lock().expect("chrome trace lock").len()
}

/// Called by [`crate::span::Span`] on drop.
pub(crate) fn record(name: &'static str, start: Instant, dur: Duration) {
    if !RECORDING.load(Ordering::Relaxed) {
        return;
    }
    let ts = start.saturating_duration_since(epoch());
    let mut events = events().lock().expect("chrome trace lock");
    if events.len() >= CAPACITY {
        drop(events);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(Event {
        name,
        tid: thread_id(),
        ts_micros: ts.as_secs_f64() * 1e6,
        dur_micros: dur.as_secs_f64() * 1e6,
    });
}

/// Renders the buffered spans as Trace Event Format JSON. Loadable by
/// chrome://tracing and Perfetto as-is.
pub fn export_json() -> String {
    use std::fmt::Write as _;
    let events = events().lock().expect("chrome trace lock");
    let pid = std::process::id();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":{pid},\
             \"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            ev.name, ev.tid, ev.ts_micros, ev.dur_micros,
        );
    }
    let dropped = DROPPED.load(Ordering::Relaxed);
    if dropped > 0 {
        let _ = write!(
            out,
            "{}{{\"name\":\"obs: {dropped} spans dropped (buffer full)\",\
             \"cat\":\"obs\",\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"s\":\"g\"}}",
            if events.is_empty() { "" } else { "," },
        );
    }
    out.push_str("]}");
    out
}

/// Stops recording and writes [`export_json`] to `path`.
pub fn write_json(path: &std::path::Path) -> std::io::Result<()> {
    stop();
    std::fs::write(path, export_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn recorded_spans_export_as_complete_events() {
        let _guard = crate::test_enabled_lock();
        start();
        let hist = metrics::histogram("nvmllc_test_chrome_seconds", "chrome test");
        {
            let _span = crate::span::Span::enter("chrome_span", || hist);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop();
        let json = export_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"chrome_span\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Balanced braces: the output is at least structurally JSON.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn not_recording_buffers_nothing() {
        let _guard = crate::test_enabled_lock();
        stop();
        let before = len();
        let hist = metrics::histogram("nvmllc_test_chrome_off_seconds", "chrome off");
        {
            let _span = crate::span::Span::enter("invisible", || hist);
        }
        assert_eq!(len(), before);
    }
}
