//! Wall-time spans: a guard records its lifetime into a per-phase
//! histogram on drop, and into the chrome-trace ring buffer when
//! recording is on.
//!
//! Guards carry their own start time and histogram handle — there is no
//! mandatory thread-local span stack — so nesting is unrestricted and
//! dropping guards out of order can never panic or misattribute time;
//! each span simply reports its own wall time. Overlapping spans on one
//! thread render as nested slices in chrome://tracing because complete
//! events (`"ph":"X"`) are reconstructed from timestamps alone.
//!
//! When a [`crate::trace::Collector`] is attached to the thread
//! ([`crate::trace::attach`]), each guard additionally carries a span
//! id linked to its innermost open parent and appends a
//! [`crate::trace::SpanRecord`] to the collector on drop. The trace
//! stack tolerates out-of-order drops (ids are removed by value, not
//! popped), so the guarantee above still holds.

use std::time::Instant;

use crate::metrics::Histogram;

/// An open span; drop it to record. Created by [`crate::span!`] or
/// [`Span::enter`].
#[must_use = "a span measures until it is dropped; binding to _ drops immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    hist: &'static Histogram,
    start: Instant,
    /// Present when a trace collector was attached at open time.
    trace: Option<crate::trace::OpenSpan>,
}

impl Span {
    /// Opens a span named `name` recording into `hist()` on drop.
    /// When span timing is disabled ([`crate::set_enabled`]) the guard
    /// is inert and `hist` is never called.
    pub fn enter(name: &'static str, hist: impl FnOnce() -> &'static Histogram) -> Span {
        if !crate::enabled() {
            return Span { inner: None };
        }
        Span {
            inner: Some(SpanInner {
                name,
                hist: hist(),
                trace: crate::trace::open_span(),
                start: Instant::now(),
            }),
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed = inner.start.elapsed();
        inner.hist.record(elapsed.as_secs_f64());
        crate::chrome::record(inner.name, inner.start, elapsed);
        if let Some(open) = inner.trace {
            crate::trace::close_span(open, inner.name, inner.start, elapsed);
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.inner.as_ref().map(|i| i.name))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn span_records_on_drop() {
        let _guard = crate::test_enabled_lock();
        let hist = metrics::histogram("nvmllc_test_span_seconds", "test span");
        let before = hist.count();
        {
            let _span = Span::enter("test_span", || hist);
        }
        assert_eq!(hist.count() - before, 1);
    }

    #[test]
    fn span_macro_derives_metric_name() {
        let _guard = crate::test_enabled_lock();
        let before = metrics::histogram("nvmllc_macro_span_seconds", "x").count();
        {
            let _span = crate::span!("macro_span");
        }
        let hist = metrics::histogram("nvmllc_macro_span_seconds", "x");
        assert_eq!(hist.count() - before, 1);
    }

    #[test]
    fn out_of_order_guard_drops_never_panic() {
        let _guard = crate::test_enabled_lock();
        let hist = metrics::histogram("nvmllc_test_nesting_seconds", "test nesting");
        let before = hist.count();
        let outer = Span::enter("outer", || hist);
        let inner = Span::enter("inner", || hist);
        let innermost = Span::enter("innermost", || hist);
        // Drop in scrambled order: outer first, then innermost, then inner.
        drop(outer);
        drop(innermost);
        drop(inner);
        assert_eq!(hist.count() - before, 3);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = crate::test_enabled_lock();
        crate::set_enabled(false);
        let span = Span::enter("off", || unreachable!("hist must not be built"));
        assert!(!span.is_recording());
        drop(span);
        crate::set_enabled(true);
    }
}
