//! Metrics federation: parse Prometheus text exposition scrapes, merge
//! same-bounds histograms and sum counters across shards, and re-render
//! one cluster-level view.
//!
//! The parser understands exactly the dialect [`crate::metrics::render_prometheus`]
//! emits — `# HELP`/`# TYPE` per family, one sample per line, histogram
//! families expanded into `_bucket{le=…}` (cumulative) / `_sum` /
//! `_count` series. Because bucket bounds are printed with shortest-
//! round-trip float formatting, a parsed bound is the exact `f64` the
//! source histogram buckets by, which is what makes the "identical
//! bounds" merge precondition meaningful rather than fuzzy.
//!
//! Merging is per family: counters and gauges sum per label set;
//! histograms with identical bounds add bucket-wise (count and sum
//! too). A histogram family whose bounds disagree across scrapes is
//! rejected — [`merge`] drops the family from the merged view and lists
//! it in [`Merged::skipped`] rather than fabricating buckets.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::quantile_from_counts;

/// What a `# TYPE` line declared for a family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// A monotone counter.
    Counter,
    /// A last-write-wins gauge.
    Gauge,
    /// A fixed-bucket histogram.
    Histogram,
    /// No (or unrecognized) `# TYPE` line.
    Untyped,
}

impl FamilyKind {
    fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
            FamilyKind::Untyped => "untyped",
        }
    }
}

/// A histogram reconstructed from `_bucket`/`_sum`/`_count` series.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedHistogram {
    /// Finite bucket upper bounds, ascending (no `+Inf`).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; the `+Inf` bucket is last, so
    /// `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Count of observed values.
    pub count: u64,
}

impl ParsedHistogram {
    /// Estimates quantile `q` with the same bucket-interpolation rule
    /// as [`crate::metrics::Histogram::quantile`], so a federated p99
    /// means the same thing as a local one.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_counts(&self.bounds, &self.buckets, q)
    }

    /// Adds `other` into `self` bucket-wise. Errs (leaving `self`
    /// untouched) unless the bounds are bit-identical.
    pub fn merge(&mut self, other: &ParsedHistogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "mismatched bounds: {} vs {} buckets",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }
}

/// One parsed metric family.
#[derive(Debug, Clone)]
pub struct Family {
    /// The `# HELP` text (empty if absent).
    pub help: String,
    /// The declared type.
    pub kind: FamilyKind,
    /// Counter/gauge samples: rendered label block (`""` or
    /// `{k="v",…}`) → value, insertion-ordered by first appearance.
    pub scalars: Vec<(String, f64)>,
    /// Histogram instances: label block (without `le`) → histogram.
    pub histograms: Vec<(String, ParsedHistogram)>,
}

/// One parsed `/metricsz` body.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Families by name, sorted (BTreeMap) for deterministic renders.
    pub families: BTreeMap<String, Family>,
}

impl Scrape {
    /// The summed value of every label set of scalar family `name`
    /// (`0.0` if absent) — e.g. total requests across classes.
    pub fn scalar_total(&self, name: &str) -> f64 {
        self.families
            .get(name)
            .map(|f| f.scalars.iter().map(|(_, v)| v).sum())
            .unwrap_or(0.0)
    }

    /// The scalar samples `(label block, value)` of family `name`.
    pub fn scalar_samples(&self, name: &str) -> &[(String, f64)] {
        self.families
            .get(name)
            .map(|f| f.scalars.as_slice())
            .unwrap_or(&[])
    }

    /// The unlabeled histogram of family `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&ParsedHistogram> {
        self.families
            .get(name)?
            .histograms
            .iter()
            .find(|(labels, _)| labels.is_empty())
            .map(|(_, h)| h)
    }
}

/// Splits one sample series into `(name, label block)`:
/// `foo{a="b"}` → `("foo", "{a=\"b\"}")`, `foo` → `("foo", "")`.
fn split_series(series: &str) -> (&str, &str) {
    match series.find('{') {
        Some(at) => (&series[..at], &series[at..]),
        None => (series, ""),
    }
}

/// Pulls the `le` value out of a label block and returns the block
/// with the `le` pair removed (label order is preserved otherwise).
fn take_le(labels: &str) -> Option<(String, String)> {
    let inner = labels.strip_prefix('{')?.strip_suffix('}')?;
    let mut le = None;
    let mut rest: Vec<&str> = Vec::new();
    // Our renderer never emits commas or quotes inside label values
    // except escaped quotes, which no metric name/label here uses, so a
    // top-level comma split is exact for this dialect.
    for pair in inner.split(',') {
        match pair.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
            Some(v) => le = Some(v.to_owned()),
            None => rest.push(pair),
        }
    }
    let block = if rest.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", rest.join(","))
    };
    Some((le?, block))
}

/// Intermediate per-instance histogram accumulator.
#[derive(Default)]
struct HistAccum {
    /// `(le bound, cumulative count)` in appearance order; `None` bound
    /// is `+Inf`.
    cumulative: Vec<(Option<f64>, u64)>,
    sum: f64,
    count: u64,
}

impl HistAccum {
    fn finish(self) -> Option<ParsedHistogram> {
        let mut bounds = Vec::new();
        let mut cum = Vec::new();
        let mut inf = None;
        for (bound, c) in self.cumulative {
            match bound {
                Some(b) => {
                    bounds.push(b);
                    cum.push(c);
                }
                None => inf = Some(c),
            }
        }
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        cum.push(inf?);
        let mut buckets = Vec::with_capacity(cum.len());
        let mut prev = 0u64;
        for c in cum {
            buckets.push(c.checked_sub(prev)?);
            prev = c;
        }
        Some(ParsedHistogram {
            bounds,
            buckets,
            sum: self.sum,
            count: self.count,
        })
    }
}

/// Parses one Prometheus text body. Unparseable lines are skipped —
/// a scrape is best-effort telemetry, not a strict document.
pub fn parse(text: &str) -> Scrape {
    let mut meta: BTreeMap<String, (String, FamilyKind)> = BTreeMap::new();
    let mut scalars: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut hists: BTreeMap<String, Vec<(String, HistAccum)>> = BTreeMap::new();
    let hist_base = |name: &str, meta: &BTreeMap<String, (String, FamilyKind)>| -> Option<String> {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if meta
                    .get(base)
                    .is_some_and(|(_, k)| *k == FamilyKind::Histogram)
                {
                    return Some(base.to_owned());
                }
            }
        }
        None
    };

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((name, help)) = rest.split_once(' ') {
                meta.entry(name.to_owned())
                    .or_insert_with(|| (String::new(), FamilyKind::Untyped))
                    .0 = help.to_owned();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                let kind = match kind.trim() {
                    "counter" => FamilyKind::Counter,
                    "gauge" => FamilyKind::Gauge,
                    "histogram" => FamilyKind::Histogram,
                    _ => FamilyKind::Untyped,
                };
                meta.entry(name.to_owned())
                    .or_insert_with(|| (String::new(), FamilyKind::Untyped))
                    .1 = kind;
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = split_series(series);
        if let Some(base) = hist_base(name, &meta) {
            let instances = hists.entry(base).or_default();
            if name.ends_with("_bucket") {
                let Some((le, block)) = take_le(labels) else {
                    continue;
                };
                let bound = if le == "+Inf" {
                    None
                } else {
                    match le.parse::<f64>() {
                        Ok(b) => Some(b),
                        Err(_) => continue,
                    }
                };
                accum(instances, &block)
                    .cumulative
                    .push((bound, value as u64));
            } else if name.ends_with("_sum") {
                accum(instances, labels).sum = value;
            } else {
                accum(instances, labels).count = value as u64;
            }
            continue;
        }
        scalars
            .entry(name.to_owned())
            .or_default()
            .push((labels.to_owned(), value));
    }

    let mut families = BTreeMap::new();
    for (name, (help, kind)) in meta {
        let histograms: Vec<(String, ParsedHistogram)> = hists
            .remove(&name)
            .unwrap_or_default()
            .into_iter()
            .filter_map(|(labels, h)| Some((labels, h.finish()?)))
            .collect();
        let scalars = scalars.remove(&name).unwrap_or_default();
        if scalars.is_empty() && histograms.is_empty() {
            continue;
        }
        families.insert(
            name,
            Family {
                help,
                kind,
                scalars,
                histograms,
            },
        );
    }
    // Samples with no metadata at all still federate, untyped.
    for (name, samples) in scalars {
        families.entry(name).or_insert_with(|| Family {
            help: String::new(),
            kind: FamilyKind::Untyped,
            scalars: samples,
            histograms: Vec::new(),
        });
    }
    Scrape { families }
}

fn accum<'a>(instances: &'a mut Vec<(String, HistAccum)>, labels: &str) -> &'a mut HistAccum {
    if let Some(at) = instances.iter().position(|(l, _)| l == labels) {
        return &mut instances[at].1;
    }
    instances.push((labels.to_owned(), HistAccum::default()));
    &mut instances.last_mut().expect("just pushed").1
}

/// The result of merging shard scrapes.
#[derive(Debug, Clone, Default)]
pub struct Merged {
    /// The merged view, same shape as one scrape.
    pub scrape: Scrape,
    /// Histogram families dropped because bounds disagreed:
    /// `(family name, reason)`.
    pub skipped: Vec<(String, String)>,
}

/// Merges scrapes: scalars sum per `(family, label set)`, histograms
/// add bucket-wise when bounds agree. A histogram family with
/// disagreeing bounds anywhere is dropped and reported in
/// [`Merged::skipped`].
pub fn merge(scrapes: &[Scrape]) -> Merged {
    let mut merged = Merged::default();
    for scrape in scrapes {
        for (name, family) in &scrape.families {
            if merged.skipped.iter().any(|(n, _)| n == name) {
                continue;
            }
            let target = merged
                .scrape
                .families
                .entry(name.clone())
                .or_insert_with(|| Family {
                    help: family.help.clone(),
                    kind: family.kind,
                    scalars: Vec::new(),
                    histograms: Vec::new(),
                });
            for (labels, value) in &family.scalars {
                match target.scalars.iter_mut().find(|(l, _)| l == labels) {
                    Some((_, total)) => *total += value,
                    None => target.scalars.push((labels.clone(), *value)),
                }
            }
            let mut conflict = None;
            for (labels, hist) in &family.histograms {
                match target.histograms.iter_mut().find(|(l, _)| l == labels) {
                    Some((_, total)) => {
                        if let Err(why) = total.merge(hist) {
                            conflict = Some(why);
                            break;
                        }
                    }
                    None => target.histograms.push((labels.clone(), hist.clone())),
                }
            }
            if let Some(why) = conflict {
                merged.scrape.families.remove(name);
                merged.skipped.push((name.clone(), why));
            }
        }
    }
    merged
}

/// Prints `value` the way the source renderer would: integers bare,
/// everything else shortest-round-trip.
fn render_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

impl Merged {
    /// Renders the merged view back to Prometheus text, plus one
    /// comment line per skipped family.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, reason) in &self.skipped {
            let _ = writeln!(out, "# SKIPPED {name} {reason}");
        }
        for (name, family) in &self.scrape.families {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", family.help);
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, value) in &family.scalars {
                let _ = writeln!(out, "{name}{labels} {}", render_value(*value));
            }
            for (labels, hist) in &family.histograms {
                let mut cumulative = 0u64;
                for (i, count) in hist.buckets.iter().enumerate() {
                    cumulative += count;
                    let le = match hist.bounds.get(i) {
                        Some(b) => format!("{b}"),
                        None => "+Inf".to_owned(),
                    };
                    let le_block = splice_label(labels, "le", &le);
                    let _ = writeln!(out, "{name}_bucket{le_block} {cumulative}");
                }
                let _ = writeln!(out, "{name}_sum{labels} {}", hist.sum);
                let _ = writeln!(out, "{name}_count{labels} {}", hist.count);
            }
        }
        out
    }
}

/// Appends `key="value"` to a rendered label block (`""` or `{…}`).
pub fn splice_label(labels: &str, key: &str, value: &str) -> String {
    match labels.strip_prefix('{').and_then(|l| l.strip_suffix('}')) {
        Some(inner) if !inner.is_empty() => format!("{{{inner},{key}=\"{value}\"}}"),
        _ => format!("{{{key}=\"{value}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_text(reqs: u64, hist_values: &[f64]) -> String {
        let mut text = String::from(
            "# HELP nvmllc_serve_requests_total requests\n\
             # TYPE nvmllc_serve_requests_total counter\n",
        );
        let _ = writeln!(text, "nvmllc_serve_requests_total{{class=\"2xx\"}} {reqs}");
        let _ = writeln!(text, "nvmllc_serve_requests_total{{class=\"5xx\"}} 1");
        text.push_str(
            "# HELP nvmllc_store_resident_bytes bytes\n\
             # TYPE nvmllc_store_resident_bytes gauge\n\
             nvmllc_store_resident_bytes 100\n\
             # HELP nvmllc_serve_request_seconds latency\n\
             # TYPE nvmllc_serve_request_seconds histogram\n",
        );
        for b in [0.001, 0.01, 0.1] {
            let cumulative: usize = hist_values.iter().filter(|&&v| v <= b).count();
            let _ = writeln!(
                text,
                "nvmllc_serve_request_seconds_bucket{{le=\"{b}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            text,
            "nvmllc_serve_request_seconds_bucket{{le=\"+Inf\"}} {}",
            hist_values.len()
        );
        let sum: f64 = hist_values.iter().sum();
        let _ = writeln!(text, "nvmllc_serve_request_seconds_sum {sum}");
        let _ = writeln!(
            text,
            "nvmllc_serve_request_seconds_count {}",
            hist_values.len()
        );
        text
    }

    #[test]
    fn parse_reconstructs_scalars_and_histograms() {
        let scrape = parse(&sample_text(41, &[0.0005, 0.005, 0.05, 5.0]));
        assert_eq!(scrape.scalar_total("nvmllc_serve_requests_total"), 42.0);
        assert_eq!(scrape.scalar_total("nvmllc_store_resident_bytes"), 100.0);
        let hist = scrape.histogram("nvmllc_serve_request_seconds").unwrap();
        assert_eq!(hist.bounds, vec![0.001, 0.01, 0.1]);
        assert_eq!(hist.buckets, vec![1, 1, 1, 1], "de-cumulated buckets");
        assert_eq!(hist.count, 4);
        assert!((hist.sum - 5.0555).abs() < 1e-9);
        assert_eq!(scrape.scalar_total("nvmllc_absent_total"), 0.0);
    }

    #[test]
    fn parse_skips_garbage_lines() {
        let scrape = parse("not a metric\nnvmllc_ok_total 3\n###\nbroken{ 5\nx y z\n");
        assert_eq!(scrape.scalar_total("nvmllc_ok_total"), 3.0);
    }

    #[test]
    fn registry_render_round_trips_through_the_parser() {
        crate::metrics::counter("nvmllc_test_fed_roundtrip_total", "t").add(9);
        crate::metrics::histogram("nvmllc_test_fed_roundtrip_seconds", "t").record(0.0042);
        let scrape = parse(&crate::metrics::render_prometheus());
        assert_eq!(
            scrape.scalar_total("nvmllc_test_fed_roundtrip_total"),
            9.0,
            "counter survives"
        );
        let hist = scrape
            .histogram("nvmllc_test_fed_roundtrip_seconds")
            .unwrap();
        assert_eq!(
            hist.bounds,
            crate::metrics::default_seconds_bounds(),
            "bounds round-trip to the exact f64s"
        );
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn merge_sums_counters_and_adds_buckets() {
        let a = parse(&sample_text(10, &[0.0005, 0.05]));
        let b = parse(&sample_text(20, &[0.005, 5.0]));
        let merged = merge(&[a.clone(), b.clone()]);
        assert!(merged.skipped.is_empty());
        let view = &merged.scrape;
        assert_eq!(view.scalar_total("nvmllc_serve_requests_total"), 32.0);
        assert_eq!(view.scalar_total("nvmllc_store_resident_bytes"), 200.0);
        let hist = view.histogram("nvmllc_serve_request_seconds").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 4);
        // Per-class label sets sum independently.
        let classes = view.scalar_samples("nvmllc_serve_requests_total");
        assert!(
            classes.contains(&("{class=\"2xx\"}".to_owned(), 30.0)),
            "{classes:?}"
        );
        assert!(
            classes.contains(&("{class=\"5xx\"}".to_owned(), 2.0)),
            "{classes:?}"
        );
    }

    #[test]
    fn merged_render_parses_back_to_the_same_totals() {
        let a = parse(&sample_text(7, &[0.0005]));
        let b = parse(&sample_text(8, &[0.05, 0.05]));
        let merged = merge(&[a, b]);
        let reparsed = parse(&merged.render());
        assert_eq!(reparsed.scalar_total("nvmllc_serve_requests_total"), 17.0);
        let hist = reparsed.histogram("nvmllc_serve_request_seconds").unwrap();
        assert_eq!(hist.count, 3);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn mismatched_bounds_reject_cleanly() {
        let mut a = ParsedHistogram {
            bounds: vec![1.0, 2.0],
            buckets: vec![1, 1, 0],
            sum: 3.0,
            count: 2,
        };
        let b = ParsedHistogram {
            bounds: vec![1.0, 3.0],
            buckets: vec![1, 1, 0],
            sum: 3.0,
            count: 2,
        };
        let before = a.clone();
        assert!(a.merge(&b).is_err());
        assert_eq!(a, before, "a failed merge must not half-apply");
        let ok = a.merge(&before.clone());
        assert!(ok.is_ok());
        assert_eq!(a.count, 4);
    }

    #[test]
    fn mismatched_bounds_skip_the_family_in_a_merged_view() {
        let a = parse(
            "# TYPE nvmllc_x_seconds histogram\n\
             nvmllc_x_seconds_bucket{le=\"1\"} 1\n\
             nvmllc_x_seconds_bucket{le=\"+Inf\"} 1\n\
             nvmllc_x_seconds_sum 0.5\n\
             nvmllc_x_seconds_count 1\n\
             # TYPE nvmllc_y_total counter\n\
             nvmllc_y_total 1\n",
        );
        let b = parse(
            "# TYPE nvmllc_x_seconds histogram\n\
             nvmllc_x_seconds_bucket{le=\"2\"} 1\n\
             nvmllc_x_seconds_bucket{le=\"+Inf\"} 1\n\
             nvmllc_x_seconds_sum 1.5\n\
             nvmllc_x_seconds_count 1\n\
             # TYPE nvmllc_y_total counter\n\
             nvmllc_y_total 2\n",
        );
        let merged = merge(&[a, b]);
        assert_eq!(merged.skipped.len(), 1);
        assert_eq!(merged.skipped[0].0, "nvmllc_x_seconds");
        assert!(!merged.scrape.families.contains_key("nvmllc_x_seconds"));
        assert_eq!(merged.scrape.scalar_total("nvmllc_y_total"), 3.0);
        assert!(merged.render().contains("# SKIPPED nvmllc_x_seconds"));
    }

    #[test]
    fn splice_label_handles_empty_and_populated_blocks() {
        assert_eq!(splice_label("", "shard", "2"), "{shard=\"2\"}");
        assert_eq!(
            splice_label("{class=\"2xx\"}", "shard", "0"),
            "{class=\"2xx\",shard=\"0\"}"
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Builds a Prometheus text body with one histogram over the
        /// registry's default bounds from raw samples.
        fn hist_text(values: &[f64]) -> String {
            let bounds = crate::metrics::default_seconds_bounds();
            let mut text = String::from("# TYPE nvmllc_p_seconds histogram\n");
            let mut cum = 0usize;
            for (i, b) in bounds.iter().enumerate() {
                let lower = if i == 0 { f64::MIN } else { bounds[i - 1] };
                cum += values.iter().filter(|&&v| v > lower && v <= *b).count();
                let _ = writeln!(text, "nvmllc_p_seconds_bucket{{le=\"{b}\"}} {cum}");
            }
            let _ = writeln!(
                text,
                "nvmllc_p_seconds_bucket{{le=\"+Inf\"}} {}",
                values.len()
            );
            let sum: f64 = values.iter().sum();
            let _ = writeln!(text, "nvmllc_p_seconds_sum {sum}");
            let _ = writeln!(text, "nvmllc_p_seconds_count {}", values.len());
            text
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Merging K shard histograms with identical bounds
            /// preserves total count and sum, and the merged
            /// quantile(q) lies within one bucket of the exact
            /// pooled-sample quantile.
            #[test]
            fn merging_preserves_mass_and_quantiles(
                shards in proptest::collection::vec(
                    proptest::collection::vec(0.000_001f64..2.0, 1..60),
                    2..5,
                ),
                q in 0.05f64..0.999,
            ) {
                let scrapes: Vec<Scrape> =
                    shards.iter().map(|vs| parse(&hist_text(vs))).collect();
                let merged = merge(&scrapes);
                prop_assert!(merged.skipped.is_empty());
                let hist = merged.scrape.histogram("nvmllc_p_seconds").unwrap();

                let mut pooled: Vec<f64> = shards.iter().flatten().copied().collect();
                pooled.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let total: u64 = shards.iter().map(|v| v.len() as u64).sum();
                prop_assert_eq!(hist.count, total);
                prop_assert!(
                    (hist.sum - pooled.iter().sum::<f64>()).abs() < 1e-6,
                    "sum preserved"
                );
                prop_assert_eq!(hist.buckets.iter().sum::<u64>(), total);

                // The exact pooled quantile at the same rank rule.
                let rank = ((q * total as f64).ceil().max(1.0) as usize).min(pooled.len());
                let exact = pooled[rank - 1];
                // "Within one bucket": the merged estimate's bucket is
                // the exact value's bucket or an adjacent one.
                let bucket_of = |v: f64| hist.bounds.partition_point(|&b| v > b);
                let est = hist.quantile(q);
                let diff = bucket_of(est).abs_diff(bucket_of(exact));
                prop_assert!(
                    diff <= 1,
                    "estimate {est} (bucket {}) vs exact {exact} (bucket {})",
                    bucket_of(est),
                    bucket_of(exact)
                );
            }
        }
    }
}
