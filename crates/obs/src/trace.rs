//! Per-request distributed tracing: trace contexts carried across
//! process hops, span-tree collection, and tail-sampled retention.
//!
//! A request that should be traced gets a [`Collector`]: a 128-bit
//! trace id, the hop count, and a bounded buffer of completed
//! [`SpanRecord`]s. While a collector is [attached](attach) to a
//! thread, every [`crate::span!`] guard opened on that thread is
//! assigned a process-unique span id, linked to its innermost open
//! parent, and appended to the collector on drop. Threads spawned to
//! help with a traced request capture a [`Handle`] first and re-attach
//! it, so worker spans stitch into the same tree.
//!
//! Crossing a process boundary uses two headers:
//!
//! * [`TRACE_HEADER`] (`x-nvmllc-trace`) goes **out** with a proxied
//!   request: `<trace_id:032x>-<parent_span:016x>-<hop>`. The receiver
//!   creates its collector from the parsed [`TraceContext`], so its
//!   spans parent under the sender's proxy span.
//! * [`SPANS_HEADER`] (`x-nvmllc-trace-spans`) comes **back** on the
//!   response: the receiver's completed spans, node-labelled and
//!   compactly encoded ([`Collector::encode_spans`]). The origin
//!   ingests them ([`Collector::ingest_remote`]) and ends up with one
//!   span tree spanning every node the request touched.
//!
//! Retention is tail-based: the serving layer keeps a whole tree in a
//! bounded [`TailBuffer`] only when the request turned out slow or
//! errored. [`TailBuffer::render_json`] backs `/tracez`;
//! [`TailBuffer::render_chrome`] renders the retained trees in Trace
//! Event Format with one chrome *process lane per node label*, so a
//! 3-shard request reads as one timeline across distinct lanes.
//!
//! When no collector is attached (the common case — benches, CLI runs,
//! untraced endpoints) the per-span cost is one thread-local check, so
//! the existing span-overhead budget is unaffected. Out-of-order span
//! drops stay harmless: closing a span removes *its own* id from the
//! open stack wherever it sits, and a guard dropped on a foreign
//! thread simply skips the stack fix-up and still records.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Request header carrying the trace context to an upstream hop.
pub const TRACE_HEADER: &str = "x-nvmllc-trace";

/// Response header carrying the hop's completed spans back to the
/// origin.
pub const SPANS_HEADER: &str = "x-nvmllc-trace-spans";

/// Spans retained per collector; later spans are counted and dropped.
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// Spans a hop encodes into [`SPANS_HEADER`] (the most recent ones,
/// which include the outermost handler spans — they complete last).
pub const MAX_HEADER_SPANS: usize = 48;

/// SplitMix64 — a tiny, well-mixed permutation for id generation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A per-process random seed so span/trace ids from different nodes of
/// a cluster never collide in a stitched tree.
fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ (u64::from(std::process::id()) << 32))
    })
}

/// A fresh process-unique, nonzero span id (zero means "no parent").
pub fn new_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let id = splitmix64(process_seed().wrapping_add(NEXT.fetch_add(1, Ordering::Relaxed)));
    if id == 0 {
        1
    } else {
        id
    }
}

fn new_trace_id() -> u128 {
    (u128::from(new_span_id()) << 64) | u128::from(new_span_id())
}

/// The cross-process trace context: what [`TRACE_HEADER`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every hop of one request.
    pub trace_id: u128,
    /// Span id of the sender's span this hop should parent under
    /// (zero: root).
    pub parent_span: u64,
    /// How many process hops the request has taken (0 at the origin).
    pub hop: u32,
}

impl TraceContext {
    /// Renders the header value: `<trace:032x>-<parent:016x>-<hop>`.
    pub fn encode(&self) -> String {
        format!(
            "{:032x}-{:016x}-{}",
            self.trace_id, self.parent_span, self.hop
        )
    }

    /// Parses a header value produced by [`TraceContext::encode`].
    pub fn parse(raw: &str) -> Option<TraceContext> {
        let mut parts = raw.trim().splitn(3, '-');
        let trace_id = u128::from_str_radix(parts.next()?, 16).ok()?;
        let parent_span = u64::from_str_radix(parts.next()?, 16).ok()?;
        let hop = parts.next()?.parse().ok()?;
        Some(TraceContext {
            trace_id,
            parent_span,
            hop,
        })
    }
}

/// One completed span inside a trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (`serve_handle`, `tape_replay_batch`, …).
    pub name: String,
    /// Process-unique span id.
    pub span_id: u64,
    /// Parent span id (zero: a root of this hop).
    pub parent_id: u64,
    /// Start offset from the collector's epoch, microseconds.
    pub start_micros: f64,
    /// Duration, microseconds.
    pub dur_micros: f64,
    /// Node label for remote-ingested spans; `None` until the trace is
    /// sealed with the local node's label.
    pub node: Option<String>,
}

/// Collects the span tree of one in-flight traced request.
#[derive(Debug)]
pub struct Collector {
    trace_id: u128,
    hop: u32,
    root_parent: u64,
    start: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl Collector {
    /// Begins collection: a fresh trace for `inbound == None`, or the
    /// continuation of a remote caller's trace.
    pub fn begin(inbound: Option<TraceContext>) -> Arc<Collector> {
        let (trace_id, root_parent, hop) = match inbound {
            Some(ctx) => (ctx.trace_id, ctx.parent_span, ctx.hop),
            None => (new_trace_id(), 0, 0),
        };
        Arc::new(Collector {
            trace_id,
            hop,
            root_parent,
            start: Instant::now(),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// The 128-bit trace id.
    pub fn trace_id(&self) -> u128 {
        self.trace_id
    }

    /// Process-hop count (0: this node is the origin).
    pub fn hop(&self) -> u32 {
        self.hop
    }

    /// The parent span id local roots attach under.
    pub fn root_parent(&self) -> u64 {
        self.root_parent
    }

    /// Microseconds since collection began.
    pub fn elapsed_micros(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }

    /// Spans dropped past [`MAX_SPANS_PER_TRACE`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn push(&self, record: SpanRecord) {
        let mut spans = self.spans.lock().expect("trace collector lock");
        if spans.len() >= MAX_SPANS_PER_TRACE {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(record);
    }

    /// Called by span guards on drop.
    pub(crate) fn record_span(
        &self,
        name: &str,
        span_id: u64,
        parent_id: u64,
        start: Instant,
        dur: Duration,
    ) {
        let start_micros = start.saturating_duration_since(self.start).as_secs_f64() * 1e6;
        self.push(SpanRecord {
            name: name.to_owned(),
            span_id,
            parent_id,
            start_micros,
            dur_micros: dur.as_secs_f64() * 1e6,
            node: None,
        });
    }

    /// Appends a synthetic span (queue wait, head parse — phases that
    /// are measured rather than guarded). Returns its span id.
    pub fn add_synthetic(
        &self,
        name: &str,
        parent_id: u64,
        start_micros: f64,
        dur_micros: f64,
    ) -> u64 {
        let span_id = new_span_id();
        self.push(SpanRecord {
            name: name.to_owned(),
            span_id,
            parent_id,
            start_micros,
            dur_micros,
            node: None,
        });
        span_id
    }

    /// A clone of the collected spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("trace collector lock").clone()
    }

    /// Seals the tree: labels every still-local span with `node` and
    /// returns the records. Remote-ingested spans keep their labels.
    pub fn seal(&self, node: &str) -> Vec<SpanRecord> {
        let mut spans = self.spans();
        for span in &mut spans {
            if span.node.is_none() {
                span.node = Some(node.to_owned());
            }
        }
        spans
    }

    /// Encodes this hop's local spans for [`SPANS_HEADER`]:
    /// `node=<label>;<name>,<id:016x>,<parent:016x>,<start_us>,<dur_us>;…`
    /// Only the most recent [`MAX_HEADER_SPANS`] are sent — the
    /// outermost handler spans complete last, so they always survive.
    pub fn encode_spans(&self, node: &str) -> String {
        let spans = self.spans.lock().expect("trace collector lock");
        let skip = spans.len().saturating_sub(MAX_HEADER_SPANS);
        let mut out = String::with_capacity(64 + (spans.len() - skip) * 64);
        out.push_str("node=");
        out.extend(header_safe(node));
        for span in spans.iter().skip(skip) {
            // Local spans only: a middle hop never re-exports spans it
            // ingested (there are none in single-hop routing anyway).
            if span.node.is_some() {
                continue;
            }
            let _ = write!(
                out,
                ";{},{:016x},{:016x},{:.1},{:.1}",
                header_safe(&span.name).collect::<String>(),
                span.span_id,
                span.parent_id,
                span.start_micros,
                span.dur_micros,
            );
        }
        out
    }

    /// Ingests a [`SPANS_HEADER`] value from an upstream response,
    /// shifting remote start offsets by `base_micros` (the local
    /// timeline position where the proxy call began) so the stitched
    /// tree renders on one clock. Malformed entries are skipped.
    pub fn ingest_remote(&self, header: &str, base_micros: f64) {
        let mut parts = header.split(';');
        let node = match parts.next().and_then(|p| p.strip_prefix("node=")) {
            Some(label) if !label.is_empty() => label.to_owned(),
            _ => return,
        };
        for entry in parts {
            let fields: Vec<&str> = entry.split(',').collect();
            let [name, id, parent, start, dur] = fields[..] else {
                continue;
            };
            let (Ok(span_id), Ok(parent_id)) =
                (u64::from_str_radix(id, 16), u64::from_str_radix(parent, 16))
            else {
                continue;
            };
            let (Ok(start_micros), Ok(dur_micros)) = (start.parse::<f64>(), dur.parse::<f64>())
            else {
                continue;
            };
            self.push(SpanRecord {
                name: name.to_owned(),
                span_id,
                parent_id,
                start_micros: base_micros + start_micros,
                dur_micros,
                node: Some(node.clone()),
            });
        }
    }
}

/// Characters allowed through header encoding; everything else maps to
/// `_` so structural separators stay unambiguous.
fn header_safe(raw: &str) -> impl Iterator<Item = char> + '_ {
    raw.chars().map(|c| {
        if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '@' | '/') {
            c
        } else {
            '_'
        }
    })
}

struct ThreadTrace {
    collector: Arc<Collector>,
    /// Parent for spans opened while the open-span stack is empty.
    base_parent: u64,
    /// Ids of spans currently open on this thread, innermost last.
    stack: Vec<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ThreadTrace>> = const { RefCell::new(None) };
}

/// Restores the thread's previous trace attachment on drop.
#[must_use = "detaches on drop; binding to _ detaches immediately"]
pub struct AttachGuard {
    prev: Option<ThreadTrace>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        ACTIVE.with(|cell| *cell.borrow_mut() = self.prev.take());
    }
}

/// Attaches `collector` to the current thread: spans opened until the
/// guard drops are recorded into it, parented under `base_parent` when
/// no local span is open.
pub fn attach(collector: &Arc<Collector>, base_parent: u64) -> AttachGuard {
    let prev = ACTIVE.with(|cell| {
        cell.borrow_mut().replace(ThreadTrace {
            collector: Arc::clone(collector),
            base_parent,
            stack: Vec::new(),
        })
    });
    AttachGuard { prev }
}

/// A sendable snapshot of the thread's trace attachment, for handing
/// to worker threads: the collector plus the innermost open span at
/// capture time (the workers' spans parent under it).
#[derive(Clone)]
pub struct Handle {
    collector: Arc<Collector>,
    parent: u64,
}

impl Handle {
    /// Attaches this handle's collector to the current thread.
    pub fn attach(&self) -> AttachGuard {
        attach(&self.collector, self.parent)
    }
}

/// The current thread's trace attachment, if any.
pub fn handle() -> Option<Handle> {
    ACTIVE.with(|cell| {
        cell.borrow().as_ref().map(|t| Handle {
            collector: Arc::clone(&t.collector),
            parent: t.stack.last().copied().unwrap_or(t.base_parent),
        })
    })
}

/// The collector currently attached to this thread, if any.
pub fn current() -> Option<Arc<Collector>> {
    ACTIVE.with(|cell| cell.borrow().as_ref().map(|t| Arc::clone(&t.collector)))
}

/// The context an outbound proxied request should carry: same trace,
/// parented under the innermost open span, hop count bumped.
pub fn outbound_context() -> Option<TraceContext> {
    ACTIVE.with(|cell| {
        cell.borrow().as_ref().map(|t| TraceContext {
            trace_id: t.collector.trace_id,
            parent_span: t.stack.last().copied().unwrap_or(t.base_parent),
            hop: t.collector.hop + 1,
        })
    })
}

/// An open traced span: issued by [`open_span`] when a collector is
/// attached, consumed by the span guard's drop.
pub(crate) struct OpenSpan {
    collector: Arc<Collector>,
    span_id: u64,
    parent_id: u64,
}

/// Assigns an id to a span opening on this thread and pushes it onto
/// the open stack. `None` when no collector is attached — the span
/// guard then carries no trace state at all.
pub(crate) fn open_span() -> Option<OpenSpan> {
    ACTIVE.with(|cell| {
        let mut active = cell.borrow_mut();
        let t = active.as_mut()?;
        let parent_id = t.stack.last().copied().unwrap_or(t.base_parent);
        let span_id = new_span_id();
        t.stack.push(span_id);
        Some(OpenSpan {
            collector: Arc::clone(&t.collector),
            span_id,
            parent_id,
        })
    })
}

/// Completes a traced span: removes its id from the open stack (by
/// value, so out-of-order drops stay harmless; a guard dropped on a
/// foreign thread skips the fix-up) and appends the record.
pub(crate) fn close_span(open: OpenSpan, name: &str, start: Instant, dur: Duration) {
    ACTIVE.with(|cell| {
        if let Some(t) = cell.borrow_mut().as_mut() {
            if Arc::ptr_eq(&t.collector, &open.collector) {
                if let Some(at) = t.stack.iter().rposition(|&id| id == open.span_id) {
                    t.stack.remove(at);
                }
            }
        }
    });
    open.collector
        .record_span(name, open.span_id, open.parent_id, start, dur);
}

/// One trace kept by tail sampling.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The 128-bit trace id.
    pub trace_id: u128,
    /// The request target that produced it.
    pub target: String,
    /// Response status.
    pub status: u16,
    /// Why it was kept: `"slow"` or `"error"`.
    pub reason: &'static str,
    /// End-to-end handler time, microseconds.
    pub total_micros: f64,
    /// The origin node's label.
    pub node: String,
    /// The sealed span tree (local + ingested remote spans).
    pub spans: Vec<SpanRecord>,
}

/// A bounded ring of tail-sampled traces; the oldest is evicted first.
#[derive(Debug)]
pub struct TailBuffer {
    capacity: usize,
    inner: Mutex<VecDeque<RetainedTrace>>,
}

impl TailBuffer {
    /// An empty buffer holding at most `capacity` traces.
    pub fn new(capacity: usize) -> TailBuffer {
        TailBuffer {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Retains one trace, evicting the oldest past capacity.
    pub fn push(&self, trace: RetainedTrace) {
        let mut inner = self.inner.lock().expect("tail buffer lock");
        if inner.len() >= self.capacity {
            inner.pop_front();
        }
        inner.push_back(trace);
    }

    /// Retained trace count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("tail buffer lock").len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A clone of the retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<RetainedTrace> {
        self.inner
            .lock()
            .expect("tail buffer lock")
            .iter()
            .cloned()
            .collect()
    }

    /// The `/tracez` JSON body: every retained trace with its span
    /// tree. Span and parent ids render as 16-hex-digit strings, trace
    /// ids as 32.
    pub fn render_json(&self) -> String {
        let traces = self.snapshot();
        let mut out = String::with_capacity(128 + traces.len() * 512);
        let _ = write!(out, "{{\"captured\":{},\"traces\":[", traces.len());
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"trace_id\":\"{:032x}\",\"target\":\"{}\",\"status\":{},\
                 \"reason\":\"{}\",\"total_us\":{:.1},\"node\":\"{}\",\"spans\":[",
                trace.trace_id,
                json_safe(&trace.target),
                trace.status,
                trace.reason,
                trace.total_micros,
                json_safe(&trace.node),
            );
            for (j, span) in trace.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"id\":\"{:016x}\",\"parent\":\"{:016x}\",\
                     \"node\":\"{}\",\"start_us\":{:.1},\"dur_us\":{:.1}}}",
                    json_safe(&span.name),
                    span.span_id,
                    span.parent_id,
                    json_safe(span.node.as_deref().unwrap_or("")),
                    span.start_micros,
                    span.dur_micros,
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The retained traces in chrome Trace Event Format, one *process
    /// lane per node label*: `process_name` metadata events name the
    /// lanes, every span renders as a complete (`"ph":"X"`) event in
    /// its node's lane, and each trace gets its own `tid` so trees
    /// stack instead of interleaving.
    pub fn render_chrome(&self) -> String {
        let traces = self.snapshot();
        // Stable lane assignment: first-seen order across all traces.
        let mut lanes: Vec<String> = Vec::new();
        let lane_of = |node: &str, lanes: &mut Vec<String>| -> usize {
            match lanes.iter().position(|l| l == node) {
                Some(at) => at + 1,
                None => {
                    lanes.push(node.to_owned());
                    lanes.len()
                }
            }
        };
        let mut events = String::new();
        for (ti, trace) in traces.iter().enumerate() {
            for span in &trace.spans {
                let node = span.node.as_deref().unwrap_or(&trace.node);
                let pid = lane_of(node, &mut lanes);
                if !events.is_empty() {
                    events.push(',');
                }
                let _ = write!(
                    events,
                    "{{\"name\":\"{}\",\"cat\":\"trace\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{},\"ts\":{:.1},\"dur\":{:.1},\"args\":{{\
                     \"trace_id\":\"{:032x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}}}",
                    json_safe(&span.name),
                    ti + 1,
                    span.start_micros,
                    span.dur_micros,
                    trace.trace_id,
                    span.span_id,
                    span.parent_id,
                );
            }
        }
        let mut out = String::with_capacity(events.len() + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, lane) in lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                json_safe(lane),
            );
        }
        if !lanes.is_empty() && !events.is_empty() {
            out.push(',');
        }
        out.push_str(&events);
        out.push_str("]}");
        out
    }
}

fn json_safe(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_header_round_trips() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_0123_4567_89ab_cdef_5555_aaaa,
            parent_span: 0x1234_5678_9abc_def0,
            hop: 2,
        };
        let encoded = ctx.encode();
        assert_eq!(TraceContext::parse(&encoded), Some(ctx));
        assert_eq!(TraceContext::parse("garbage"), None);
        assert_eq!(TraceContext::parse(""), None);
        assert_eq!(TraceContext::parse("zz-00-1"), None);
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = new_span_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate span id");
        }
    }

    #[test]
    fn attached_spans_link_parents_through_nesting() {
        let _guard = crate::test_enabled_lock();
        let collector = Collector::begin(None);
        {
            let _attach = attach(&collector, 7);
            let outer = crate::span!("trace_outer");
            let inner = crate::span!("trace_inner");
            drop(inner);
            drop(outer);
        }
        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "trace_inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "trace_outer").unwrap();
        assert_eq!(inner.parent_id, outer.span_id, "inner parents under outer");
        assert_eq!(outer.parent_id, 7, "outer parents under the base parent");
    }

    #[test]
    fn out_of_order_drops_still_record_and_never_panic() {
        let _guard = crate::test_enabled_lock();
        let collector = Collector::begin(None);
        let _attach = attach(&collector, 0);
        let a = crate::span!("ooo_a");
        let b = crate::span!("ooo_b");
        let c = crate::span!("ooo_c");
        drop(a);
        drop(c);
        drop(b);
        assert_eq!(collector.spans().len(), 3);
    }

    #[test]
    fn detached_threads_record_nothing() {
        let _guard = crate::test_enabled_lock();
        let collector = Collector::begin(None);
        {
            let _span = crate::span!("untraced");
        }
        assert!(collector.spans().is_empty());
    }

    #[test]
    fn handles_carry_the_trace_to_worker_threads() {
        let _guard = crate::test_enabled_lock();
        let collector = Collector::begin(None);
        let _attach = attach(&collector, 0);
        let outer = crate::span!("spawn_site");
        let handle = handle().expect("attached");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _attach = handle.attach();
                let _span = crate::span!("worker_span");
            });
        });
        drop(outer);
        let spans = collector.spans();
        let worker = spans.iter().find(|s| s.name == "worker_span").unwrap();
        let site = spans.iter().find(|s| s.name == "spawn_site").unwrap();
        assert_eq!(
            worker.parent_id, site.span_id,
            "worker spans parent under the span open at capture time"
        );
    }

    #[test]
    fn encode_and_ingest_stitch_across_processes() {
        let _guard = crate::test_enabled_lock();
        // "Remote" side: a continuation collector records two spans.
        let remote = Collector::begin(Some(TraceContext {
            trace_id: 42,
            parent_span: 99,
            hop: 1,
        }));
        remote.record_span(
            "remote_handle",
            11,
            99,
            Instant::now(),
            Duration::from_micros(500),
        );
        remote.record_span(
            "remote_eval",
            12,
            11,
            Instant::now(),
            Duration::from_micros(400),
        );
        let header = remote.encode_spans("shard-2");
        assert!(header.starts_with("node=shard-2;"), "{header}");

        // Origin side ingests at a 1000 µs timeline offset.
        let origin = Collector::begin(None);
        origin.ingest_remote(&header, 1000.0);
        let spans = origin.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.node.as_deref() == Some("shard-2")));
        let handle = spans.iter().find(|s| s.name == "remote_handle").unwrap();
        assert_eq!(handle.span_id, 11);
        assert_eq!(
            handle.parent_id, 99,
            "remote root parents under the proxy span"
        );
        assert!(handle.start_micros >= 1000.0, "offsets shift by the base");
        // Garbage is skipped wholesale or per-entry, never panics.
        origin.ingest_remote("not-a-header", 0.0);
        origin.ingest_remote("node=x;bad,entry", 0.0);
        assert_eq!(origin.spans().len(), 2);
    }

    #[test]
    fn collector_bounds_span_count() {
        let collector = Collector::begin(None);
        for i in 0..(MAX_SPANS_PER_TRACE + 10) {
            collector.add_synthetic("flood", 0, i as f64, 1.0);
        }
        assert_eq!(collector.spans().len(), MAX_SPANS_PER_TRACE);
        assert_eq!(collector.dropped(), 10);
    }

    #[test]
    fn header_encoding_caps_and_keeps_the_latest_spans() {
        let collector = Collector::begin(None);
        for i in 0..(MAX_HEADER_SPANS + 20) {
            collector.add_synthetic(&format!("s{i}"), 0, i as f64, 1.0);
        }
        let header = collector.encode_spans("n");
        let entries = header.split(';').count() - 1;
        assert_eq!(entries, MAX_HEADER_SPANS);
        assert!(
            header.contains(&format!("s{}", MAX_HEADER_SPANS + 19)),
            "the last span survives"
        );
        assert!(!header.contains(";s0,"), "the earliest spans are shed");
    }

    #[test]
    fn tail_buffer_rotates_and_renders() {
        let buffer = TailBuffer::new(2);
        for i in 0..3u16 {
            buffer.push(RetainedTrace {
                trace_id: u128::from(i),
                target: format!("/row?i={i}"),
                status: 200,
                reason: "slow",
                total_micros: 1000.0 * f64::from(i + 1),
                node: "node".into(),
                spans: vec![SpanRecord {
                    name: "serve_handle".into(),
                    span_id: 1,
                    parent_id: 0,
                    start_micros: 0.0,
                    dur_micros: 900.0,
                    node: None,
                }],
            });
        }
        assert_eq!(buffer.len(), 2, "capacity evicts the oldest");
        let json = buffer.render_json();
        assert!(json.starts_with("{\"captured\":2,\"traces\":["), "{json}");
        assert!(!json.contains("/row?i=0"), "oldest evicted");
        assert!(json.contains("/row?i=2"), "newest kept");
        assert!(json.contains("\"reason\":\"slow\""), "{json}");
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count(), "balanced JSON");
    }

    #[test]
    fn chrome_rendering_gives_each_node_its_own_lane() {
        let buffer = TailBuffer::new(4);
        buffer.push(RetainedTrace {
            trace_id: 7,
            target: "/row?workload=x".into(),
            status: 200,
            reason: "slow",
            total_micros: 2000.0,
            node: "router".into(),
            spans: vec![
                SpanRecord {
                    name: "serve_handle".into(),
                    span_id: 1,
                    parent_id: 0,
                    start_micros: 0.0,
                    dur_micros: 2000.0,
                    node: Some("router".into()),
                },
                SpanRecord {
                    name: "serve_handle".into(),
                    span_id: 2,
                    parent_id: 1,
                    start_micros: 100.0,
                    dur_micros: 1800.0,
                    node: Some("shard-1".into()),
                },
            ],
        });
        let chrome = buffer.render_chrome();
        assert!(chrome.contains("\"name\":\"process_name\""), "{chrome}");
        assert!(
            chrome.contains("\"args\":{\"name\":\"router\"}"),
            "{chrome}"
        );
        assert!(
            chrome.contains("\"args\":{\"name\":\"shard-1\"}"),
            "{chrome}"
        );
        assert!(chrome.contains("\"pid\":1"), "{chrome}");
        assert!(chrome.contains("\"pid\":2"), "two distinct lanes: {chrome}");
        let opens = chrome.matches('{').count();
        assert_eq!(opens, chrome.matches('}').count(), "balanced JSON");
    }
}
