//! # nvm-llc-obs — workspace-wide instrumentation
//!
//! A dependency-free observability layer shared by every crate in the
//! workspace. Three pillars, each cheap enough for hot paths:
//!
//! * [`metrics`] — a process-wide registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and log-linear-bucket [`metrics::Histogram`]s.
//!   Every event costs one relaxed atomic op; counters are sharded across
//!   cache-line-padded stripes so contended threads do not bounce a
//!   single line. The whole registry renders to Prometheus text
//!   exposition ([`metrics::render_prometheus`]) and to a JSON object
//!   ([`metrics::render_json`]) for `/statsz`-style endpoints.
//! * [`span`] — lightweight wall-time spans: [`span!`]`("tape_replay")`
//!   returns a guard whose drop records the elapsed seconds into the
//!   `nvmllc_tape_replay_seconds` histogram and, when chrome tracing is
//!   recording ([`chrome`]), appends a complete event to the trace ring
//!   buffer. Guards are independent — dropping them out of order is
//!   harmless by construction.
//! * [`log`] — structured JSON logging to stderr: one line per event
//!   with level, RFC 3339 timestamp, target, message, and typed fields.
//!   The `NVM_LLC_LOG` environment variable (`off`/`error`/`info`/
//!   `debug`) controls verbosity; the default is `off`, so instrumented
//!   binaries stay byte-for-byte quiet unless asked.
//!
//! Phase 2 adds two cluster-facing pillars on the same foundations:
//!
//! * [`trace`] — per-request distributed tracing. A request that should
//!   be traced attaches a [`trace::Collector`] to its thread; every
//!   [`span!`] guard opened while attached is linked into a span tree,
//!   contexts cross process hops via the `x-nvmllc-trace` header, and
//!   tail sampling retains only slow/error trees in a bounded
//!   [`trace::TailBuffer`]. Untraced spans (no collector attached) pay
//!   one thread-local check.
//! * [`federate`] — metrics federation: parse peer `/metricsz` scrapes,
//!   sum counters and merge same-bounds histograms, and re-render one
//!   cluster-level Prometheus view for `/clusterz`.
//!
//! Metric names follow `nvmllc_<subsystem>_<name>_<unit>` (see
//! DESIGN.md §"Observability"). The registry is canonical by name:
//! registering the same name twice returns the same instance, which lets
//! subsystems pre-register their inventory at service start so a scrape
//! shows zeros instead of missing families.
//!
//! [`set_enabled`] gates span *timing* (not counters) process-wide; the
//! overhead benchmark flips it to measure the instrumented-vs-bare delta
//! of the replay path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod federate;
pub mod log;
pub mod metrics;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables span timing process-wide (default on). Metric
/// counters maintained by callers keep counting either way; only the
/// `Instant::now` pair and histogram record of [`span!`] guards are
/// skipped. Exists so benches can measure instrumentation overhead.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span timing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a wall-time span: `let _span = obs::span!("tape_replay");`
///
/// The literal name is interpolated into the metric
/// `nvmllc_<name>_seconds`, so span names carry their subsystem prefix
/// (`tape_replay`, `serve_request`, …). The guard records on drop;
/// binding it to `_` drops immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HIST: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::span::Span::enter($name, || {
            *HIST.get_or_init(|| {
                $crate::metrics::histogram(
                    concat!("nvmllc_", $name, "_seconds"),
                    concat!("Wall time of the `", $name, "` span."),
                )
            })
        })
    }};
}

/// Serializes tests that read or toggle the process-wide enabled flag
/// (tests in one binary run concurrently).
#[cfg(test)]
pub(crate) fn test_enabled_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_toggles() {
        let _guard = super::test_enabled_lock();
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
        super::set_enabled(true);
        assert!(super::enabled());
    }
}
