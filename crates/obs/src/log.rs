//! Structured JSON logging to stderr.
//!
//! One JSON object per line: `level`, RFC 3339 UTC `ts`, `target`
//! (subsystem), `msg`, plus typed key/value fields. Verbosity is
//! controlled by the `NVM_LLC_LOG` environment variable
//! (`off`/`error`/`info`/`debug`); the default is [`Level::Off`], so
//! instrumented binaries emit nothing unless asked. Long-running entry
//! points (the daemon, `--stats` dumps) raise the *default* with
//! [`set_default_level`] — an explicit `NVM_LLC_LOG` always wins.
//!
//! An invalid `NVM_LLC_LOG` value warns once on stderr and falls back
//! to the default, matching the workspace convention for
//! `NVM_LLC_THREADS` and `NVM_LLC_TAPE_CACHE_MB`.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Environment variable controlling log verbosity.
pub const LOG_ENV: &str = "NVM_LLC_LOG";

/// Log verbosity, least to most chatty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted (the default).
    Off = 0,
    /// Unexpected failures only.
    Error = 1,
    /// Lifecycle events: startup, shutdown, summary stats.
    Info = 2,
    /// Per-request / per-operation detail.
    Debug = 3,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Off,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `NVM_LLC_LOG` value. Accepts the four level names,
/// case-insensitively; `None` for anything else.
pub fn parse_level(raw: &str) -> Option<Level> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(Level::Off),
        "error" => Some(Level::Error),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    }
}

/// `u8::MAX` while unresolved; a `Level` discriminant once resolved.
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);
/// Default applied when `NVM_LLC_LOG` is unset or invalid.
static DEFAULT: AtomicU8 = AtomicU8::new(Level::Off as u8);

fn resolve() -> Level {
    let current = LEVEL.load(Ordering::Relaxed);
    if current != u8::MAX {
        return Level::from_u8(current);
    }
    let default = Level::from_u8(DEFAULT.load(Ordering::Relaxed));
    let level = match std::env::var(LOG_ENV) {
        Ok(raw) => match parse_level(&raw) {
            Some(level) => level,
            None => {
                static WARNED: OnceLock<()> = OnceLock::new();
                WARNED.get_or_init(|| {
                    eprintln!(
                        "warning: ignoring invalid {LOG_ENV}={raw:?} \
                         (want off, error, info, or debug); using {}",
                        default.as_str(),
                    );
                });
                default
            }
        },
        Err(_) => default,
    };
    LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Overrides the level explicitly (wins over env and default).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Sets the level used when `NVM_LLC_LOG` is unset or invalid. Call
/// before the first log line; a no-op once the level has resolved from
/// the environment.
pub fn set_default_level(level: Level) {
    DEFAULT.store(level as u8, Ordering::Relaxed);
    // Re-resolve if the env hasn't pinned a level yet.
    if LEVEL.load(Ordering::Relaxed) != u8::MAX {
        // Level already resolved from env/default; only bump if the
        // previous resolution came from the old default. The env always
        // wins, so re-check it.
        if std::env::var(LOG_ENV).map_or(true, |raw| parse_level(&raw).is_none()) {
            LEVEL.store(level as u8, Ordering::Relaxed);
        }
    }
}

/// The currently effective level.
pub fn level() -> Level {
    resolve()
}

/// Whether a record at `level` would be emitted. Check this before
/// building expensive field values.
pub fn enabled(level: Level) -> bool {
    level <= resolve() && level != Level::Off
}

/// A typed field value for structured records.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string, JSON-escaped on output.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, rendered with shortest-round-trip formatting.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Renders a Unix timestamp as RFC 3339 UTC (`2026-08-07T12:34:56.789Z`)
/// using the days-from-civil algorithm — no date dependency needed.
fn rfc3339_utc(now: SystemTime) -> String {
    let dur = now.duration_since(UNIX_EPOCH).unwrap_or_default();
    let secs = dur.as_secs();
    let millis = dur.subsec_millis();
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the Unix era.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}.{millis:03}Z")
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one structured record as a single JSON line on stderr. Prefer
/// the [`crate::error!`], [`crate::info!`], and [`crate::debug!`]
/// macros, which skip field construction when the level is off.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let mut line = String::with_capacity(128);
    line.push_str("{\"ts\":");
    push_json_str(&mut line, &rfc3339_utc(SystemTime::now()));
    line.push_str(",\"level\":");
    push_json_str(&mut line, level.as_str());
    line.push_str(",\"target\":");
    push_json_str(&mut line, target);
    line.push_str(",\"msg\":");
    push_json_str(&mut line, msg);
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        match value {
            Value::Str(s) => push_json_str(&mut line, s),
            Value::U64(v) => line.push_str(&v.to_string()),
            Value::I64(v) => line.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    line.push_str(&format!("{v}"));
                } else {
                    push_json_str(&mut line, &v.to_string());
                }
            }
            Value::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
        }
    }
    line.push('}');
    // One write_all per record keeps lines intact across threads.
    let mut stderr = std::io::stderr().lock();
    let _ = writeln!(stderr, "{line}");
}

/// Logs at [`Level::Error`]: `obs::error!("store", "read failed"; "path" => p)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $msg:expr $(; $($k:literal => $v:expr),* $(,)?)?) => {
        $crate::log_event!($crate::log::Level::Error, $target, $msg $(; $($k => $v),*)?)
    };
}

/// Logs at [`Level::Info`]: `obs::info!("serve", "listening"; "addr" => a)`.
#[macro_export]
macro_rules! info {
    ($target:expr, $msg:expr $(; $($k:literal => $v:expr),* $(,)?)?) => {
        $crate::log_event!($crate::log::Level::Info, $target, $msg $(; $($k => $v),*)?)
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $msg:expr $(; $($k:literal => $v:expr),* $(,)?)?) => {
        $crate::log_event!($crate::log::Level::Debug, $target, $msg $(; $($k => $v),*)?)
    };
}

/// Shared expansion for the level macros; not called directly.
#[doc(hidden)]
#[macro_export]
macro_rules! log_event {
    ($level:expr, $target:expr, $msg:expr $(; $($k:literal => $v:expr),* $(,)?)?) => {{
        let level = $level;
        if $crate::log::enabled(level) {
            $crate::log::log(
                level,
                $target,
                &$msg,
                &[$($(($k, $crate::log::Value::from($v))),*)?],
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_level_accepts_known_names() {
        assert_eq!(parse_level("off"), Some(Level::Off));
        assert_eq!(parse_level("ERROR"), Some(Level::Error));
        assert_eq!(parse_level(" info "), Some(Level::Info));
        assert_eq!(parse_level("Debug"), Some(Level::Debug));
        assert_eq!(parse_level("verbose"), None);
        assert_eq!(parse_level(""), None);
    }

    #[test]
    fn levels_order_by_verbosity() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn rfc3339_formats_known_instants() {
        use std::time::Duration;
        let t = UNIX_EPOCH + Duration::from_millis(0);
        assert_eq!(rfc3339_utc(t), "1970-01-01T00:00:00.000Z");
        let t = UNIX_EPOCH + Duration::from_secs(1_786_190_400);
        assert_eq!(rfc3339_utc(t), "2026-08-08T12:00:00.000Z");
        let t = UNIX_EPOCH + Duration::from_millis(951_826_554_321);
        // 2000-02-29: leap-day coverage.
        assert_eq!(rfc3339_utc(t), "2000-02-29T12:15:54.321Z");
    }

    #[test]
    fn json_strings_escape_specials() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn set_level_wins_and_enabled_filters() {
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Error));
        assert_eq!(level(), Level::Off);
    }
}
