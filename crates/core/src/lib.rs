//! # nvm-llc — NVM-based Last Level Cache evaluation
//!
//! A full reproduction of *"Evaluation of Non-Volatile Memory Based Last
//! Level Cache Given Modern Use Case Behavior"* (Hankin et al., IISWC
//! 2019) as a Rust workspace:
//!
//! * [`cell`] — cell-level NVM models, the three modeling heuristics,
//!   `.cell` file I/O (Section III, Table II);
//! * [`circuit`] — circuit-level cache modeling à la NVSim, plus the
//!   paper's published Table III as a reference dataset;
//! * [`trace`] — synthetic workloads calibrated to the paper's 20
//!   benchmarks (Table V);
//! * [`prism`] — architecture-agnostic workload characterization
//!   (Section IV-B, Table VI);
//! * [`sim`] — the trace-driven Gainestown simulator with NVM-aware LLC
//!   (Section IV, Table IV);
//! * [`analysis`] — the feature/outcome correlation framework
//!   (Section VI);
//! * [`experiments`] — one module per paper table and figure, each
//!   regenerating its artifact.
//!
//! ## Quick start
//!
//! ```
//! use nvm_llc::prelude::*;
//!
//! // Pick an NVM cell, model a 2 MB LLC, and race it against SRAM.
//! let models = reference::fixed_capacity();
//! let sram = reference::by_name(&models, "SRAM").unwrap();
//! let hayakawa = reference::by_name(&models, "Hayakawa").unwrap();
//! let row = Evaluator::new(sram, vec![hayakawa])
//!     .base_accesses(4_000)
//!     .run_workload(&workloads::by_name("leela").unwrap());
//! let entry = row.entry("Hayakawa_R").unwrap();
//! assert!(entry.energy < 1.0); // RRAM saves LLC energy
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod scale;
pub mod tables;

pub use scale::Scale;

/// Re-export of the correlation-analysis crate.
pub use nvm_llc_analysis as analysis;
/// Re-export of the cell-model crate.
pub use nvm_llc_cell as cell;
/// Re-export of the circuit-model crate.
pub use nvm_llc_circuit as circuit;
/// Re-export of the observability crate (metrics, spans, logging).
pub use nvm_llc_obs as obs;
/// Re-export of the characterization crate.
pub use nvm_llc_prism as prism;
/// Re-export of the evaluation-service crate (`nvm-llc serve`).
pub use nvm_llc_serve as serve;
/// Re-export of the simulator crate.
pub use nvm_llc_sim as sim;
/// Re-export of the persistent result-store crate.
pub use nvm_llc_store as store;
/// Re-export of the trace/workload crate.
pub use nvm_llc_trace as trace;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::experiments::{self, Configuration};
    pub use crate::scale::Scale;
    pub use nvm_llc_analysis::{CorrelationMatrix, Observation, Outcome};
    pub use nvm_llc_cell::{Catalog, CellParams, HeuristicEngine, MemClass};
    pub use nvm_llc_circuit::{fixed_area, reference, CacheModeler, LlcModel};
    pub use nvm_llc_prism::{profiler, FeatureKind, FeatureVector};
    pub use nvm_llc_sim::{
        simulate_hybrid, ArchConfig, Evaluator, HybridConfig, LlcWritePolicy, PolicyKind,
        PolicyMatrix, SimResult, System, WearPolicy, WriteMode,
    };
    pub use nvm_llc_trace::{workloads, Trace, WorkloadProfile};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_pipeline() {
        use crate::prelude::*;
        let catalog = Catalog::paper();
        assert_eq!(catalog.len(), 11);
        let _ = workloads::all();
        let _ = reference::fixed_capacity();
        let _ = Scale::SMOKE;
    }
}
