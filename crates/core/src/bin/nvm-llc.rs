//! `nvm-llc` — command-line front end for the paper-reproduction harness.
//!
//! ```text
//! nvm-llc <artifact> [--scale smoke|default|full] [--threads N]
//!         [--tape-cache-mb N] [--store-dir PATH] [--stats]
//!         [--trace-out PATH]
//!
//! artifacts:
//!   table2 | table3 | table4 | table5 | table6
//!   fig1 | fig2 | fig4 | sweep | lifetime | selection
//!   all                  every artifact in paper order
//!   cell <name>          print one technology's .cell model
//!   characterize <bmk>   Table VI features for one workload
//!   mrc <bmk>            reuse-distance miss-ratio curve
//!   serve [options]      run the nvm-llcd evaluation service
//!   route [options]      run a thin router over nvm-llcd shards
//! ```

use std::process::ExitCode;

use nvm_llc::experiments::{
    core_sweep, dl_extension, fig1, fig2, fig4, lifetime, selection, table2, table3, table4,
    table5, table6,
};
use nvm_llc::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nvm-llc <artifact> [--scale smoke|default|full] [--threads N]\n\
         \x20               [--policy lru|random|srrip|drrip|ship|endurance]\n\
         \x20               [--tape-cache-mb N]   (0 lifts the tape-cache bound)\n\
         \x20               [--store-dir PATH]    (persistent result store)\n\
         \x20               [--stats]             (log cache counters on exit)\n\
         \x20               [--trace-out PATH]    (write a chrome://tracing span trace)\n\
         artifacts: table2 table3 table4 table5 table6 fig1 fig2 fig4 sweep\n\
         \x20          lifetime selection dl all | cell <name> | characterize <bmk> | mrc <bmk>\n\
         \x20          serve [options]   (see `nvm-llc serve --help`)\n\
         \x20          route [options]   (see `nvm-llc route --help`)"
    );
    ExitCode::from(2)
}

fn parse_scale(args: &[String]) -> Result<Scale, String> {
    match args.iter().position(|a| a == "--scale") {
        None => Ok(Scale::DEFAULT),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("smoke") => Ok(Scale::SMOKE),
            Some("default") => Ok(Scale::DEFAULT),
            Some("full") => Ok(Scale::FULL),
            other => Err(format!("bad --scale value {other:?}")),
        },
    }
}

/// `--threads N` pins the evaluation worker-pool size by exporting
/// `NVM_LLC_THREADS` before any experiment spawns workers. Explicit
/// `Evaluator::threads(..)` calls still win; without the flag the env
/// var (if set by the caller) and then `available_parallelism` apply.
fn apply_threads(args: &[String]) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    let value = args.get(i + 1).map(String::as_str);
    match value.and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => {
            std::env::set_var(nvm_llc::sim::runner::THREADS_ENV, n.to_string());
            Ok(())
        }
        _ => Err(format!(
            "bad --threads value {value:?} (want an integer >= 1)"
        )),
    }
}

/// `--policy NAME` pins the LLC replacement policy every evaluation in
/// this process runs under by exporting `NVM_LLC_POLICY` before any
/// experiment builds an `Evaluator`. Explicit `Evaluator::policy(..)`
/// calls still win; without the flag the env var (if set by the caller)
/// and then LRU apply. An unknown name on the command line is a hard
/// usage error — only a set-but-invalid *environment* value downgrades
/// to a warning.
fn apply_policy(args: &[String]) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--policy") else {
        return Ok(());
    };
    let value = args.get(i + 1).map(String::as_str);
    match value.and_then(nvm_llc::sim::PolicyKind::parse) {
        Some(policy) => {
            std::env::set_var(nvm_llc::sim::POLICY_ENV, policy.name());
            Ok(())
        }
        None => Err(format!(
            "bad --policy value {value:?} (want one of lru, random, srrip, drrip, ship, endurance)"
        )),
    }
}

/// `--tape-cache-mb N` bounds the process-wide outcome-tape cache to
/// `N` MiB (`0` lifts the bound entirely, the default is ~256 MiB).
fn apply_tape_cache_budget(args: &[String]) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--tape-cache-mb") else {
        return Ok(());
    };
    let value = args.get(i + 1).map(String::as_str);
    match value.and_then(|v| v.parse::<u64>().ok()) {
        Some(0) => {
            nvm_llc::sim::tape::cache::set_byte_budget(u64::MAX);
            Ok(())
        }
        Some(mib) => {
            nvm_llc::sim::tape::cache::set_byte_budget(mib << 20);
            Ok(())
        }
        None => Err(format!(
            "bad --tape-cache-mb value {value:?} (want an integer >= 0)"
        )),
    }
}

/// `--store-dir PATH` opens (creating if needed) the persistent
/// content-addressed result store at `PATH` and installs it process-
/// wide: every evaluation reads finished results and outcome tapes
/// through it and writes fresh ones back, so a re-run — even in a new
/// process — skips completed work.
fn apply_store_dir(args: &[String]) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--store-dir") else {
        return Ok(());
    };
    let Some(path) = args.get(i + 1) else {
        return Err("--store-dir needs a path".to_owned());
    };
    let store =
        nvm_llc::store::Store::open(path).map_err(|e| format!("--store-dir {path}: {e}"))?;
    nvm_llc::sim::persist::set_global_store(Some(std::sync::Arc::new(store)));
    Ok(())
}

/// `--trace-out PATH` records every span of the run into the chrome
/// trace ring buffer and writes it as chrome://tracing JSON on exit.
/// An unwritable path warns once on stderr and disables recording —
/// the run itself proceeds (matching the `NVM_LLC_THREADS` /
/// `NVM_LLC_TAPE_CACHE_MB` fallback convention). Returns the path to
/// write on success, `Err` only for a missing value.
fn apply_trace_out(args: &[String]) -> Result<Option<std::path::PathBuf>, String> {
    let Some(i) = args.iter().position(|a| a == "--trace-out") else {
        return Ok(None);
    };
    let Some(path) = args.get(i + 1) else {
        return Err("--trace-out needs a path".to_owned());
    };
    let path = std::path::PathBuf::from(path);
    // Probe writability up front so a typo'd directory fails before an
    // hour-long run, not after.
    if let Err(e) = std::fs::File::create(&path) {
        eprintln!(
            "warning: ignoring unwritable --trace-out {}: {e}; no trace will be written",
            path.display()
        );
        return Ok(None);
    }
    nvm_llc::obs::chrome::start();
    Ok(Some(path))
}

/// After an evaluation artifact finishes, say how well the two
/// process-wide caches did: generated traces held, and the tape cache's
/// functional-pass accounting. Opt-in via `--stats`; the same counters
/// are always live on the service's `/statsz` endpoint.
fn log_cache_stats() {
    let tc = nvm_llc::sim::tape::cache::stats();
    nvm_llc::obs::info!(
        "cli", "cache stats";
        "generated_traces" => nvm_llc::trace::cache::len(),
        "tape_cache" => tc.to_string(),
        "tape_hits" => tc.hits,
        "tape_misses" => tc.misses,
        "tape_store_hits" => tc.store_hits,
        "tape_evictions" => tc.evictions,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(artifact) = args.first() else {
        return usage();
    };
    if artifact == "serve" {
        let rest = &args[1..];
        if rest.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: nvm-llc serve [options]\n\n{}",
                nvm_llc::serve::USAGE
            );
            return ExitCode::SUCCESS;
        }
        let config = match nvm_llc::serve::ServeConfig::parse_args(rest) {
            Ok(config) => config,
            Err(message) => {
                eprintln!("nvm-llc serve: {message}\n\n{}", nvm_llc::serve::USAGE);
                return ExitCode::from(2);
            }
        };
        return match nvm_llc::serve::run(config) {
            Ok(()) => ExitCode::SUCCESS,
            Err(error) => {
                eprintln!("nvm-llc serve: {error}");
                ExitCode::FAILURE
            }
        };
    }
    if artifact == "route" {
        let rest = &args[1..];
        if rest.iter().any(|a| a == "--help" || a == "-h") {
            println!(
                "usage: nvm-llc route [options]\n\n{}",
                nvm_llc::serve::cluster::ROUTER_USAGE
            );
            return ExitCode::SUCCESS;
        }
        let config = match nvm_llc::serve::cluster::RouterConfig::parse_args(rest) {
            Ok(config) => config,
            Err(message) => {
                eprintln!(
                    "nvm-llc route: {message}\n\n{}",
                    nvm_llc::serve::cluster::ROUTER_USAGE
                );
                return ExitCode::from(2);
            }
        };
        return match nvm_llc::serve::run_router(config) {
            Ok(()) => ExitCode::SUCCESS,
            Err(error) => {
                eprintln!("nvm-llc route: {error}");
                ExitCode::FAILURE
            }
        };
    }
    let scale = match parse_scale(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if let Err(e) = apply_threads(&args) {
        eprintln!("{e}");
        return usage();
    }
    if let Err(e) = apply_policy(&args) {
        eprintln!("{e}");
        return usage();
    }
    if let Err(e) = apply_tape_cache_budget(&args) {
        eprintln!("{e}");
        return usage();
    }
    if let Err(e) = apply_store_dir(&args) {
        eprintln!("{e}");
        return usage();
    }
    let trace_out = match apply_trace_out(&args) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };

    // `--stats` reports through the structured logger; make sure the
    // report is visible even with NVM_LLC_LOG unset (env still wins).
    if args.iter().any(|a| a == "--stats") {
        nvm_llc::obs::log::set_default_level(nvm_llc::obs::log::Level::Info);
    }

    // Cache-effectiveness logging is opt-in (`--stats`), and only
    // artifacts that drive the evaluation engine have anything to say.
    let evaluates = args.iter().any(|a| a == "--stats")
        && !matches!(
            artifact.as_str(),
            "table2" | "table3" | "table4" | "cell" | "characterize" | "mrc"
        );

    match artifact.as_str() {
        "table2" => println!("{}", table2::run().render()),
        "table3" => println!("{}", table3::run().render()),
        "table4" => println!("{}", table4::render_default()),
        "table5" => println!("{}", table5::run(scale).render()),
        "table6" => println!("{}", table6::run(scale).render()),
        "fig1" => println!("{}", fig1::run(scale).render()),
        "fig2" => println!("{}", fig2::run(scale).render()),
        "fig4" => println!("{}", fig4::run(scale).render()),
        "sweep" => println!("{}", core_sweep::run(scale).render()),
        "lifetime" => println!("{}", lifetime::run(scale).render()),
        "selection" => println!("{}", selection::run(scale).render()),
        "dl" => println!("{}", dl_extension::run(scale).render()),
        "all" => {
            println!("{}\n", table2::run().render());
            println!("{}\n", table3::run().render());
            println!("{}\n", table4::render_default());
            println!("{}\n", table5::run(scale).render());
            println!("{}\n", table6::run(scale).render());
            println!("{}\n", fig1::run(scale).render());
            println!("{}\n", fig2::run(scale).render());
            println!("{}\n", core_sweep::run(scale).render());
            println!("{}\n", fig4::run(scale).render());
            println!("{}\n", lifetime::run(scale).render());
            println!("{}\n", selection::run(scale).render());
            println!("{}", dl_extension::run(scale).render());
        }
        "cell" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            match Catalog::paper().get(name) {
                Ok(cell) => print!("{}", nvm_llc::cell::cellfile::to_string(cell)),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "characterize" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(workload) = workloads::by_name(name) else {
                eprintln!("unknown workload `{name}`");
                return ExitCode::FAILURE;
            };
            let trace =
                workload.generate(scale.seed, workload.scaled_accesses(scale.base_accesses));
            let features = profiler::characterize(workload.name(), &trace);
            println!("{features}");
        }
        "mrc" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(workload) = workloads::by_name(name) else {
                eprintln!("unknown workload `{name}`");
                return ExitCode::FAILURE;
            };
            let trace =
                workload.generate(scale.seed, workload.scaled_accesses(scale.base_accesses));
            let histogram = nvm_llc::prism::reuse::reuse_histogram(&trace);
            println!("{name}: miss-ratio curve (fully-associative LRU)");
            println!("{:>12} {:>12} {:>10}", "capacity", "blocks", "miss");
            for (blocks, miss) in histogram.miss_ratio_curve(1 << 9, 1 << 21) {
                println!(
                    "{:>9} KB {:>12} {:>9.1}%",
                    blocks * 64 / 1024,
                    blocks,
                    miss * 100.0
                );
            }
        }
        _ => return usage(),
    }
    if evaluates {
        log_cache_stats();
    }
    if let Some(path) = trace_out {
        if let Err(e) = nvm_llc::obs::chrome::write_json(&path) {
            eprintln!(
                "warning: failed to write --trace-out {}: {e}",
                path.display()
            );
        }
    }
    ExitCode::SUCCESS
}
