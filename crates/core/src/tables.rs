//! Plain-text table rendering shared by every experiment.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (names, labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Examples
///
/// ```
/// use nvm_llc::tables::TextTable;
///
/// let mut t = TextTable::new(vec!["tech".into(), "energy".into()]);
/// t.row(vec!["Jan_S".into(), "0.19".into()]);
/// let s = t.render();
/// assert!(s.contains("Jan_S"));
/// assert!(s.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, rule, rows. The first column is
    /// left-aligned, the rest right-aligned (label + numbers convention).
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(display_width(h));
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(display_width(cell));
            }
        }
        let mut out = String::new();
        self.render_row(&mut out, &self.headers, &widths);
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            self.render_row(&mut out, row, &widths);
        }
        out
    }

    fn render_row(&self, out: &mut String, cells: &[String], widths: &[usize]) {
        let mut parts = Vec::with_capacity(widths.len());
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            let align = if i == 0 { Align::Left } else { Align::Right };
            let pad = width.saturating_sub(display_width(cell));
            let padded = match align {
                Align::Left => format!("{cell}{}", " ".repeat(pad)),
                Align::Right => format!("{}{cell}", " ".repeat(pad)),
            };
            parts.push(padded);
        }
        let _ = writeln!(out, "{}", parts.join(" | "));
    }
}

/// Character-count width (the tables only use ASCII plus a few shading
/// glyphs that are one display column each).
fn display_width(s: &str) -> usize {
    s.chars().count()
}

/// Formats a float compactly: 3 significant-ish decimals, stripping noise.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "—".to_owned();
    }
    if v == 0.0 {
        return "0".to_owned();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        // Numbers right-aligned: "1" ends its column.
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains('x'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn num_formatting_bands() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.123456), "0.123");
        assert_eq!(num(12.34), "12.3");
        assert_eq!(num(1234.5), "1234");
        assert_eq!(num(f64::NAN), "—");
    }
}
