//! Experiment scale: how much trace each run replays.
//!
//! The paper simulates full benchmark executions; this reproduction
//! replays synthetic traces whose length is a tunable budget so the whole
//! evaluation fits in minutes on a laptop (`cargo bench`) while tests run
//! in seconds.

/// Trace-length budget for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Base memory accesses per thread (each workload additionally scales
    /// this by its relative volume).
    pub base_accesses: usize,
    /// Trace generation seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny runs for unit/integration tests (seconds, debug profile).
    pub const SMOKE: Scale = Scale {
        base_accesses: 8_000,
        seed: 2019,
    };

    /// The default evaluation budget used by the benches.
    pub const DEFAULT: Scale = Scale {
        base_accesses: 200_000,
        seed: 2019,
    };

    /// A long run for final numbers.
    pub const FULL: Scale = Scale {
        base_accesses: 600_000,
        seed: 2019,
    };
}

impl Default for Scale {
    fn default() -> Self {
        Scale::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let scales = [Scale::SMOKE, Scale::DEFAULT, Scale::FULL];
        assert!(scales
            .windows(2)
            .all(|w| w[0].base_accesses < w[1].base_accesses));
        assert_eq!(Scale::default(), Scale::DEFAULT);
    }

    #[test]
    fn all_scales_share_the_paper_seed() {
        assert_eq!(Scale::SMOKE.seed, 2019);
        assert_eq!(Scale::FULL.seed, 2019);
    }
}
