//! Section V-C — core-count sensitivity study: performance and LLC power
//! of multicore systems with fixed-area NVM LLCs, normalized to a
//! single-core SRAM baseline.

use nvm_llc_circuit::reference;
use nvm_llc_sim::runner::Evaluator;
use nvm_llc_sim::MatrixRow;
use nvm_llc_trace::workloads;

use crate::scale::Scale;
use crate::tables::{num, TextTable};

/// Core counts the study sweeps (the paper discusses 1–32).
pub const CORE_COUNTS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Workloads the paper's Section V-C narrative examines.
pub const SWEEP_WORKLOADS: [&str; 6] = ["ft", "cg", "lu", "sp", "mg", "is"];

/// One (workload, core count) cell of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Workload name.
    pub workload: String,
    /// Cores (= threads generated).
    pub cores: u32,
    /// Per-NVM normalized results at this point.
    pub row: MatrixRow,
}

/// The full core sweep.
#[derive(Debug, Clone)]
pub struct CoreSweep {
    /// All sweep points, grouped by workload then core count.
    pub points: Vec<SweepPoint>,
}

/// Runs the sweep on the fixed-area models (where capacity matters most).
pub fn run(scale: Scale) -> CoreSweep {
    run_with(scale, &CORE_COUNTS, &SWEEP_WORKLOADS)
}

/// Runs the sweep for explicit core counts and workloads.
pub fn run_with(scale: Scale, core_counts: &[u32], workload_names: &[&str]) -> CoreSweep {
    let models = reference::fixed_area();
    let baseline = reference::by_name(&models, "SRAM").expect("SRAM row");
    let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();

    let mut points = Vec::new();
    for name in workload_names {
        let workload = workloads::by_name(name).unwrap_or_else(|| panic!("workload {name}"));
        for &cores in core_counts {
            let threaded = workload.with_threads_weak_scaling(cores.min(255) as u8);
            // The baseline is a single-core SRAM system running the same
            // thread count (time-shared), per the paper's setup.
            // Weak scaling keeps per-thread work constant: the volume
            // multiplier and thread divisor in `scaled_accesses` cancel,
            // so total replayed work grows with the core count.
            let eval = Evaluator::new(baseline.clone(), nvms.clone())
                .base_accesses(scale.base_accesses / 4)
                .seed(scale.seed)
                .cores(cores);
            let row = eval.run_workload(&threaded);
            points.push(SweepPoint {
                workload: (*name).to_owned(),
                cores,
                row,
            });
        }
    }
    CoreSweep { points }
}

impl CoreSweep {
    /// The point for a workload at a core count.
    pub fn point(&self, workload: &str, cores: u32) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.cores == cores)
    }

    /// Renders one table per workload: cores × technology speedup and
    /// energy.
    pub fn render(&self) -> String {
        let mut out = String::from("Section V-C — core sweep (fixed-area LLCs)\n");
        let workloads: Vec<&str> = {
            let mut v: Vec<&str> = self.points.iter().map(|p| p.workload.as_str()).collect();
            v.dedup();
            v
        };
        for workload in workloads {
            let points: Vec<&SweepPoint> = self
                .points
                .iter()
                .filter(|p| p.workload == workload)
                .collect();
            let Some(first) = points.first() else {
                continue;
            };
            let mut headers = vec!["cores".to_owned()];
            headers.extend(first.row.entries.iter().map(|e| e.llc.clone()));
            let mut speed = TextTable::new(headers.clone());
            let mut energy = TextTable::new(headers);
            for p in &points {
                let mut srow = vec![p.cores.to_string()];
                srow.extend(p.row.entries.iter().map(|e| num(e.speedup)));
                speed.row(srow);
                let mut erow = vec![p.cores.to_string()];
                erow.extend(p.row.entries.iter().map(|e| num(e.energy)));
                energy.row(erow);
            }
            out.push_str(&format!(
                "{workload}: speedup vs single-run SRAM\n{}{workload}: normalized LLC energy\n{}\n",
                speed.render(),
                energy.render()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> &'static CoreSweep {
        crate::experiments::shared::core_sweep()
    }

    #[test]
    fn sweep_covers_the_grid() {
        let s = sweep();
        assert_eq!(s.points.len(), 6);
        assert!(s.point("ft", 4).is_some());
        assert!(s.point("mg", 8).is_some());
        assert!(s.point("ft", 32).is_none());
    }

    #[test]
    fn capacity_pressure_grows_with_cores() {
        // §V-C.1: "Capacity is an increasing strain on the systems as
        // cores increase" — LLC mpki on a capacity-limited technology
        // (Jan_S, 1 MB) rises with core count.
        let s = sweep();
        let mpki = |cores: u32| {
            s.point("mg", cores)
                .unwrap()
                .row
                .entry("Jan_S")
                .unwrap()
                .result
                .stats
                .llc_mpki()
        };
        assert!(mpki(8) > mpki(1), "{} vs {}", mpki(8), mpki(1));
    }

    #[test]
    fn dense_nvms_win_on_capacity_starved_mg() {
        // §V-C.1: "For capacity starved benchmarks, such as mg, Zhang_R
        // and Hayakawa_R show the best performance as they are the
        // densest."
        let s = sweep();
        let p = s.point("mg", 8).unwrap();
        let speedup = |name: &str| p.row.entry(name).unwrap().speedup;
        let dense_best = speedup("Zhang_R").max(speedup("Hayakawa_R"));
        assert!(
            dense_best >= speedup("Jan_S"),
            "dense {dense_best} vs Jan {}",
            speedup("Jan_S")
        );
        assert!(dense_best >= speedup("Umeki_S"));
    }

    #[test]
    fn render_has_speedup_and_energy_blocks() {
        let text = sweep().render();
        assert!(text.contains("core sweep"));
        assert!(text.contains("ft: speedup"));
        assert!(text.contains("mg: normalized LLC energy"));
    }
}
