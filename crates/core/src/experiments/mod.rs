//! One module per paper artifact (table or figure), each with a `run`
//! entry point returning structured results and a `render` producing the
//! text the benches print.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table2`] | Table II — cell parameters + heuristic completion |
//! | [`table3`] | Table III — LLC models (fixed-capacity & fixed-area) |
//! | [`table4`] | Table IV — simulated architecture |
//! | [`table5`] | Table V — workloads and LLC mpki |
//! | [`table6`] | Table VI — workload features |
//! | [`fig1`]   | Figure 1 — fixed-capacity speedup/energy/ED²P |
//! | [`fig2`]   | Figure 2 — fixed-area speedup/energy/ED²P |
//! | [`core_sweep`] | Section V-C — multicore sensitivity study |
//! | [`fig4`]   | Figure 4 — feature correlation heatmaps |
//! | [`lifetime`] | Section VII (future work) — endurance/lifetime study |
//! | [`dl_extension`] | Section IV's Fathom/TBD pointer — DL workloads |
//! | [`selection`] | Section VI extension — minimal predictive feature subset |

pub mod core_sweep;
pub mod dl_extension;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod lifetime;
pub mod selection;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

use nvm_llc_circuit::{reference, LlcModel};
use nvm_llc_sim::runner::Evaluator;

use crate::scale::Scale;

/// The two LLC sizing strategies of Section IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Configuration {
    /// Every technology at the 2 MB baseline capacity (cost-limited).
    FixedCapacity,
    /// Every technology grown to the SRAM area budget (capacity-limited).
    FixedArea,
}

impl Configuration {
    /// Both configurations, fixed-capacity first (the paper's order).
    pub const ALL: [Configuration; 2] = [Configuration::FixedCapacity, Configuration::FixedArea];

    /// The paper's Table III model set for this configuration.
    pub fn models(self) -> Vec<LlcModel> {
        match self {
            Configuration::FixedCapacity => reference::fixed_capacity(),
            Configuration::FixedArea => reference::fixed_area(),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Configuration::FixedCapacity => "fixed-capacity",
            Configuration::FixedArea => "fixed-area",
        }
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the standard evaluator for a configuration at a scale: SRAM
/// baseline, all ten NVMs.
pub fn evaluator(config: Configuration, scale: Scale) -> Evaluator {
    let models = config.models();
    let baseline = reference::by_name(&models, "SRAM").expect("table 3 has SRAM");
    let nvms: Vec<LlcModel> = models.into_iter().filter(|m| m.name != "SRAM").collect();
    Evaluator::new(baseline, nvms)
        .base_accesses(scale.base_accesses)
        .seed(scale.seed)
}

#[cfg(test)]
pub(crate) mod shared {
    //! Experiment results computed once per test binary — the experiment
    //! drivers are deterministic, so every test module can assert against
    //! the same cached run at evaluation scale.

    use std::sync::OnceLock;

    use crate::scale::Scale;

    /// The scale shared experiment results run at.
    pub const SCALE: Scale = Scale::DEFAULT;

    pub fn fig1() -> &'static super::fig1::Figure {
        static CELL: OnceLock<super::fig1::Figure> = OnceLock::new();
        CELL.get_or_init(|| super::fig1::run(SCALE))
    }

    pub fn fig2() -> &'static super::fig1::Figure {
        static CELL: OnceLock<super::fig1::Figure> = OnceLock::new();
        CELL.get_or_init(|| super::fig2::run(SCALE))
    }

    pub fn fig4() -> &'static super::fig4::Fig4 {
        static CELL: OnceLock<super::fig4::Fig4> = OnceLock::new();
        CELL.get_or_init(|| super::fig4::run(SCALE))
    }

    pub fn table5() -> &'static super::table5::Table5 {
        static CELL: OnceLock<super::table5::Table5> = OnceLock::new();
        CELL.get_or_init(|| super::table5::run(SCALE))
    }

    pub fn table6() -> &'static super::table6::Table6 {
        static CELL: OnceLock<super::table6::Table6> = OnceLock::new();
        CELL.get_or_init(|| super::table6::run(SCALE))
    }

    pub fn core_sweep() -> &'static super::core_sweep::CoreSweep {
        static CELL: OnceLock<super::core_sweep::CoreSweep> = OnceLock::new();
        CELL.get_or_init(|| super::core_sweep::run_with(SCALE, &[1, 4, 8], &["ft", "mg"]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_expose_eleven_models_each() {
        for c in Configuration::ALL {
            assert_eq!(c.models().len(), 11);
        }
        assert_eq!(Configuration::FixedCapacity.label(), "fixed-capacity");
        assert_eq!(Configuration::FixedArea.to_string(), "fixed-area");
    }

    #[test]
    fn evaluator_excludes_sram_from_nvms() {
        let row = evaluator(Configuration::FixedCapacity, Scale::SMOKE)
            .run_workload(&nvm_llc_trace::workloads::by_name("tonto").unwrap());
        assert_eq!(row.entries.len(), 10);
        assert!(row.entries.iter().all(|e| e.llc != "SRAM"));
    }
}
