//! Lifetime characterization — the paper's Section VII names "the extent
//! to which architecture-agnostic features affect the lifetime of
//! different NVMs" as its next study; this module runs it on the
//! infrastructure built here.

use nvm_llc_circuit::reference;
use nvm_llc_sim::endurance::EnduranceReport;
use nvm_llc_sim::{ArchConfig, System, WearPolicy};
use nvm_llc_trace::workloads;

use crate::scale::Scale;
use crate::tables::TextTable;

/// Workloads spanning the write-behaviour spectrum: write-balanced (ft),
/// write-heavy AI (deepsjeng), nearly write-free (cg), and narrow-write
/// (x264).
pub const LIFETIME_WORKLOADS: [&str; 4] = ["ft", "deepsjeng", "cg", "x264"];

/// One workload × technology lifetime cell.
#[derive(Debug, Clone)]
pub struct LifetimeCell {
    /// Workload name.
    pub workload: String,
    /// Technology display name.
    pub technology: String,
    /// Endurance report of the run.
    pub report: EnduranceReport,
}

/// The lifetime study output.
#[derive(Debug, Clone)]
pub struct Lifetime {
    /// All cells, grouped by workload then Table III technology order.
    pub cells: Vec<LifetimeCell>,
}

/// Runs the study on the fixed-capacity models.
pub fn run(scale: Scale) -> Lifetime {
    let models = reference::fixed_capacity();
    let mut cells = Vec::new();
    for name in LIFETIME_WORKLOADS {
        let workload = workloads::by_name(name).unwrap_or_else(|| panic!("workload {name}"));
        let trace =
            workload.generate_shared(scale.seed, workload.scaled_accesses(scale.base_accesses));
        for model in &models {
            if model.name == "SRAM" {
                continue;
            }
            let result = System::new(ArchConfig::gainestown(model.clone()))
                .with_endurance_tracking(WearPolicy::None)
                .with_warmup(0.25)
                .run(&trace);
            cells.push(LifetimeCell {
                workload: name.to_owned(),
                technology: model.display_name(),
                report: result.endurance.expect("tracking enabled"),
            });
        }
    }
    Lifetime { cells }
}

impl Lifetime {
    /// The cell for one workload/technology pair.
    pub fn cell(&self, workload: &str, technology: &str) -> Option<&LifetimeCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.technology == technology)
    }

    /// Renders lifetimes (years, log-scale quantities) per workload row.
    pub fn render(&self) -> String {
        let mut technologies: Vec<String> = Vec::new();
        for c in &self.cells {
            if !technologies.contains(&c.technology) {
                technologies.push(c.technology.clone());
            }
        }
        let mut headers = vec!["bmk".to_owned()];
        headers.extend(technologies.iter().cloned());
        let mut t = TextTable::new(headers);
        for workload in LIFETIME_WORKLOADS {
            let mut row = vec![workload.to_owned()];
            for tech in &technologies {
                row.push(match self.cell(workload, tech) {
                    Some(c) => format!("{:.1e}", c.report.lifetime_years),
                    None => String::new(),
                });
            }
            t.row(row);
        }
        format!(
            "Section VII (future work) — LLC lifetime under observed write \
             traffic [years]\n{}\nNote: absolute lifetimes reflect the scaled \
             trace's compressed time base; the cross-technology and \
             cross-workload ratios are the result.",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Lifetime {
        run(Scale::SMOKE)
    }

    #[test]
    fn covers_every_nvm_for_every_workload() {
        let s = study();
        assert_eq!(s.cells.len(), 4 * 10);
        assert!(s.cell("ft", "Kang_P").is_some());
        assert!(s.cell("cg", "Zhang_R").is_some());
    }

    #[test]
    fn class_endurance_orders_lifetimes() {
        // Section II: PCRAM 1e8 ≪ RRAM 1e10 ≪ STTRAM: same traffic, so
        // lifetimes order by endurance for every workload.
        let s = study();
        for workload in LIFETIME_WORKLOADS {
            let years = |tech: &str| s.cell(workload, tech).unwrap().report.lifetime_years;
            assert!(years("Kang_P") < years("Zhang_R"), "{workload}");
            assert!(years("Zhang_R") < years("Xue_S"), "{workload}");
        }
    }

    #[test]
    fn write_heavy_workloads_shorten_lifetimes() {
        // deepsjeng writes far more than cg (Table VI): its PCRAM LLC
        // wears out faster under comparable runtimes.
        let s = study();
        let dsj = s.cell("deepsjeng", "Kang_P").unwrap().report.total_writes;
        let cg = s.cell("cg", "Kang_P").unwrap().report.total_writes;
        assert!(dsj > cg, "{dsj} vs {cg}");
    }

    #[test]
    fn render_has_one_row_per_workload() {
        let text = study().render();
        for w in LIFETIME_WORKLOADS {
            assert!(text.contains(w));
        }
        assert!(text.contains("lifetime"));
    }
}
