//! Table VI — architecture-agnostic workload features, measured on the
//! synthetic traces and compared in shape to the paper's PRISM data.

use nvm_llc_prism::{profiler, reference, FeatureKind, FeatureVector};
use nvm_llc_trace::workloads;

use crate::scale::Scale;
use crate::tables::{num, TextTable};

/// The Table VI reproduction.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Measured features for the 16 characterized workloads.
    pub measured: Vec<FeatureVector>,
    /// The paper's published Table VI rows (absolute units).
    pub paper: Vec<FeatureVector>,
}

/// Characterizes the 16 PRISM-compatible workloads at the given scale.
pub fn run(scale: Scale) -> Table6 {
    let measured = workloads::characterized()
        .into_iter()
        .map(|w| {
            let accesses = w.scaled_accesses(scale.base_accesses);
            let trace = w.generate_shared(scale.seed, accesses);
            profiler::characterize(w.name(), &trace)
        })
        .collect();
    Table6 {
        measured,
        paper: reference::table_6(),
    }
}

impl Table6 {
    /// The measured row for a workload.
    pub fn measured_row(&self, name: &str) -> Option<&FeatureVector> {
        self.measured.iter().find(|f| f.name() == name)
    }

    /// Rank agreement between measured and paper values of one feature
    /// across workloads (fraction of concordant pairs).
    pub fn rank_agreement(&self, feature: FeatureKind) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .paper
            .iter()
            .filter_map(|p| {
                self.measured_row(p.name())
                    .map(|m| (p.get(feature), m.get(feature)))
            })
            .collect();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let dp = pairs[i].0 - pairs[j].0;
                let dm = pairs[i].1 - pairs[j].1;
                if dp.abs() < 1e-9 {
                    continue;
                }
                total += 1;
                if dp.signum() == dm.signum() {
                    agree += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            agree as f64 / total as f64
        }
    }

    /// Renders the measured Table VI (paper rows available via the prism
    /// crate's `reference` module).
    pub fn render(&self) -> String {
        let mut headers = vec!["bmk".to_owned()];
        headers.extend(FeatureKind::ALL.iter().map(|k| k.label().to_owned()));
        let mut t = TextTable::new(headers);
        for f in &self.measured {
            let mut row = vec![f.name().to_owned()];
            row.extend(FeatureKind::ALL.iter().map(|k| num(f.get(*k))));
            t.row(row);
        }
        format!(
            "Table VI — measured workload features (synthetic traces; footprints are \
             scaled, shapes comparable)\nEntropy rank agreement vs paper: reads {:.0}%, writes {:.0}%\n{}",
            self.rank_agreement(FeatureKind::GlobalReadEntropy) * 100.0,
            self.rank_agreement(FeatureKind::GlobalWriteEntropy) * 100.0,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t6() -> &'static Table6 {
        crate::experiments::shared::table6()
    }

    #[test]
    fn covers_sixteen_characterized_workloads() {
        let t = t6();
        assert_eq!(t.measured.len(), 16);
        assert_eq!(t.paper.len(), 16);
        assert!(t.measured_row("deepsjeng").is_some());
        assert!(t.measured_row("gamess").is_none());
    }

    #[test]
    fn entropy_ranks_broadly_agree_with_paper() {
        let t = t6();
        assert!(
            t.rank_agreement(FeatureKind::GlobalReadEntropy) > 0.55,
            "read entropy agreement {}",
            t.rank_agreement(FeatureKind::GlobalReadEntropy)
        );
    }

    #[test]
    fn read_write_totals_rank_agreement_is_strong() {
        let t = t6();
        assert!(t.rank_agreement(FeatureKind::TotalReads) > 0.5);
    }

    #[test]
    fn render_lists_all_features() {
        let text = t6().render();
        for k in FeatureKind::ALL {
            assert!(text.contains(k.label()), "{k} missing");
        }
    }
}
