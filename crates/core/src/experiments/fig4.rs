//! Figure 4 and Section VI — the workload characterization framework:
//! linear correlation between architecture-agnostic features and the
//! measured energy/speedup of the best NVM LLCs, for a general-purpose
//! system (all characterized workloads) and a specialized AI system (the
//! cpu2017 trio).

use nvm_llc_analysis::{CorrelationMatrix, Observation, Outcome};
use nvm_llc_prism::{profiler, FeatureKind, FeatureVector};
use nvm_llc_sim::MatrixRow;
use nvm_llc_trace::workloads;

use crate::experiments::{evaluator, Configuration};
use crate::scale::Scale;

/// The NVMs Section VI studies: the best-performing / most
/// energy-efficient technologies.
pub const STUDY_NVMS: [&str; 3] = ["Jan_S", "Xue_S", "Hayakawa_R"];

/// The AI workloads (cpu2017).
pub const AI_WORKLOADS: [&str; 3] = ["deepsjeng", "leela", "exchange2"];

/// One correlation panel's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanelId {
    /// NVM display name.
    pub nvm: String,
    /// Sizing configuration.
    pub configuration: Configuration,
}

/// The Figure 4 experiment output.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The six AI-specialized panels (Figures 4a–4f): `STUDY_NVMS` ×
    /// {fixed-capacity, fixed-area}.
    pub ai_panels: Vec<(PanelId, CorrelationMatrix)>,
    /// The general-purpose panels over all 16 characterized workloads.
    pub general_panels: Vec<(PanelId, CorrelationMatrix)>,
}

/// Runs the full correlation study.
pub fn run(scale: Scale) -> Fig4 {
    let characterized = workloads::characterized();
    // Feature vectors for every characterized workload, measured on the
    // exact traces the simulations replay.
    let features: Vec<FeatureVector> = characterized
        .iter()
        .map(|w| {
            let trace = w.generate_shared(scale.seed, w.scaled_accesses(scale.base_accesses));
            profiler::characterize(w.name(), &trace)
        })
        .collect();

    let mut ai_panels = Vec::new();
    let mut general_panels = Vec::new();
    for configuration in Configuration::ALL {
        let rows = evaluator(configuration, scale).run_all(&characterized);
        for nvm in STUDY_NVMS {
            let all = observations(&rows, &features, nvm, None);
            let ai = observations(&rows, &features, nvm, Some(&AI_WORKLOADS));
            let id = PanelId {
                nvm: nvm.to_owned(),
                configuration,
            };
            general_panels.push((
                id.clone(),
                CorrelationMatrix::compute(
                    format!("{nvm} {configuration} (general purpose)"),
                    &all,
                ),
            ));
            ai_panels.push((
                id,
                CorrelationMatrix::compute(format!("{nvm} {configuration} (AI)"), &ai),
            ));
        }
    }
    Fig4 {
        ai_panels,
        general_panels,
    }
}

/// Compiles (features, energy, speedup) observations for one NVM across a
/// workload subset.
fn observations(
    rows: &[MatrixRow],
    features: &[FeatureVector],
    nvm: &str,
    subset: Option<&[&str]>,
) -> Vec<Observation> {
    rows.iter()
        .filter(|row| subset.is_none_or(|s| s.contains(&row.workload.as_str())))
        .filter_map(|row| {
            let entry = row.entry(nvm)?;
            let features = features.iter().find(|f| f.name() == row.workload)?;
            Some(Observation {
                features: features.clone(),
                energy: entry.result.llc_energy().value(),
                speedup: entry.speedup,
            })
        })
        .collect()
}

impl Fig4 {
    /// The AI panel for an NVM and configuration.
    pub fn ai_panel(&self, nvm: &str, configuration: Configuration) -> Option<&CorrelationMatrix> {
        self.ai_panels
            .iter()
            .find(|(id, _)| id.nvm == nvm && id.configuration == configuration)
            .map(|(_, m)| m)
    }

    /// The general-purpose panel for an NVM and configuration.
    pub fn general_panel(
        &self,
        nvm: &str,
        configuration: Configuration,
    ) -> Option<&CorrelationMatrix> {
        self.general_panels
            .iter()
            .find(|(id, _)| id.nvm == nvm && id.configuration == configuration)
            .map(|(_, m)| m)
    }

    /// Mean |correlation| of the write-side features with energy across
    /// the AI panels — the paper's headline Section VI number.
    pub fn ai_write_feature_strength(&self) -> f64 {
        let write = [
            FeatureKind::GlobalWriteEntropy,
            FeatureKind::LocalWriteEntropy,
            FeatureKind::UniqueWrites,
            FeatureKind::WriteFootprint90,
        ];
        mean(
            self.ai_panels
                .iter()
                .map(|(_, m)| m.mean_correlation(&write, Outcome::Energy)),
        )
    }

    /// Mean |correlation| of the total-reads/total-writes features with
    /// energy across the AI panels (the paper: "negligibly correlated").
    pub fn ai_totals_strength(&self) -> f64 {
        let totals = [FeatureKind::TotalReads, FeatureKind::TotalWrites];
        mean(
            self.ai_panels
                .iter()
                .map(|(_, m)| m.mean_correlation(&totals, Outcome::Energy)),
        )
    }

    /// Mean |correlation| of the totals with energy across the
    /// general-purpose panels (the paper: totals dominate there).
    pub fn general_totals_strength(&self) -> f64 {
        let totals = [FeatureKind::TotalReads, FeatureKind::TotalWrites];
        mean(
            self.general_panels
                .iter()
                .map(|(_, m)| m.mean_correlation(&totals, Outcome::Energy)),
        )
    }

    /// Renders every panel heatmap.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 4 — feature correlation with energy and speedup\n\n");
        out.push_str("== Specialized system: AI use cases (Figures 4a–4f) ==\n");
        for (_, m) in &self.ai_panels {
            out.push_str(&m.render());
            out.push('\n');
        }
        out.push_str("== General-purpose system: all characterized workloads ==\n");
        for (_, m) in &self.general_panels {
            out.push_str(&m.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "AI write-feature |corr| with energy: {:.2}; AI totals |corr|: {:.2}; \
             general-purpose totals |corr|: {:.2}\n",
            self.ai_write_feature_strength(),
            self.ai_totals_strength(),
            self.general_totals_strength()
        ));
        out
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Fig4 {
        crate::experiments::shared::fig4()
    }

    #[test]
    fn six_panels_per_system_kind() {
        let f = fig();
        assert_eq!(f.ai_panels.len(), 6);
        assert_eq!(f.general_panels.len(), 6);
        for nvm in STUDY_NVMS {
            for c in Configuration::ALL {
                assert!(f.ai_panel(nvm, c).is_some(), "{nvm} {c}");
                assert!(f.general_panel(nvm, c).is_some(), "{nvm} {c}");
            }
        }
    }

    #[test]
    fn ai_panels_use_three_observations() {
        let f = fig();
        for (_, m) in &f.ai_panels {
            assert_eq!(m.observations(), 3);
        }
        for (_, m) in &f.general_panels {
            assert_eq!(m.observations(), 16);
        }
    }

    #[test]
    fn ai_write_features_beat_totals() {
        // Section VI's headline: for the AI use cases, energy correlates
        // strongly with write entropy / write footprints and negligibly
        // with total reads and writes.
        let f = fig();
        let write = f.ai_write_feature_strength();
        let totals = f.ai_totals_strength();
        assert!(write > totals, "write features {write} vs totals {totals}");
        assert!(write > 0.6, "write-feature strength only {write}");
    }

    #[test]
    fn general_purpose_totals_are_informative() {
        // Section VI: for the general-purpose system, total reads/writes
        // are an appropriate selection metric.
        let f = fig();
        assert!(
            f.general_totals_strength() > 0.3,
            "general totals strength {}",
            f.general_totals_strength()
        );
    }

    #[test]
    fn render_contains_all_panels_and_summary() {
        let text = fig().render();
        assert!(text.contains("Jan_S fixed-capacity (AI)"));
        assert!(text.contains("Hayakawa_R fixed-area (AI)"));
        assert!(text.contains("general purpose"));
        assert!(text.contains("AI write-feature"));
    }
}
