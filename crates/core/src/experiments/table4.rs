//! Table IV — the simulated architecture, rendered from the live
//! [`ArchConfig`] so the printout can never drift from what the simulator
//! actually runs.

use nvm_llc_circuit::reference;
use nvm_llc_sim::ArchConfig;

use crate::tables::TextTable;

/// Renders Table IV for the given configuration.
pub fn render(config: &ArchConfig) -> String {
    let mut t = TextTable::new(vec!["component".into(), "configuration".into()]);
    t.row(vec![
        "uprocessor".into(),
        format!(
            "Xeon x5550 \"Gainestown\" {} GHz OoO, {}-core, 1 thread/core",
            config.freq_ghz, config.cores
        ),
    ]);
    t.row(vec![
        "ROB".into(),
        format!(
            "{}-entry ROB, {}-entry load queue, {}-entry store queue",
            config.rob_entries, config.load_queue, config.store_queue
        ),
    ]);
    t.row(vec![
        "L1D $".into(),
        format!(
            "private, {} KB, {}-way set associative, write-back",
            config.l1d.capacity_bytes / 1024,
            config.l1d.associativity
        ),
    ]);
    t.row(vec![
        "L2 $".into(),
        format!(
            "private, {} KB, {}-way set associative, write-back",
            config.l2.capacity_bytes / 1024,
            config.l2.associativity
        ),
    ]);
    t.row(vec![
        "L3 $".into(),
        format!(
            "shared, {} MB {}, 64B blocks, 16-way set associative, write-back",
            config.llc.capacity.value(),
            config.llc.display_name()
        ),
    ]);
    t.row(vec![
        "DRAM".into(),
        format!(
            "{} distributed controllers, {} GB/s per controller, {} ns",
            config.dram_controllers, config.dram_bandwidth_gbs, config.dram_latency_ns
        ),
    ]);
    format!("Table IV — simulated architecture\n{}", t.render())
}

/// Renders Table IV for the paper's default (SRAM-baseline quad-core).
pub fn render_default() -> String {
    render(&ArchConfig::gainestown(reference::sram_baseline()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_render_matches_table_4_values() {
        let text = render_default();
        assert!(text.contains("2.66 GHz"));
        assert!(text.contains("4-core"));
        assert!(text.contains("128-entry ROB"));
        assert!(text.contains("48-entry load queue"));
        assert!(text.contains("32 KB"));
        assert!(text.contains("256 KB"));
        assert!(text.contains("2 MB"));
        assert!(text.contains("7.6 GB/s"));
    }

    #[test]
    fn render_tracks_config_changes() {
        let config = ArchConfig::gainestown(reference::sram_baseline()).with_cores(16);
        assert!(render(&config).contains("16-core"));
    }
}
