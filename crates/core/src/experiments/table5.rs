//! Table V — the workload list with measured LLC mpki on the SRAM
//! baseline, next to the paper's values.

use nvm_llc_circuit::reference;
use nvm_llc_sim::{ArchConfig, SimResult, System};
use nvm_llc_trace::{workloads, WorkloadProfile};

use crate::scale::Scale;
use crate::tables::{num, TextTable};

/// One workload's Table V row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// The workload profile.
    pub workload: WorkloadProfile,
    /// Simulation on the SRAM baseline.
    pub result: SimResult,
}

impl Table5Row {
    /// Measured LLC mpki.
    pub fn measured_mpki(&self) -> f64 {
        self.result.stats.llc_mpki()
    }
}

/// The full Table V reproduction.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// All 20 workloads in paper order.
    pub rows: Vec<Table5Row>,
}

/// Runs every workload on the SRAM-baseline Gainestown and collects mpki.
pub fn run(scale: Scale) -> Table5 {
    let config = ArchConfig::gainestown(reference::sram_baseline());
    let system = System::new(config).with_warmup(0.25);
    let rows = workloads::all()
        .into_iter()
        .map(|workload| {
            let accesses = workload.scaled_accesses(scale.base_accesses);
            let trace = workload.generate_shared(scale.seed, accesses);
            let result = system.run(&trace);
            Table5Row { workload, result }
        })
        .collect();
    Table5 { rows }
}

impl Table5 {
    /// Spearman-style rank agreement between measured and paper mpki:
    /// the fraction of workload pairs ordered the same way.
    pub fn rank_agreement(&self) -> f64 {
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..self.rows.len() {
            for j in (i + 1)..self.rows.len() {
                let a = &self.rows[i];
                let b = &self.rows[j];
                let paper = a.workload.paper_mpki() - b.workload.paper_mpki();
                let ours = a.measured_mpki() - b.measured_mpki();
                // Skip near-ties in the paper's ordering.
                if paper.abs() < 1.0 {
                    continue;
                }
                total += 1;
                if paper.signum() == ours.signum() {
                    agree += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            agree as f64 / total as f64
        }
    }

    /// Renders Table V with measured-vs-paper mpki.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "suite".into(),
            "bmk".into(),
            "paper mpki".into(),
            "measured mpki".into(),
            "description".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.workload.suite().to_string(),
                row.workload.name().to_owned(),
                num(row.workload.paper_mpki()),
                num(row.measured_mpki()),
                row.workload.description().to_owned(),
            ]);
        }
        format!(
            "Table V — workloads and LLC mpki (SRAM baseline); rank agreement {:.0}%\n{}",
            self.rank_agreement() * 100.0,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t5() -> &'static Table5 {
        crate::experiments::shared::table5()
    }

    #[test]
    fn covers_all_twenty_workloads() {
        let t = t5();
        assert_eq!(t.rows.len(), 20);
        assert!(t.rows.iter().all(|r| r.measured_mpki() > 0.0));
    }

    #[test]
    fn every_workload_stresses_the_llc() {
        // The paper's selection bar: mpki > 5 for every chosen workload.
        let t = t5();
        for row in &t.rows {
            assert!(
                row.measured_mpki() > 5.0,
                "{} mpki {}",
                row.workload.name(),
                row.measured_mpki()
            );
        }
    }

    #[test]
    fn headline_orderings_hold() {
        let t = t5();
        let mpki = |name: &str| {
            t.rows
                .iter()
                .find(|r| r.workload.name() == name)
                .unwrap()
                .measured_mpki()
        };
        // Table V's extremes: deepsjeng and bzip2 are the two most
        // LLC-hostile workloads; vips the least.
        assert!(mpki("deepsjeng") > mpki("leela"));
        assert!(mpki("bzip2") > mpki("tonto"));
        assert!(mpki("cg") > mpki("ep"));
        assert!(mpki("mg") > mpki("vips"));
    }

    #[test]
    fn render_includes_rank_agreement() {
        let text = t5().render();
        assert!(text.contains("rank agreement"));
        assert!(text.contains("deepsjeng"));
    }
}
