//! Feature selection — operationalizing Section VI's "learn which
//! features are most useful": for each studied NVM, which minimal feature
//! subset predicts its LLC energy across the characterized workloads?

use nvm_llc_analysis::Observation;
use nvm_llc_analysis::{forward_select, SelectionStep};
use nvm_llc_prism::{profiler, FeatureVector};
use nvm_llc_sim::MatrixRow;
use nvm_llc_trace::workloads;

use crate::experiments::{evaluator, fig4::STUDY_NVMS, Configuration};
use crate::scale::Scale;

/// Selection traces per (NVM, configuration).
#[derive(Debug, Clone)]
pub struct Selection {
    /// `(nvm, configuration, energy-selection trace)` triples.
    pub traces: Vec<(String, Configuration, Vec<SelectionStep>)>,
}

/// Runs greedy forward selection for every study NVM in both sizing
/// configurations.
pub fn run(scale: Scale) -> Selection {
    let characterized = workloads::characterized();
    let features: Vec<FeatureVector> = characterized
        .iter()
        .map(|w| {
            let trace = w.generate_shared(scale.seed, w.scaled_accesses(scale.base_accesses));
            profiler::characterize(w.name(), &trace)
        })
        .collect();

    let mut traces = Vec::new();
    for configuration in Configuration::ALL {
        let rows = evaluator(configuration, scale).run_all(&characterized);
        for nvm in STUDY_NVMS {
            let observations = collect(&rows, &features, nvm);
            let steps = forward_select(&observations, |o| o.energy, 0.02);
            traces.push((nvm.to_owned(), configuration, steps));
        }
    }
    Selection { traces }
}

fn collect(rows: &[MatrixRow], features: &[FeatureVector], nvm: &str) -> Vec<Observation> {
    rows.iter()
        .filter_map(|row| {
            let entry = row.entry(nvm)?;
            let f = features.iter().find(|f| f.name() == row.workload)?;
            Some(Observation {
                features: f.clone(),
                energy: entry.result.llc_energy().value(),
                speedup: entry.speedup,
            })
        })
        .collect()
}

impl Selection {
    /// Renders the selection traces.
    pub fn render(&self) -> String {
        let mut out = String::from("Feature selection — minimal subsets predicting LLC energy\n");
        for (nvm, configuration, steps) in &self.traces {
            out.push_str(&format!("{nvm} ({configuration}): "));
            if steps.is_empty() {
                out.push_str("no feature clears the gain threshold\n");
                continue;
            }
            let parts: Vec<String> = steps
                .iter()
                .map(|s| format!("{} (R²={:.2})", s.feature.label(), s.r_squared))
                .collect();
            out.push_str(&parts.join(" + "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_runs_for_all_panels() {
        let s = run(Scale::SMOKE);
        assert_eq!(s.traces.len(), 6);
        // A couple of features always carry signal at this scale.
        assert!(s.traces.iter().any(|(_, _, steps)| !steps.is_empty()));
    }

    #[test]
    fn selected_models_fit_well() {
        let s = run(Scale::SMOKE);
        for (nvm, config, steps) in &s.traces {
            if let Some(last) = steps.last() {
                assert!(
                    last.r_squared > 0.3,
                    "{nvm} {config}: final R² {}",
                    last.r_squared
                );
            }
        }
    }

    #[test]
    fn render_names_features() {
        let text = run(Scale::SMOKE).render();
        assert!(text.contains("R²="));
        assert!(text.contains("Jan_S"));
    }
}
