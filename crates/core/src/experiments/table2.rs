//! Table II — NVM cell parameters, with heuristic completion demonstrated
//! from reported-only inputs.

use nvm_llc_cell::{technologies, CellParams, Derivation, HeuristicEngine, Param};

use crate::tables::{num, TextTable};

/// The Table II reproduction: the canonical (paper-transcribed) dataset
/// and an independent re-derivation from reported values only.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The canonical Table II columns.
    pub canonical: Vec<CellParams>,
    /// The same technologies completed by our heuristic engine from
    /// reported values only, with derivation logs.
    pub rederived: Vec<(CellParams, Vec<Derivation>)>,
}

/// Runs the Table II experiment.
///
/// # Panics
///
/// Panics if the heuristic engine cannot complete a technology — that
/// would mean the shipped dataset is broken, which the cell crate's own
/// tests rule out.
pub fn run() -> Table2 {
    let canonical = technologies::all_nvms();
    let engine = HeuristicEngine::new(technologies::all_nvms_reported());
    let rederived = technologies::all_nvms_reported()
        .into_iter()
        .map(|cell| {
            let name = cell.name().to_owned();
            engine
                .complete(cell)
                .unwrap_or_else(|e| panic!("completing {name}: {e}"))
        })
        .collect();
    Table2 {
        canonical,
        rederived,
    }
}

impl Table2 {
    /// Fraction of heuristically-derived canonical values that the
    /// independent re-derivation reproduces within `tolerance` (relative).
    pub fn rederivation_agreement(&self, tolerance: f64) -> f64 {
        let mut checked = 0usize;
        let mut agreed = 0usize;
        for (canon, (derived, _)) in self.canonical.iter().zip(&self.rederived) {
            for param in Param::ALL {
                let (Some(c), Some(d)) = (canon.get(param), derived.get(param)) else {
                    continue;
                };
                if canon
                    .provenance(param)
                    .is_some_and(nvm_llc_cell::Provenance::is_derived)
                {
                    checked += 1;
                    if (c - d).abs() / c.abs().max(1e-12) <= tolerance {
                        agreed += 1;
                    }
                }
            }
        }
        if checked == 0 {
            1.0
        } else {
            agreed as f64 / checked as f64
        }
    }

    /// Renders Table II: one column per technology, one row per
    /// parameter, values carrying the paper's `*`/`†` provenance markers.
    pub fn render(&self) -> String {
        let mut headers = vec!["parameter".to_owned()];
        headers.extend(self.canonical.iter().map(|c| c.name().to_owned()));
        let mut table = TextTable::new(headers);

        let mut class_row = vec!["class".to_owned()];
        class_row.extend(self.canonical.iter().map(|c| c.class().to_string()));
        table.row(class_row);
        let mut year_row = vec!["year".to_owned()];
        year_row.extend(self.canonical.iter().map(|c| c.year().to_string()));
        table.row(year_row);

        for param in Param::ALL {
            let mut row = vec![param.to_string()];
            for cell in &self.canonical {
                row.push(match cell.get(param) {
                    Some(v) => format!(
                        "{}{}",
                        num(v),
                        cell.provenance(param).unwrap_or_default().marker()
                    ),
                    None => String::new(),
                });
            }
            table.row(row);
        }
        format!(
            "Table II — NVM cell parameters († electrical, * interpolated/similarity)\n{}",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rederivation_reproduces_most_starred_values() {
        let t = run();
        // The electrical (†) derivations match near-exactly; the */donor
        // choices can legitimately differ, so require a majority within
        // 50% rather than unanimity.
        let agreement = t.rederivation_agreement(0.5);
        assert!(agreement >= 0.5, "agreement {agreement}");
        // And the engine always produces *valid* complete cells.
        for (cell, _) in &t.rederived {
            assert!(cell.validate().is_ok());
        }
    }

    #[test]
    fn render_contains_all_technologies_and_markers() {
        let text = run().render();
        for name in [
            "Oh", "Chen", "Kang", "Close", "Chung", "Jan", "Umeki", "Xue", "Hayakawa", "Zhang",
        ] {
            assert!(text.contains(name), "{name} missing");
        }
        assert!(text.contains('†'));
        assert!(text.contains('*'));
        assert!(text.contains("set pulse"));
    }

    #[test]
    fn xue_rederivation_is_exact() {
        let t = run();
        let (xue, log) = t.rederived.iter().find(|(c, _)| c.name() == "Xue").unwrap();
        assert!(log.is_empty());
        assert_eq!(xue, &technologies::xue());
    }
}
