//! Table III — Gainestown LLC models: the paper's NVSim outputs
//! (reference) next to this repository's analytical re-derivation
//! (generated), for both fixed-capacity and fixed-area.

use nvm_llc_cell::technologies;
use nvm_llc_circuit::{fixed_area, reference, CacheModeler, LlcModel};

use crate::tables::{num, TextTable};

/// One technology's pair of models.
#[derive(Debug, Clone)]
pub struct ModelPair {
    /// The paper's published model.
    pub reference: LlcModel,
    /// Our analytical model's output.
    pub generated: LlcModel,
}

/// The full Table III reproduction.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Fixed-capacity (2 MB) pairs, Table III column order, SRAM last.
    pub fixed_capacity: Vec<ModelPair>,
    /// Fixed-area (6.55 mm² budget) pairs.
    pub fixed_area: Vec<ModelPair>,
}

/// Runs the Table III experiment: generate every model analytically and
/// pair it with the paper's published row.
///
/// # Panics
///
/// Panics if a shipped technology fails to model — prevented by the
/// circuit crate's tests.
pub fn run() -> Table3 {
    let mut cells = technologies::all_nvms();
    cells.push(technologies::sram_baseline());

    let ref_cap = reference::fixed_capacity();
    let ref_area = reference::fixed_area();

    let mut fixed_capacity = Vec::new();
    let mut fixed_area_rows = Vec::new();
    for cell in cells {
        let name = cell.name().to_owned();
        let modeler = CacheModeler::new(cell);
        let generated_cap = modeler
            .model(2 * 1024 * 1024)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let generated_area =
            fixed_area::paper_fixed_area_model(&modeler).unwrap_or_else(|e| panic!("{name}: {e}"));
        fixed_capacity.push(ModelPair {
            reference: reference::by_name(&ref_cap, &name).expect("reference row"),
            generated: generated_cap,
        });
        fixed_area_rows.push(ModelPair {
            reference: reference::by_name(&ref_area, &name).expect("reference row"),
            generated: generated_area,
        });
    }
    Table3 {
        fixed_capacity,
        fixed_area: fixed_area_rows,
    }
}

fn render_block(title: &str, pairs: &[ModelPair]) -> String {
    let mut headers = vec!["metric".to_owned()];
    headers.extend(pairs.iter().map(|p| p.reference.display_name()));
    let mut table = TextTable::new(headers);
    type Getter = fn(&LlcModel) -> f64;
    let metrics: [(&str, Getter); 8] = [
        ("capacity [MB]", |m| m.capacity.value()),
        ("area [mm^2]", |m| m.area.value()),
        ("tag latency [ns]", |m| m.tag_latency.value()),
        ("read latency [ns]", |m| m.read_latency.value()),
        ("write latency [ns]", |m| m.write_latency().value()),
        ("hit energy [nJ]", |m| m.hit_energy.value()),
        ("write energy [nJ]", |m| m.write_energy.value()),
        ("leakage [W]", |m| m.leakage.value()),
    ];
    for (label, get) in metrics {
        let mut ref_row = vec![format!("{label} (paper)")];
        ref_row.extend(pairs.iter().map(|p| num(get(&p.reference))));
        table.row(ref_row);
        let mut gen_row = vec![format!("{label} (ours)")];
        gen_row.extend(pairs.iter().map(|p| num(get(&p.generated))));
        table.row(gen_row);
    }
    format!("{title}\n{}", table.render())
}

impl Table3 {
    /// Renders both blocks of Table III, paper and generated rows
    /// interleaved per metric.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            render_block(
                "Table III (top) — fixed-capacity LLC models (2 MB)",
                &self.fixed_capacity
            ),
            render_block(
                "Table III (bottom) — fixed-area LLC models (6.55 mm² budget)",
                &self.fixed_area
            ),
        )
    }

    /// Geometric-mean ratio generated/reference for a metric across the
    /// fixed-capacity block — the model-error summary EXPERIMENTS.md
    /// records.
    pub fn geomean_ratio(&self, get: fn(&LlcModel) -> f64) -> f64 {
        let logs: Vec<f64> = self
            .fixed_capacity
            .iter()
            .map(|p| (get(&p.generated) / get(&p.reference)).ln())
            .collect();
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_all_eleven_technologies() {
        let t = run();
        assert_eq!(t.fixed_capacity.len(), 11);
        assert_eq!(t.fixed_area.len(), 11);
        assert_eq!(t.fixed_capacity.last().unwrap().reference.name, "SRAM");
    }

    #[test]
    fn generated_write_latency_geomean_within_2x() {
        let t = run();
        let r = t.geomean_ratio(|m| m.write_latency().value());
        assert!((0.5..=2.0).contains(&r), "geomean ratio {r}");
    }

    #[test]
    fn generated_leakage_geomean_within_3x() {
        let t = run();
        let r = t.geomean_ratio(|m| m.leakage.value());
        assert!((1.0 / 3.0..=3.0).contains(&r), "geomean ratio {r}");
    }

    #[test]
    fn render_shows_both_blocks_and_both_sources() {
        let text = run().render();
        assert!(text.contains("fixed-capacity"));
        assert!(text.contains("fixed-area"));
        assert!(text.contains("(paper)"));
        assert!(text.contains("(ours)"));
        assert!(text.contains("Zhang_R"));
    }
}
