//! Figure 1 — fixed-capacity speedup, LLC energy, and ED²P, normalized to
//! the SRAM baseline, for single-threaded (1a) and multi-threaded (1b)
//! workloads.

use nvm_llc_sim::MatrixRow;
use nvm_llc_trace::workloads;

use crate::experiments::{evaluator, Configuration};
use crate::scale::Scale;
use crate::tables::{num, TextTable};

/// A full figure: both threading panels.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Which LLC sizing configuration ran.
    pub configuration: Configuration,
    /// Single-threaded panel (Figure a).
    pub single_threaded: Vec<MatrixRow>,
    /// Multi-threaded panel (Figure b).
    pub multi_threaded: Vec<MatrixRow>,
}

/// Runs the fixed-capacity evaluation (Figure 1).
pub fn run(scale: Scale) -> Figure {
    run_configuration(Configuration::FixedCapacity, scale)
}

/// Shared driver for Figures 1 and 2.
pub fn run_configuration(configuration: Configuration, scale: Scale) -> Figure {
    let eval = evaluator(configuration, scale);
    Figure {
        configuration,
        single_threaded: eval.run_all(&workloads::single_threaded()),
        multi_threaded: eval.run_all(&workloads::multi_threaded()),
    }
}

impl Figure {
    /// All rows, single-threaded first.
    pub fn all_rows(&self) -> impl Iterator<Item = &MatrixRow> {
        self.single_threaded
            .iter()
            .chain(self.multi_threaded.iter())
    }

    /// The row for one workload.
    pub fn row(&self, workload: &str) -> Option<&MatrixRow> {
        self.all_rows().find(|r| r.workload == workload)
    }

    /// Renders the three metric panels (speedup / LLC energy / ED²P) for
    /// one threading class.
    fn render_panel(&self, title: &str, rows: &[MatrixRow]) -> String {
        let mut out = String::new();
        type Get = fn(&nvm_llc_sim::MatrixEntry) -> f64;
        let metrics: [(&str, Get); 3] = [
            ("normalized speedup", |e| e.speedup),
            ("normalized LLC energy", |e| e.energy),
            ("normalized ED^2P", |e| e.ed2p),
        ];
        for (metric, get) in metrics {
            let mut headers = vec!["bmk".to_owned()];
            if let Some(first) = rows.first() {
                headers.extend(first.entries.iter().map(|e| e.llc.clone()));
            }
            let mut t = TextTable::new(headers);
            for row in rows {
                let mut cells = vec![row.workload.clone()];
                cells.extend(row.entries.iter().map(|e| num(get(e))));
                t.row(cells);
            }
            out.push_str(&format!("{title} — {metric} (SRAM = 1.0)\n"));
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// Renders the whole figure.
    pub fn render(&self) -> String {
        let (fig, a, b) = match self.configuration {
            Configuration::FixedCapacity => (
                "Figure 1",
                "Fig 1a (single-threaded)",
                "Fig 1b (multi-threaded)",
            ),
            Configuration::FixedArea => (
                "Figure 2",
                "Fig 2a (single-threaded)",
                "Fig 2b (multi-threaded)",
            ),
        };
        format!(
            "{fig} — Gainestown with {} LLC\n{}{}",
            self.configuration,
            self.render_panel(a, &self.single_threaded),
            self.render_panel(b, &self.multi_threaded),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Figure {
        crate::experiments::shared::fig1()
    }

    #[test]
    fn panels_cover_the_paper_split() {
        let f = fig();
        assert_eq!(f.single_threaded.len(), 11);
        assert_eq!(f.multi_threaded.len(), 9);
        assert_eq!(f.configuration, Configuration::FixedCapacity);
    }

    #[test]
    fn single_threaded_performance_is_near_sram() {
        // §V-A.1: "a loss in performance neighboring -1% to -3%", with
        // occasional parity or wins. Allow the synthetic-trace band.
        let f = fig();
        for row in &f.single_threaded {
            for e in &row.entries {
                assert!(
                    (0.7..=1.2).contains(&e.speedup),
                    "{}/{}: speedup {}",
                    row.workload,
                    e.llc,
                    e.speedup
                );
            }
        }
    }

    #[test]
    fn nvm_energy_savings_reach_an_order_of_magnitude() {
        // §V-A.2: "NVM LLC energy is up to 10× less than SRAM".
        let f = fig();
        let best = f
            .all_rows()
            .flat_map(|r| r.entries.iter())
            .map(|e| e.energy)
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.15, "best normalized energy {best}");
    }

    #[test]
    fn kang_and_oh_are_the_energy_worst_cases() {
        // §V-A.2: Kang_P and Oh_P exhibit worst-case LLC energy. Nearly
        // write-free workloads (x264's 90% write footprint is three
        // orders below its reads') legitimately escape the PCRAM write
        // penalty, so require the PCRAM pair to be worst in the vast
        // majority of rows and globally.
        let f = fig();
        let mut pcram_worst = 0usize;
        let mut rows = 0usize;
        for row in f.all_rows() {
            rows += 1;
            let worst = row
                .entries
                .iter()
                .max_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap())
                .unwrap();
            if worst.llc == "Kang_P" || worst.llc == "Oh_P" {
                pcram_worst += 1;
            }
        }
        assert!(
            pcram_worst * 4 >= rows * 3,
            "PCRAM worst in only {pcram_worst}/{rows} rows"
        );
        // And the single worst normalized energy anywhere belongs to
        // Kang_P, whose 375 nJ writes top Table III.
        let global_worst = f
            .all_rows()
            .flat_map(|r| r.entries.iter())
            .max_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap())
            .unwrap();
        assert_eq!(global_worst.llc, "Kang_P");
    }

    #[test]
    fn pcram_energy_can_exceed_sram_on_write_heavy_workloads() {
        // §V-A.2: Kang/Oh up to ~6× more energy than SRAM.
        let f = fig();
        let kang_bzip2 = f.row("bzip2").unwrap().entry("Kang_P").unwrap().energy;
        assert!(kang_bzip2 > 1.5, "Kang on bzip2: {kang_bzip2}");
    }

    #[test]
    fn jan_is_among_the_most_energy_efficient() {
        // §V-A.7: "The most energy-efficient NVM is Jan_S" for most
        // workloads — its 0.048 W leakage dominates once runs reach
        // steady state. Our synthetic traces are more miss-intensive per
        // instruction than the originals, so we require Jan to win
        // outright on several workloads and stay top-3 on a majority.
        let f = fig();
        let mut jan_best = 0;
        let mut jan_top3 = 0;
        let mut rows = 0;
        for row in f.all_rows() {
            rows += 1;
            let jan = row.entry("Jan_S").unwrap().energy;
            let better = row.entries.iter().filter(|e| e.energy < jan).count();
            if better == 0 {
                jan_best += 1;
            }
            if better <= 2 {
                jan_top3 += 1;
            }
        }
        assert!(jan_best >= 3, "Jan best in only {jan_best}/{rows} rows");
        assert!(
            jan_top3 * 2 > rows,
            "Jan top-3 in only {jan_top3}/{rows} rows"
        );
    }

    #[test]
    fn ed2p_is_superior_to_sram_for_most_nvms() {
        // §V-A.6: "NVM ED²P is superior to SRAM for virtually all cases".
        let f = fig();
        let mut better = 0usize;
        let mut total = 0usize;
        for row in f.all_rows() {
            for e in &row.entries {
                total += 1;
                if e.ed2p < 1.0 {
                    better += 1;
                }
            }
        }
        assert!(
            better as f64 / total as f64 > 0.6,
            "only {better}/{total} beat SRAM ED²P"
        );
    }

    #[test]
    fn render_contains_all_three_metrics() {
        let text = fig().render();
        assert!(text.contains("normalized speedup"));
        assert!(text.contains("normalized LLC energy"));
        assert!(text.contains("normalized ED^2P"));
        assert!(text.contains("Fig 1a"));
        assert!(text.contains("Fig 1b"));
    }
}
