//! Figure 2 — fixed-area speedup, LLC energy, and ED²P: every technology
//! grown to the SRAM area budget, so dense NVMs trade latency for
//! capacity.

use crate::experiments::fig1::{run_configuration, Figure};
use crate::experiments::Configuration;
use crate::scale::Scale;

/// Runs the fixed-area evaluation (Figure 2).
pub fn run(scale: Scale) -> Figure {
    run_configuration(Configuration::FixedArea, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Figure {
        crate::experiments::shared::fig2()
    }

    #[test]
    fn uses_fixed_area_models() {
        let f = fig();
        assert_eq!(f.configuration, Configuration::FixedArea);
        // The capacity benefit must show in mpki: Zhang's 128 MB LLC
        // misses far less than it does at 2 MB on a workload whose hot
        // working set dwarfs the baseline (gobmk's ~13 MB).
        let row = f.row("gobmk").unwrap();
        let zhang = row.entry("Zhang_R").unwrap();
        let fixed_cap = crate::experiments::shared::fig1();
        let zhang_cap = fixed_cap.row("gobmk").unwrap().entry("Zhang_R").unwrap();
        assert!(
            zhang.result.stats.llc_mpki() < zhang_cap.result.stats.llc_mpki() / 1.5,
            "fixed-area mpki {} vs fixed-cap {}",
            zhang.result.stats.llc_mpki(),
            zhang_cap.result.stats.llc_mpki()
        );
    }

    #[test]
    fn dense_nvms_speed_up_capacity_starved_workloads() {
        // §V-B: high-capacity NVMs gain >10% on capacity-starved
        // workloads; Hayakawa_R achieves large wins (gobmk +60% in the
        // paper).
        let f = fig();
        let mut best_gain: f64 = 0.0;
        for row in f.all_rows() {
            for name in ["Hayakawa_R", "Zhang_R", "Xue_S", "Chung_S"] {
                if let Some(e) = row.entry(name) {
                    best_gain = best_gain.max(e.speedup);
                }
            }
        }
        assert!(best_gain > 1.08, "best dense-NVM speedup {best_gain}");
    }

    #[test]
    fn gobmk_prefers_hayakawa() {
        // §V-B.7: for gobmk, Hayakawa_R outperforms all technologies —
        // its 32 MB swallows gobmk's ~16 MB footprint with a modest read
        // latency.
        let f = fig();
        let row = f.row("gobmk").unwrap();
        let hayakawa = row.entry("Hayakawa_R").unwrap();
        assert!(
            hayakawa.speedup >= row.best_speedup().unwrap().speedup - 0.02,
            "Hayakawa {} vs best {}",
            hayakawa.speedup,
            row.best_speedup().unwrap().speedup
        );
    }

    #[test]
    fn zhang_can_lose_performance_despite_capacity() {
        // §V-B.1: Zhang_R's 9.5 ns reads cost it on some workloads (the
        // paper's gobmk −40%): somewhere it must be the slower of the
        // dense technologies.
        let f = fig();
        let mut zhang_loses_somewhere = false;
        for row in f.all_rows() {
            let zhang = row.entry("Zhang_R").unwrap();
            let hayakawa = row.entry("Hayakawa_R").unwrap();
            if zhang.speedup < hayakawa.speedup - 0.02 {
                zhang_loses_somewhere = true;
            }
        }
        assert!(zhang_loses_somewhere);
    }

    #[test]
    fn pcram_write_energy_still_worst_in_fixed_area() {
        // §V-B.2: Kang_P and Oh_P remain the energy outliers on
        // write-carrying workloads; on nearly write-free ones the 9 W
        // leakage of the 128 MB Zhang_R takes over (§V-C discusses
        // exactly that leakage). Require the PCRAM pair to be worst in a
        // majority of rows.
        let f = fig();
        let mut pcram_worst = 0usize;
        let mut rows = 0usize;
        for row in f.all_rows() {
            rows += 1;
            let worst = row
                .entries
                .iter()
                .max_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap())
                .unwrap();
            if worst.llc == "Kang_P" || worst.llc == "Oh_P" {
                pcram_worst += 1;
            } else {
                assert!(
                    worst.llc == "Zhang_R" || worst.llc == "Hayakawa_R",
                    "{}: unexpected worst {}",
                    row.workload,
                    worst.llc
                );
            }
        }
        assert!(
            pcram_worst * 2 >= rows,
            "PCRAM worst in only {pcram_worst}/{rows} rows"
        );
    }

    #[test]
    fn render_is_labeled_figure_2() {
        let text = fig().render();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("fixed-area"));
    }
}
