//! Deep-learning workload extension — the evaluation the paper points to
//! next (Section IV names Fathom and TBD as the suites "more focused on
//! deep learning tasks" than the cpu2017 trio; Section VI concludes a
//! statistical-inference architecture should pick a density-targeted
//! NVM). This experiment runs the DL extension suite through the same
//! harness and checks whether that conclusion carries over.

use nvm_llc_sim::MatrixRow;
use nvm_llc_trace::workloads;

use crate::experiments::{evaluator, Configuration};
use crate::scale::Scale;
use crate::tables::{num, TextTable};

/// The DL-extension evaluation output.
#[derive(Debug, Clone)]
pub struct DlExtension {
    /// Fixed-capacity rows per DL workload.
    pub fixed_capacity: Vec<MatrixRow>,
    /// Fixed-area rows per DL workload.
    pub fixed_area: Vec<MatrixRow>,
}

/// Runs the DL extension suite through both configurations.
pub fn run(scale: Scale) -> DlExtension {
    let dl = workloads::deep_learning();
    DlExtension {
        fixed_capacity: evaluator(Configuration::FixedCapacity, scale).run_all(&dl),
        fixed_area: evaluator(Configuration::FixedArea, scale).run_all(&dl),
    }
}

impl DlExtension {
    /// Rows for one configuration.
    pub fn rows(&self, configuration: Configuration) -> &[MatrixRow] {
        match configuration {
            Configuration::FixedCapacity => &self.fixed_capacity,
            Configuration::FixedArea => &self.fixed_area,
        }
    }

    /// The best-ED²P technology per workload in a configuration.
    pub fn picks(&self, configuration: Configuration) -> Vec<(String, String)> {
        self.rows(configuration)
            .iter()
            .map(|row| {
                let best = row
                    .entries
                    .iter()
                    .min_by(|a, b| a.ed2p.partial_cmp(&b.ed2p).expect("finite"))
                    .expect("non-empty row");
                (row.workload.clone(), best.llc.clone())
            })
            .collect()
    }

    /// Renders both configurations with per-workload winners.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Deep-learning extension suite (Fathom/TBD-style) — the paper's\n\
             suggested next workloads, evaluated on the same harness\n\n",
        );
        for configuration in Configuration::ALL {
            let rows = self.rows(configuration);
            let mut headers = vec!["bmk".to_owned()];
            if let Some(first) = rows.first() {
                headers.extend(first.entries.iter().map(|e| e.llc.clone()));
            }
            let mut t = TextTable::new(headers);
            for row in rows {
                let mut cells = vec![format!("{} ED2P", row.workload)];
                cells.extend(row.entries.iter().map(|e| num(e.ed2p)));
                t.row(cells);
            }
            out.push_str(&format!("== {configuration} (normalized ED²P) ==\n"));
            out.push_str(&t.render());
            for (workload, pick) in self.picks(configuration) {
                out.push_str(&format!("  {workload}: pick {pick}\n"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext() -> &'static DlExtension {
        // Evaluation scale: the embedding table's capacity sensitivity
        // needs enough accesses for reuse beyond 2 MB.
        static CELL: std::sync::OnceLock<DlExtension> = std::sync::OnceLock::new();
        CELL.get_or_init(|| run(Scale::DEFAULT))
    }

    #[test]
    fn evaluates_all_three_dl_workloads() {
        let e = ext();
        assert_eq!(e.fixed_capacity.len(), 3);
        assert_eq!(e.fixed_area.len(), 3);
        for row in e.rows(Configuration::FixedCapacity) {
            assert_eq!(row.entries.len(), 10);
        }
    }

    #[test]
    fn dl_inference_favors_nvm_over_sram_on_energy() {
        // Read-dominated DL inference is the best case for NVM LLCs: low
        // write traffic, leakage-dominated SRAM baseline.
        let e = ext();
        for row in e.rows(Configuration::FixedCapacity) {
            let best = row.best_energy().unwrap();
            assert!(
                best.energy < 0.2,
                "{}: best energy {}",
                row.workload,
                best.energy
            );
        }
    }

    #[test]
    fn section6_density_conclusion_holds_for_embedding_gather() {
        // The paper: a statistical-inference architecture should pick a
        // density-targeted NVM. The embedding gather's enormous table is
        // exactly that case — in the fixed-area configuration a
        // high-capacity technology must beat the 1 MB Jan_S on speed.
        let e = ext();
        let row = e
            .rows(Configuration::FixedArea)
            .iter()
            .find(|r| r.workload == "embedding_lookup")
            .unwrap();
        let dense_best = ["Zhang_R", "Hayakawa_R", "Xue_S", "Chung_S"]
            .iter()
            .filter_map(|n| row.entry(n))
            .map(|e| e.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        let jan = row.entry("Jan_S").unwrap().speedup;
        assert!(dense_best > jan, "dense {dense_best} vs Jan {jan}");
    }

    #[test]
    fn render_names_picks() {
        let text = ext().render();
        assert!(text.contains("pick"));
        assert!(text.contains("conv_inference"));
        assert!(text.contains("fixed-area"));
    }
}
