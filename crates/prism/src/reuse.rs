//! Reuse-distance (LRU stack distance) analysis and miss-ratio curves.
//!
//! The stack distance of an access is the number of *distinct* blocks
//! touched since the previous access to the same block. Under LRU, an
//! access hits a fully-associative cache of `C` blocks iff its stack
//! distance is `< C` — so one histogram predicts the miss ratio of
//! *every* capacity at once. This is the classic tool behind the paper's
//! working-set reasoning (fixed-area capacity choices, Section IV-C): it
//! shows exactly where a workload's miss curve falls off and therefore
//! which NVM capacity buys performance.
//!
//! The implementation is an exact O(n log n) computation using a
//! Fenwick (binary-indexed) tree over access timestamps.

use std::collections::HashMap;

use nvm_llc_trace::Trace;

/// Marker distance for cold (first-touch) accesses.
pub const COLD: u64 = u64::MAX;

/// A reuse-distance histogram over 64 B blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseHistogram {
    /// `counts[d]` = accesses with stack distance in `[2^d, 2^(d+1))`
    /// (bucket 0 holds distance 0 — immediate re-reference).
    buckets: Vec<u64>,
    /// First-touch (cold) accesses.
    cold: u64,
    /// Total accesses.
    total: u64,
}

/// Fenwick tree for prefix sums over timestamps.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Computes the exact LRU stack-distance histogram of a trace's block
/// stream (all threads interleaved, as they share the LLC).
pub fn reuse_histogram(trace: &Trace) -> ReuseHistogram {
    let n = trace.len();
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    let mut fenwick = Fenwick::new(n);
    let mut buckets = vec![0u64; 40];
    let mut cold = 0u64;

    for (t, event) in trace.iter().enumerate() {
        let block = event.block();
        match last_seen.insert(block, t) {
            None => {
                cold += 1;
            }
            Some(prev) => {
                // Each distinct block is marked at its most recent access
                // position, so the stack distance is the number of marks
                // strictly between `prev` and `t` — inclusive prefix sums
                // give `prefix(t-1) - prefix(prev)` (the mark at `prev`
                // itself is the block's own and is excluded by the
                // subtraction).
                let distance = fenwick.prefix(t - 1) - fenwick.prefix(prev);
                buckets[bucket_of(distance)] += 1;
                // The block's old position no longer marks it.
                fenwick.add(prev, -1);
            }
        }
        fenwick.add(t, 1);
    }

    ReuseHistogram {
        buckets,
        cold,
        total: n as u64,
    }
}

/// Power-of-two bucket index of a distance.
fn bucket_of(distance: u64) -> usize {
    if distance == 0 {
        0
    } else {
        (64 - distance.leading_zeros()) as usize
    }
}

impl ReuseHistogram {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Accesses with stack distance < `capacity_blocks` — the hits of a
    /// fully-associative LRU cache of that size.
    pub fn hits_at(&self, capacity_blocks: u64) -> u64 {
        if capacity_blocks == 0 {
            return 0;
        }
        // Sum whole buckets below the capacity's bucket; the straddling
        // bucket is apportioned linearly.
        let cap_bucket = bucket_of(capacity_blocks);
        let mut hits: u64 = self.buckets[..cap_bucket.min(self.buckets.len())]
            .iter()
            .sum();
        if cap_bucket < self.buckets.len() {
            let lo = if cap_bucket == 0 {
                0
            } else {
                1u64 << (cap_bucket - 1)
            };
            let hi = 1u64 << cap_bucket;
            let frac = (capacity_blocks.saturating_sub(lo)) as f64 / (hi - lo) as f64;
            hits += (self.buckets[cap_bucket] as f64 * frac) as u64;
        }
        hits
    }

    /// Predicted miss ratio of a fully-associative LRU cache of
    /// `capacity_blocks` blocks (cold misses included).
    pub fn miss_ratio_at(&self, capacity_blocks: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.hits_at(capacity_blocks) as f64 / self.total as f64
    }

    /// The miss-ratio curve sampled at power-of-two capacities from
    /// `min_blocks` to `max_blocks`, as `(capacity_blocks, miss_ratio)`.
    pub fn miss_ratio_curve(&self, min_blocks: u64, max_blocks: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let mut c = min_blocks.max(1).next_power_of_two();
        while c <= max_blocks {
            out.push((c, self.miss_ratio_at(c)));
            c *= 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_trace::{workloads, AccessKind, TraceEvent};

    fn trace_of(blocks: &[u64]) -> Trace {
        let events = blocks
            .iter()
            .map(|b| TraceEvent {
                tid: 0,
                addr: b * 64,
                kind: AccessKind::Read,
                gap_instructions: 0,
            })
            .collect();
        Trace::new(events, 1)
    }

    #[test]
    fn immediate_rereference_has_distance_zero() {
        let h = reuse_histogram(&trace_of(&[1, 1, 1]));
        assert_eq!(h.cold(), 1);
        assert_eq!(h.buckets[0], 2);
        // A 1-block cache catches both re-references.
        assert_eq!(h.hits_at(1), 2);
    }

    #[test]
    fn classic_stack_distance_example() {
        // a b c a: "a" re-referenced after touching {b, c} -> distance 2.
        let h = reuse_histogram(&trace_of(&[1, 2, 3, 1]));
        assert_eq!(h.cold(), 3);
        // distance 2 lands in bucket [2,4).
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.hits_at(2), 0); // cache of 2 blocks: still a miss
        assert_eq!(h.hits_at(4), 1); // cache of 4: hit
    }

    #[test]
    fn cyclic_sweep_thrash_es_small_caches() {
        // Repeating sweep over 8 blocks: all re-references at distance 7.
        let pattern: Vec<u64> = (0..8u64).cycle().take(64).collect();
        let h = reuse_histogram(&trace_of(&pattern));
        assert_eq!(h.cold(), 8);
        assert_eq!(h.miss_ratio_at(4), 1.0); // LRU thrash
        assert!(h.miss_ratio_at(8) < 0.2); // fits entirely
    }

    #[test]
    fn miss_ratio_curve_is_monotone_nonincreasing() {
        let trace = workloads::by_name("leela").unwrap().generate(3, 20_000);
        let h = reuse_histogram(&trace);
        let curve = h.miss_ratio_curve(16, 1 << 20);
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-12,
                "{:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
        // Bounded by [cold/total, 1].
        let floor = h.cold() as f64 / h.total() as f64;
        assert!(curve.last().unwrap().1 >= floor - 1e-12);
    }

    #[test]
    fn predicted_miss_ratio_tracks_workload_pressure() {
        // At the 2 MB LLC point (32 K blocks), the capacity-hungry gobmk
        // must predict a far higher miss ratio than hot-set leela.
        let gobmk = reuse_histogram(&workloads::by_name("gobmk").unwrap().generate(3, 40_000));
        let leela = reuse_histogram(&workloads::by_name("leela").unwrap().generate(3, 40_000));
        let at_2mb = 32 * 1024;
        assert!(
            gobmk.miss_ratio_at(at_2mb) > 1.5 * leela.miss_ratio_at(at_2mb),
            "gobmk {} vs leela {}",
            gobmk.miss_ratio_at(at_2mb),
            leela.miss_ratio_at(at_2mb)
        );
    }

    #[test]
    fn totals_balance() {
        let trace = workloads::by_name("ft").unwrap().generate(3, 5_000);
        let h = reuse_histogram(&trace);
        let bucketed: u64 = h.buckets.iter().sum();
        assert_eq!(bucketed + h.cold(), h.total());
        assert_eq!(h.total(), trace.len() as u64);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let h = reuse_histogram(&Trace::new(vec![], 1));
        assert_eq!(h.total(), 0);
        assert_eq!(h.miss_ratio_at(1024), 0.0);
    }
}
