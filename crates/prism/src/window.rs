//! Windowed (time-resolved) characterization: how a workload's memory
//! behaviour evolves over its execution.
//!
//! Whole-run features (Table VI) summarize a workload with one vector;
//! the windowed view splits the trace into fixed-size access windows and
//! characterizes each, exposing phase behaviour — the foundation for the
//! paper's future-work direction of studying how behaviour interacts
//! with architecture over time.

use std::collections::HashMap;

use nvm_llc_trace::Trace;

use crate::footprint;

/// Per-window summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window index (0-based).
    pub index: usize,
    /// Accesses in the window (the last window may be short).
    pub accesses: u64,
    /// Distinct 64 B blocks touched.
    pub unique_blocks: u64,
    /// Blocks covering 90% of the window's accesses.
    pub footprint_90: u64,
    /// Fraction of accesses that were writes.
    pub write_fraction: f64,
    /// Fraction of this window's blocks already seen in earlier windows.
    pub reuse_fraction: f64,
}

/// Splits `trace` into windows of `window_accesses` events and
/// characterizes each.
///
/// # Panics
///
/// Panics if `window_accesses` is zero.
pub fn windowed_profile(trace: &Trace, window_accesses: usize) -> Vec<WindowStats> {
    assert!(window_accesses > 0, "windows need at least one access");
    let mut seen_before: HashMap<u64, ()> = HashMap::new();
    let mut out = Vec::new();
    for (index, chunk) in trace.events().chunks(window_accesses).enumerate() {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let mut writes = 0u64;
        let mut reused = 0u64;
        for event in chunk {
            let block = event.block();
            *counts.entry(block).or_insert(0) += 1;
            if event.kind.is_write() {
                writes += 1;
            }
        }
        for block in counts.keys() {
            if seen_before.contains_key(block) {
                reused += 1;
            }
        }
        let stats = footprint::from_counts(&counts);
        let unique = counts.len() as u64;
        out.push(WindowStats {
            index,
            accesses: chunk.len() as u64,
            unique_blocks: unique,
            footprint_90: stats.footprint_90,
            write_fraction: writes as f64 / chunk.len() as f64,
            reuse_fraction: if unique == 0 {
                0.0
            } else {
                reused as f64 / unique as f64
            },
        });
        for block in counts.into_keys() {
            seen_before.insert(block, ());
        }
    }
    out
}

/// Detects phase boundaries: windows whose unique-block count departs
/// from the previous window's by more than `threshold` (relative).
pub fn phase_boundaries(windows: &[WindowStats], threshold: f64) -> Vec<usize> {
    windows
        .windows(2)
        .filter_map(|pair| {
            let prev = pair[0].unique_blocks.max(1) as f64;
            let next = pair[1].unique_blocks as f64;
            let change = (next - prev).abs() / prev;
            (change > threshold).then_some(pair[1].index)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_trace::{workloads, AccessKind, TraceEvent};

    fn event(addr: u64, kind: AccessKind) -> TraceEvent {
        TraceEvent {
            tid: 0,
            addr,
            kind,
            gap_instructions: 0,
        }
    }

    #[test]
    fn windows_partition_the_trace() {
        let trace = workloads::by_name("leela").unwrap().generate(5, 10_000);
        let windows = windowed_profile(&trace, 1_000);
        assert_eq!(windows.len(), 10);
        let total: u64 = windows.iter().map(|w| w.accesses).sum();
        assert_eq!(total, trace.len() as u64);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert!(w.footprint_90 <= w.unique_blocks);
        }
    }

    #[test]
    fn short_final_window_is_kept() {
        let trace = workloads::by_name("tonto").unwrap().generate(5, 1_050);
        let windows = windowed_profile(&trace, 500);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[2].accesses, 50);
    }

    #[test]
    fn reuse_fraction_rises_once_the_hot_set_is_established() {
        // A hot-set workload keeps revisiting the same blocks: later
        // windows overlap earlier ones heavily.
        let trace = workloads::by_name("leela").unwrap().generate(5, 30_000);
        let windows = windowed_profile(&trace, 5_000);
        assert_eq!(windows[0].reuse_fraction, 0.0);
        let last = windows.last().unwrap();
        assert!(last.reuse_fraction > 0.3, "{}", last.reuse_fraction);
    }

    #[test]
    fn synthetic_phase_change_is_detected() {
        // Phase 1: 8 blocks; phase 2: 512 fresh blocks.
        let mut events = Vec::new();
        for i in 0..1000u64 {
            events.push(event((i % 8) * 64, AccessKind::Read));
        }
        for i in 0..1000u64 {
            events.push(event((1000 + (i % 512)) * 64, AccessKind::Read));
        }
        let trace = nvm_llc_trace::Trace::new(events, 1);
        let windows = windowed_profile(&trace, 500);
        let boundaries = phase_boundaries(&windows, 2.0);
        assert!(boundaries.contains(&2), "{boundaries:?}");
    }

    #[test]
    fn stable_behaviour_has_no_boundaries() {
        let mut events = Vec::new();
        for i in 0..4000u64 {
            events.push(event((i % 64) * 64, AccessKind::Read));
        }
        let trace = nvm_llc_trace::Trace::new(events, 1);
        let windows = windowed_profile(&trace, 1_000);
        assert!(phase_boundaries(&windows, 0.5).is_empty());
    }

    #[test]
    fn write_fraction_tracks_the_generator() {
        let w = workloads::by_name("ft").unwrap(); // ~49% writes
        let trace = w.generate(5, 10_000);
        let windows = windowed_profile(&trace, 10_000);
        let wf = windows[0].write_fraction;
        assert!((wf - (1.0 - w.read_fraction())).abs() < 0.05, "{wf}");
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_window_panics() {
        let trace = nvm_llc_trace::Trace::new(vec![], 1);
        let _ = windowed_profile(&trace, 0);
    }
}
