//! Shannon memory entropy (paper Section IV-B, equation (9)).
//!
//! *Global* memory entropy is computed over full addresses and captures
//! temporal locality: a workload that hammers few addresses has low
//! entropy. *Local* memory entropy skips the `M` lowest-order address
//! bits (the paper uses `M = 10`, reflecting page granularity) and
//! captures spatial locality of address-space regions.

use std::collections::HashMap;

/// The paper's choice of skipped low-order bits for local entropy.
pub const LOCAL_ENTROPY_SKIP_BITS: u32 = 10;

/// Accumulates an address stream and yields its Shannon entropy.
///
/// # Examples
///
/// ```
/// use nvm_llc_prism::entropy::EntropyAccumulator;
///
/// let mut acc = EntropyAccumulator::new();
/// for addr in [0u64, 64, 128, 192] {
///     acc.record(addr);
/// }
/// assert!((acc.entropy_bits() - 2.0).abs() < 1e-12); // 4 equiprobable symbols
/// ```
#[derive(Debug, Clone, Default)]
pub struct EntropyAccumulator {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl EntropyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `symbol` (an address, or an address with
    /// low bits dropped).
    pub fn record(&mut self, symbol: u64) {
        *self.counts.entry(symbol).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded symbols (with multiplicity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct symbols.
    pub fn unique(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Shannon entropy in bits (equation (9)):
    /// `H = -Σ p(xᵢ) log₂ p(xᵢ)`.
    ///
    /// Returns 0 for an empty stream.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        -self
            .counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// The per-symbol counts, for footprint analyses.
    pub fn counts(&self) -> &HashMap<u64, u64> {
        &self.counts
    }
}

/// Computes global entropy of an address iterator in one pass.
pub fn global_entropy<I: IntoIterator<Item = u64>>(addresses: I) -> f64 {
    let mut acc = EntropyAccumulator::new();
    for a in addresses {
        acc.record(a);
    }
    acc.entropy_bits()
}

/// Computes local entropy: addresses with the lowest
/// [`LOCAL_ENTROPY_SKIP_BITS`] bits dropped before accumulation.
pub fn local_entropy<I: IntoIterator<Item = u64>>(addresses: I) -> f64 {
    let mut acc = EntropyAccumulator::new();
    for a in addresses {
        acc.record(a >> LOCAL_ENTROPY_SKIP_BITS);
    }
    acc.entropy_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_has_zero_entropy() {
        assert_eq!(EntropyAccumulator::new().entropy_bits(), 0.0);
    }

    #[test]
    fn single_symbol_has_zero_entropy() {
        let mut acc = EntropyAccumulator::new();
        for _ in 0..100 {
            acc.record(42);
        }
        assert_eq!(acc.entropy_bits(), 0.0);
        assert_eq!(acc.unique(), 1);
        assert_eq!(acc.total(), 100);
    }

    #[test]
    fn uniform_over_2k_symbols_is_k_bits() {
        for k in [1u32, 4, 8] {
            let h = global_entropy(0..(1u64 << k));
            assert!((h - f64::from(k)).abs() < 1e-9, "k={k}, h={h}");
        }
    }

    #[test]
    fn skewed_distribution_has_lower_entropy_than_uniform() {
        let mut skew = EntropyAccumulator::new();
        for i in 0..1000u64 {
            skew.record(if i % 10 == 0 { i } else { 0 });
        }
        let uniform = global_entropy(0..1000u64);
        assert!(skew.entropy_bits() < uniform);
    }

    #[test]
    fn local_entropy_collapses_nearby_addresses() {
        // 1024 consecutive bytes fall in ≤ 2 pages of 1 KiB.
        let addrs: Vec<u64> = (0..1024u64).collect();
        let global = global_entropy(addrs.iter().copied());
        let local = local_entropy(addrs.iter().copied());
        assert!(global > 9.9);
        assert!(local < 1.0, "{local}");
    }

    #[test]
    fn local_entropy_preserves_far_addresses() {
        // Addresses a page apart stay distinct under the 10-bit skip.
        let addrs: Vec<u64> = (0..256u64).map(|i| i << 10).collect();
        let local = local_entropy(addrs.iter().copied());
        assert!((local - 8.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_is_permutation_invariant() {
        let a = global_entropy([1u64, 2, 3, 1, 2, 1]);
        let b = global_entropy([1u64, 1, 1, 2, 2, 3]);
        assert!((a - b).abs() < 1e-12);
    }
}
