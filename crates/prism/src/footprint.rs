//! Unique-address and 90%-footprint metrics (paper Section IV-B).
//!
//! * *Unique reads/writes* — the number of distinct addresses touched, a
//!   proxy for total address-space size.
//! * *90% memory footprint* — the number of hottest unique addresses that
//!   together absorb 90% of all accesses: the paper's working-set
//!   estimate. Computed by sorting addresses by access count, descending,
//!   and accumulating until 90% of accesses are covered.

use std::collections::HashMap;

/// Fraction of accesses the working-set estimate must cover.
pub const FOOTPRINT_COVERAGE: f64 = 0.9;

/// Address-stream statistics for one access kind (reads or writes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FootprintStats {
    /// Distinct addresses touched.
    pub unique: u64,
    /// Hottest-address count covering 90% of accesses.
    pub footprint_90: u64,
    /// Total accesses.
    pub total: u64,
}

/// Computes footprint statistics from per-address access counts.
pub fn from_counts(counts: &HashMap<u64, u64>) -> FootprintStats {
    let total: u64 = counts.values().sum();
    if total == 0 {
        return FootprintStats::default();
    }
    let mut sorted: Vec<u64> = counts.values().copied().collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let target = (total as f64 * FOOTPRINT_COVERAGE).ceil() as u64;
    let mut covered = 0u64;
    let mut footprint_90 = 0u64;
    for c in sorted {
        covered += c;
        footprint_90 += 1;
        if covered >= target {
            break;
        }
    }
    FootprintStats {
        unique: counts.len() as u64,
        footprint_90,
        total,
    }
}

/// One-pass convenience over an address iterator.
pub fn of_stream<I: IntoIterator<Item = u64>>(addresses: I) -> FootprintStats {
    let mut counts = HashMap::new();
    for a in addresses {
        *counts.entry(a).or_insert(0u64) += 1;
    }
    from_counts(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_is_all_zero() {
        assert_eq!(of_stream(std::iter::empty()), FootprintStats::default());
    }

    #[test]
    fn uniform_stream_needs_90_percent_of_addresses() {
        let s = of_stream(0..100u64);
        assert_eq!(s.unique, 100);
        assert_eq!(s.total, 100);
        assert_eq!(s.footprint_90, 90);
    }

    #[test]
    fn hot_address_shrinks_working_set() {
        // One address takes 95 of 100 accesses: it alone covers 90%.
        let mut v: Vec<u64> = vec![7; 95];
        v.extend(100..105u64);
        let s = of_stream(v);
        assert_eq!(s.unique, 6);
        assert_eq!(s.footprint_90, 1);
    }

    #[test]
    fn boundary_coverage_uses_ceiling() {
        // 10 accesses: target = 9. Two addresses with 5 each -> 2 needed.
        let v = vec![1u64, 1, 1, 1, 1, 2, 2, 2, 2, 2];
        let s = of_stream(v);
        assert_eq!(s.footprint_90, 2);
    }

    #[test]
    fn footprint_never_exceeds_unique() {
        let v: Vec<u64> = (0..1000).map(|i| i % 37).collect();
        let s = of_stream(v);
        assert!(s.footprint_90 <= s.unique);
        assert_eq!(s.unique, 37);
    }
}
