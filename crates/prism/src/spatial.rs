//! Spatial-locality characterization via stride profiling.
//!
//! The paper's metric suite (Section I, drawing on Shao & Brooks'
//! ISA-independent workload characterization \[24\]) includes *spatial
//! locality* alongside entropy and footprints. Local entropy captures it
//! indirectly; this module measures it directly: the distribution of
//! address strides between consecutive accesses of each thread.

use nvm_llc_trace::Trace;

/// Stride-distribution summary for one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StrideProfile {
    /// Strides of exactly one element (|Δ| ≤ 8 B): sequential word walks.
    pub sequential: u64,
    /// Small strides within one 64 B block (8 B < |Δ| < 64 B).
    pub intra_block: u64,
    /// Strides within one 4 KiB page (64 B ≤ |Δ| < 4 KiB).
    pub intra_page: u64,
    /// Everything farther: random/pointer-chasing jumps.
    pub far: u64,
}

impl StrideProfile {
    /// Total classified strides.
    pub fn total(&self) -> u64 {
        self.sequential + self.intra_block + self.intra_page + self.far
    }

    /// Spatial-locality score in `[0, 1]`: the fraction of strides that
    /// stay within a page, weighted toward the nearest bands
    /// (sequential = 1.0, intra-block = 0.75, intra-page = 0.25).
    pub fn locality_score(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        (self.sequential as f64 + 0.75 * self.intra_block as f64 + 0.25 * self.intra_page as f64)
            / n as f64
    }

    /// Fraction of far (beyond-page) strides — the "randomness" the
    /// paper's high-entropy workloads exhibit.
    pub fn far_fraction(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            self.far as f64 / n as f64
        }
    }
}

/// Profiles per-thread strides over a trace (strides never span threads:
/// each core has its own access stream).
pub fn stride_profile(trace: &Trace) -> StrideProfile {
    let mut last: Vec<Option<u64>> = vec![None; usize::from(trace.threads())];
    let mut profile = StrideProfile::default();
    for event in trace {
        let slot = &mut last[usize::from(event.tid)];
        if let Some(prev) = *slot {
            let delta = event.addr.abs_diff(prev);
            if delta <= 8 {
                profile.sequential += 1;
            } else if delta < 64 {
                profile.intra_block += 1;
            } else if delta < 4096 {
                profile.intra_page += 1;
            } else {
                profile.far += 1;
            }
        }
        *slot = Some(event.addr);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_trace::{workloads, AccessKind, Trace, TraceEvent};

    fn trace_of(addrs: &[u64]) -> Trace {
        Trace::new(
            addrs
                .iter()
                .map(|a| TraceEvent {
                    tid: 0,
                    addr: *a,
                    kind: AccessKind::Read,
                    gap_instructions: 0,
                })
                .collect(),
            1,
        )
    }

    #[test]
    fn sequential_walk_scores_high() {
        let addrs: Vec<u64> = (0..1000u64).map(|i| i * 8).collect();
        let p = stride_profile(&trace_of(&addrs));
        assert_eq!(p.sequential, 999);
        assert!(p.locality_score() > 0.99);
        assert_eq!(p.far_fraction(), 0.0);
    }

    #[test]
    fn page_jumps_score_low() {
        let addrs: Vec<u64> = (0..1000u64).map(|i| i * 1_000_003).collect();
        let p = stride_profile(&trace_of(&addrs));
        assert_eq!(p.far, 999);
        assert_eq!(p.locality_score(), 0.0);
        assert!((p.far_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strides_do_not_cross_threads() {
        // Two threads at distant bases, each walking sequentially: all
        // strides must classify as sequential, none as far.
        let mut events = Vec::new();
        for i in 0..100u64 {
            events.push(TraceEvent {
                tid: 0,
                addr: i * 8,
                kind: AccessKind::Read,
                gap_instructions: 0,
            });
            events.push(TraceEvent {
                tid: 1,
                addr: 1 << 30 | (i * 8),
                kind: AccessKind::Read,
                gap_instructions: 0,
            });
        }
        let p = stride_profile(&Trace::new(events, 2));
        assert_eq!(p.far, 0, "{p:?}");
        assert_eq!(p.sequential, 198);
    }

    #[test]
    fn streaming_workloads_outscore_pointer_chasers() {
        let scaled = |name: &str| {
            let w = workloads::by_name(name).unwrap();
            stride_profile(&w.generate(7, w.scaled_accesses(30_000))).locality_score()
        };
        // GemsFDTD streams (0.65 stream fraction, dwell 16); deepsjeng
        // jumps through a 32 MB table.
        assert!(
            scaled("GemsFDTD") > 2.0 * scaled("deepsjeng"),
            "{} vs {}",
            scaled("GemsFDTD"),
            scaled("deepsjeng")
        );
    }

    #[test]
    fn empty_trace_is_zero() {
        let p = stride_profile(&Trace::new(vec![], 1));
        assert_eq!(p.total(), 0);
        assert_eq!(p.locality_score(), 0.0);
    }

    #[test]
    fn totals_balance() {
        let trace = workloads::by_name("milc").unwrap().generate(7, 5_000);
        let p = stride_profile(&trace);
        // One stride per access after each thread's first.
        assert_eq!(p.total(), trace.len() as u64 - 1);
    }
}
