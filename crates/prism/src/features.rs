//! The architecture-agnostic feature vector (the columns of Table VI).

use std::fmt;
use std::ops::Index;

/// One of the ten Table VI features, split by reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FeatureKind {
    /// `H_rg` — global read entropy, bits.
    GlobalReadEntropy,
    /// `H_rl` — local read entropy, bits.
    LocalReadEntropy,
    /// `H_wg` — global write entropy, bits.
    GlobalWriteEntropy,
    /// `H_wl` — local write entropy, bits.
    LocalWriteEntropy,
    /// `r_uniq` — unique read addresses.
    UniqueReads,
    /// `w_uniq` — unique write addresses.
    UniqueWrites,
    /// `90% ft_r` — 90% read footprint.
    ReadFootprint90,
    /// `90% ft_w` — 90% write footprint.
    WriteFootprint90,
    /// `r_total` — total reads.
    TotalReads,
    /// `w_total` — total writes.
    TotalWrites,
}

impl FeatureKind {
    /// All features in Table VI column order.
    pub const ALL: [FeatureKind; 10] = [
        FeatureKind::GlobalReadEntropy,
        FeatureKind::LocalReadEntropy,
        FeatureKind::GlobalWriteEntropy,
        FeatureKind::LocalWriteEntropy,
        FeatureKind::UniqueReads,
        FeatureKind::UniqueWrites,
        FeatureKind::ReadFootprint90,
        FeatureKind::WriteFootprint90,
        FeatureKind::TotalReads,
        FeatureKind::TotalWrites,
    ];

    /// The write-side features the paper finds predictive for AI
    /// workloads (Section VI).
    pub const WRITE_FEATURES: [FeatureKind; 5] = [
        FeatureKind::GlobalWriteEntropy,
        FeatureKind::LocalWriteEntropy,
        FeatureKind::UniqueWrites,
        FeatureKind::WriteFootprint90,
        FeatureKind::TotalWrites,
    ];

    /// Table VI's column header for this feature.
    pub fn label(self) -> &'static str {
        match self {
            FeatureKind::GlobalReadEntropy => "H_rg",
            FeatureKind::LocalReadEntropy => "H_rl",
            FeatureKind::GlobalWriteEntropy => "H_wg",
            FeatureKind::LocalWriteEntropy => "H_wl",
            FeatureKind::UniqueReads => "r_uniq",
            FeatureKind::UniqueWrites => "w_uniq",
            FeatureKind::ReadFootprint90 => "90%ft_r",
            FeatureKind::WriteFootprint90 => "90%ft_w",
            FeatureKind::TotalReads => "r_total",
            FeatureKind::TotalWrites => "w_total",
        }
    }

    /// Index of this feature in [`FeatureKind::ALL`].
    pub fn index(self) -> usize {
        FeatureKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is in ALL")
    }

    /// Whether this feature describes the write stream.
    pub fn is_write_feature(self) -> bool {
        FeatureKind::WRITE_FEATURES.contains(&self)
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A named feature vector: one row of Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    name: String,
    values: [f64; 10],
}

impl FeatureVector {
    /// Builds a feature vector for workload `name` with values in
    /// [`FeatureKind::ALL`] order.
    pub fn new(name: impl Into<String>, values: [f64; 10]) -> Self {
        FeatureVector {
            name: name.into(),
            values,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Value of one feature.
    pub fn get(&self, kind: FeatureKind) -> f64 {
        self.values[kind.index()]
    }

    /// All values in [`FeatureKind::ALL`] order.
    pub fn values(&self) -> &[f64; 10] {
        &self.values
    }

    /// Iterates `(kind, value)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureKind, f64)> + '_ {
        FeatureKind::ALL
            .iter()
            .map(|k| (*k, self.values[k.index()]))
    }
}

impl Index<FeatureKind> for FeatureVector {
    type Output = f64;

    fn index(&self, kind: FeatureKind) -> &f64 {
        &self.values[kind.index()]
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for (kind, value) in self.iter() {
            write!(f, " {kind}={value:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_ten_distinct_features() {
        let mut labels: Vec<_> = FeatureKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn index_round_trips() {
        for (i, k) in FeatureKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn write_features_are_flagged() {
        assert!(FeatureKind::GlobalWriteEntropy.is_write_feature());
        assert!(!FeatureKind::GlobalReadEntropy.is_write_feature());
        assert_eq!(FeatureKind::WRITE_FEATURES.len(), 5);
    }

    #[test]
    fn vector_access_by_kind_and_index_agree() {
        let v = FeatureVector::new("w", [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(v.get(FeatureKind::GlobalReadEntropy), 1.0);
        assert_eq!(v[FeatureKind::TotalWrites], 10.0);
        assert_eq!(v.iter().count(), 10);
        assert_eq!(v.name(), "w");
    }

    #[test]
    fn display_prints_labels() {
        let v = FeatureVector::new("w", [0.0; 10]);
        let s = v.to_string();
        assert!(s.contains("H_rg"));
        assert!(s.contains("w_total"));
    }
}
