//! # nvm-llc-prism — architecture-agnostic workload characterization
//!
//! The PRISM role in the paper's pipeline (Section IV-B): profile a
//! memory trace into architecture-agnostic features — global/local
//! Shannon entropy, unique address footprint, 90% footprint, and total
//! accesses — computed separately for reads and writes so the NVM
//! read/write asymmetry can be correlated against workload behaviour.
//!
//! ```
//! use nvm_llc_trace::workloads;
//! use nvm_llc_prism::{profiler, FeatureKind};
//!
//! let trace = workloads::by_name("cg").unwrap().generate(7, 20_000);
//! let features = profiler::characterize("cg", &trace);
//! // cg is nearly write-free (Table VI: 0.73 G reads vs 0.04 G writes).
//! assert!(features[FeatureKind::TotalReads] > 10.0 * features[FeatureKind::TotalWrites]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod entropy;
pub mod features;
pub mod footprint;
pub mod profiler;
pub mod reference;
pub mod reuse;
pub mod spatial;
pub mod window;

pub use entropy::{EntropyAccumulator, LOCAL_ENTROPY_SKIP_BITS};
pub use features::{FeatureKind, FeatureVector};
pub use footprint::FootprintStats;
pub use reuse::{reuse_histogram, ReuseHistogram};
pub use spatial::{stride_profile, StrideProfile};
pub use window::{phase_boundaries, windowed_profile, WindowStats};

#[cfg(test)]
mod proptests {
    use crate::entropy::EntropyAccumulator;
    use crate::footprint;
    use proptest::prelude::*;

    proptest! {
        /// Entropy is bounded by log2(unique symbols).
        #[test]
        fn entropy_upper_bound(symbols in proptest::collection::vec(0u64..64, 1..500)) {
            let mut acc = EntropyAccumulator::new();
            for s in &symbols {
                acc.record(*s);
            }
            let bound = (acc.unique() as f64).log2();
            prop_assert!(acc.entropy_bits() <= bound + 1e-9);
            prop_assert!(acc.entropy_bits() >= -1e-12);
        }

        /// The 90% footprint is monotone: it never exceeds the unique
        /// count and never undershoots 90% coverage.
        #[test]
        fn footprint_invariants(symbols in proptest::collection::vec(0u64..128, 1..500)) {
            let s = footprint::of_stream(symbols.iter().copied());
            prop_assert!(s.footprint_90 >= 1);
            prop_assert!(s.footprint_90 <= s.unique);
            prop_assert_eq!(s.total, symbols.len() as u64);
        }

        /// Adding a duplicate of the hottest symbol never increases the
        /// 90% footprint.
        #[test]
        fn footprint_monotone_under_hot_duplication(
            symbols in proptest::collection::vec(0u64..64, 2..300),
        ) {
            let base = footprint::of_stream(symbols.iter().copied());
            // Find the hottest symbol.
            let mut counts = std::collections::HashMap::new();
            for s in &symbols {
                *counts.entry(*s).or_insert(0u64) += 1;
            }
            let hottest = *counts.iter().max_by_key(|(_, c)| **c).unwrap().0;
            let mut more = symbols.clone();
            more.extend(std::iter::repeat_n(hottest, symbols.len()));
            let grown = footprint::of_stream(more.into_iter());
            prop_assert!(grown.footprint_90 <= base.footprint_90);
        }
    }
}
