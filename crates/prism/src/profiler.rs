//! Trace characterization: from a [`Trace`] to a [`FeatureVector`].
//!
//! This is the PRISM role in the paper's pipeline: profile a workload's
//! memory behaviour into architecture-agnostic features, reads and writes
//! separated to expose the NVM read/write asymmetry.

use nvm_llc_trace::Trace;

use crate::entropy::{EntropyAccumulator, LOCAL_ENTROPY_SKIP_BITS};
use crate::features::FeatureVector;
use crate::footprint;

/// Characterizes a trace into the ten Table VI features.
///
/// # Examples
///
/// ```
/// use nvm_llc_trace::workloads;
/// use nvm_llc_prism::profiler::characterize;
/// use nvm_llc_prism::FeatureKind;
///
/// let trace = workloads::by_name("leela").unwrap().generate(1, 20_000);
/// let features = characterize("leela", &trace);
/// assert!(features[FeatureKind::TotalReads] > features[FeatureKind::TotalWrites]);
/// ```
pub fn characterize(name: impl Into<String>, trace: &Trace) -> FeatureVector {
    let mut read_global = EntropyAccumulator::new();
    let mut read_local = EntropyAccumulator::new();
    let mut write_global = EntropyAccumulator::new();
    let mut write_local = EntropyAccumulator::new();

    for event in trace {
        if event.kind.is_read() {
            read_global.record(event.addr);
            read_local.record(event.addr >> LOCAL_ENTROPY_SKIP_BITS);
        } else {
            write_global.record(event.addr);
            write_local.record(event.addr >> LOCAL_ENTROPY_SKIP_BITS);
        }
    }

    let read_fp = footprint::from_counts(read_global.counts());
    let write_fp = footprint::from_counts(write_global.counts());

    FeatureVector::new(
        name,
        [
            read_global.entropy_bits(),
            read_local.entropy_bits(),
            write_global.entropy_bits(),
            write_local.entropy_bits(),
            read_fp.unique as f64,
            write_fp.unique as f64,
            read_fp.footprint_90 as f64,
            write_fp.footprint_90 as f64,
            read_fp.total as f64,
            write_fp.total as f64,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureKind as F;
    use nvm_llc_trace::workloads;

    fn features_of(name: &str, n: usize) -> FeatureVector {
        let w = workloads::by_name(name).unwrap();
        // Scale like the experiment harness does (relative volume, split
        // across threads) so single- and multi-threaded workloads are
        // compared over similar event totals.
        characterize(name, &w.generate(11, w.scaled_accesses(n)))
    }

    #[test]
    fn totals_match_trace_counts() {
        let w = workloads::by_name("ft").unwrap();
        let t = w.generate(3, 10_000);
        let f = characterize("ft", &t);
        assert_eq!(f[F::TotalReads] as u64, t.reads());
        assert_eq!(f[F::TotalWrites] as u64, t.writes());
    }

    #[test]
    fn local_entropy_never_exceeds_global() {
        for name in ["bzip2", "cg", "exchange2", "GemsFDTD"] {
            let f = features_of(name, 30_000);
            assert!(
                f[F::LocalReadEntropy] <= f[F::GlobalReadEntropy] + 1e-9,
                "{name}"
            );
            assert!(
                f[F::LocalWriteEntropy] <= f[F::GlobalWriteEntropy] + 1e-9,
                "{name}"
            );
        }
    }

    #[test]
    fn footprint_90_never_exceeds_unique() {
        for name in ["deepsjeng", "tonto", "mg"] {
            let f = features_of(name, 30_000);
            assert!(f[F::ReadFootprint90] <= f[F::UniqueReads], "{name}");
            assert!(f[F::WriteFootprint90] <= f[F::UniqueWrites], "{name}");
        }
    }

    #[test]
    fn gems_fdtd_has_the_largest_working_set_shape() {
        // Table VI: GemsFDTD's 90% footprints dwarf the other workloads'.
        // Trace lengths differ per workload (relative volume), so compare
        // the footprint *rate* — working set touched per read — which is
        // the Gems signature: it streams fresh memory nearly constantly,
        // while the hot-set workloads keep revisiting a small core.
        let rate = |f: &FeatureVector| f[F::ReadFootprint90] / f[F::TotalReads].max(1.0);
        let gems = features_of("GemsFDTD", 60_000);
        for other in ["tonto", "leela", "exchange2", "ep"] {
            let f = features_of(other, 60_000);
            assert!(
                rate(&gems) > 1.8 * rate(&f),
                "{other}: {} vs {}",
                rate(&gems),
                rate(&f)
            );
        }
    }

    #[test]
    fn exchange2_has_smallest_unique_but_among_highest_totals() {
        // Table VI's exchange2 signature: tiny unique footprint.
        let ex = features_of("exchange2", 60_000);
        let bzip2 = features_of("bzip2", 60_000);
        let deepsjeng = features_of("deepsjeng", 60_000);
        assert!(ex[F::UniqueReads] < bzip2[F::UniqueReads]);
        assert!(ex[F::UniqueReads] < deepsjeng[F::UniqueReads]);
        // Low entropy follows from the small footprint.
        assert!(ex[F::GlobalReadEntropy] < deepsjeng[F::GlobalReadEntropy]);
    }

    #[test]
    fn x264_is_read_heavy_with_narrow_writes() {
        // Table VI: x264 write 90% footprint is ~3 orders below reads'.
        let f = features_of("x264", 60_000);
        assert!(f[F::TotalReads] > 4.0 * f[F::TotalWrites]);
        assert!(f[F::WriteFootprint90] * 4.0 < f[F::ReadFootprint90]);
        assert!(f[F::GlobalWriteEntropy] < f[F::GlobalReadEntropy]);
    }

    #[test]
    fn deepsjeng_entropy_exceeds_leela() {
        // Bigger, colder footprint -> higher global entropy (Table VI:
        // 11.31 vs 10.13 bits).
        let d = features_of("deepsjeng", 60_000);
        let l = features_of("leela", 60_000);
        assert!(d[F::GlobalReadEntropy] > l[F::GlobalReadEntropy]);
    }

    #[test]
    fn empty_trace_characterizes_to_zeros() {
        let t = nvm_llc_trace::Trace::new(vec![], 1);
        let f = characterize("empty", &t);
        for (_, v) in f.iter() {
            assert_eq!(v, 0.0);
        }
    }
}
