//! The paper's published Table VI — workload features measured with PRISM
//! on the full benchmark runs — as a reference dataset.
//!
//! Units are normalized to raw counts: the paper prints `r_uniq`/`w_uniq`
//! in millions, the 90% footprints in thousands, and the totals in
//! billions; here every value is the absolute count.

use crate::features::FeatureVector;

fn fv(name: &str, v: [f64; 10]) -> FeatureVector {
    let [hrg, hrl, hwg, hwl, runiq_m, wuniq_m, ft_r_k, ft_w_k, rtot_g, wtot_g] = v;
    FeatureVector::new(
        name,
        [
            hrg,
            hrl,
            hwg,
            hwl,
            runiq_m * 1e6,
            wuniq_m * 1e6,
            ft_r_k * 1e3,
            ft_w_k * 1e3,
            rtot_g * 1e9,
            wtot_g * 1e9,
        ],
    )
}

/// Table VI: the 16 PRISM-characterized workloads, in row order.
pub fn table_6() -> Vec<FeatureVector> {
    vec![
        fv(
            "bzip2",
            [
                18.03, 10.23, 11.72, 5.90, 5.99, 5.88, 2505.38, 750.86, 4.30, 1.47,
            ],
        ),
        fv(
            "GemsFDTD",
            [
                19.92, 13.62, 22.27, 14.99, 116.88, 143.63, 76576.59, 113183.50, 1.30, 0.70,
            ],
        ),
        fv(
            "tonto",
            [10.97, 5.15, 10.25, 3.72, 0.30, 0.29, 5.59, 1.74, 1.10, 0.47],
        ),
        fv(
            "leela",
            [10.13, 4.07, 8.95, 3.01, 2.26, 5.06, 1.59, 1.29, 6.01, 2.35],
        ),
        fv(
            "exchange2",
            [8.79, 3.52, 8.61, 3.47, 0.03, 0.02, 0.64, 0.58, 62.28, 42.89],
        ),
        fv(
            "deepsjeng",
            [
                11.31, 5.69, 11.86, 5.93, 58.89, 68.28, 4.79, 4.33, 9.36, 4.43,
            ],
        ),
        fv(
            "vips",
            [
                15.17, 10.26, 17.79, 11.61, 12.02, 6.32, 1107.19, 1325.34, 1.91, 0.68,
            ],
        ),
        fv(
            "x264",
            [
                16.14, 7.43, 11.84, 4.04, 11.40, 9.28, 1585.49, 3.56, 18.07, 2.84,
            ],
        ),
        fv(
            "cg",
            [
                19.01, 11.71, 18.88, 11.96, 2.30, 2.36, 1015.43, 819.15, 0.73, 0.04,
            ],
        ),
        fv(
            "ep",
            [
                8.00, 4.81, 8.05, 4.74, 0.563, 1.47, 0.84, 113.18, 1.25, 0.54,
            ],
        ),
        fv(
            "ft",
            [
                16.47, 9.93, 17.07, 10.28, 2.73, 2.72, 342.64, 611.66, 0.28, 0.27,
            ],
        ),
        fv(
            "is",
            [
                15.23, 8.96, 15.65, 8.69, 2.20, 2.19, 1228.86, 794.26, 0.12, 0.06,
            ],
        ),
        fv(
            "lu",
            [
                9.57, 6.01, 16.02, 9.63, 0.844, 0.84, 289.46, 259.75, 17.84, 3.99,
            ],
        ),
        fv(
            "mg",
            [
                17.97, 11.80, 16.93, 10.18, 7.20, 7.29, 4249.78, 4767.97, 0.76, 0.16,
            ],
        ),
        fv(
            "sp",
            [
                18.69, 12.02, 18.21, 11.35, 1.14, 1.28, 556.75, 256.73, 9.23, 4.12,
            ],
        ),
        fv(
            "ua",
            [
                13.95, 8.17, 11.23, 5.69, 1.32, 1.57, 362.45, 106.25, 9.97, 5.85,
            ],
        ),
    ]
}

/// Looks up one workload's Table VI row by name.
pub fn by_name(name: &str) -> Option<FeatureVector> {
    table_6().into_iter().find(|f| f.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureKind as F;

    #[test]
    fn sixteen_rows() {
        assert_eq!(table_6().len(), 16);
    }

    #[test]
    fn gems_fdtd_has_extreme_footprints() {
        // "two orders of magnitude greater than all other use cases".
        let gems = by_name("GemsFDTD").unwrap();
        for row in table_6() {
            if row.name() != "GemsFDTD" {
                assert!(gems[F::ReadFootprint90] > 10.0 * row[F::ReadFootprint90]);
            }
        }
    }

    #[test]
    fn exchange2_extremes_match_the_papers_narrative() {
        // Largest total read+write footprint, smallest unique footprint.
        let ex = by_name("exchange2").unwrap();
        for row in table_6() {
            if row.name() != "exchange2" {
                assert!(ex[F::TotalReads] > row[F::TotalReads], "{}", row.name());
                assert!(ex[F::UniqueReads] < row[F::UniqueReads], "{}", row.name());
                assert!(ex[F::UniqueWrites] < row[F::UniqueWrites], "{}", row.name());
            }
        }
    }

    #[test]
    fn x264_and_lu_are_read_heavy() {
        for name in ["x264", "lu"] {
            let row = by_name(name).unwrap();
            assert!(row[F::TotalReads] > 4.0 * row[F::TotalWrites], "{name}");
        }
    }

    #[test]
    fn local_entropy_below_global_in_every_row() {
        for row in table_6() {
            assert!(row[F::LocalReadEntropy] < row[F::GlobalReadEntropy]);
            assert!(row[F::LocalWriteEntropy] < row[F::GlobalWriteEntropy]);
        }
    }

    #[test]
    fn ai_rows_present() {
        for name in ["deepsjeng", "leela", "exchange2"] {
            assert!(by_name(name).is_some());
        }
        assert!(by_name("gamess").is_none(), "PRISM-incompatible");
    }
}
