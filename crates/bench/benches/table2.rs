//! Regenerates Table II (NVM cell parameters with heuristic completion)
//! and times the heuristic engine.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::cell::{technologies, HeuristicEngine};
use nvm_llc::experiments::table2;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let result = table2::run();
    print_artifact("Table II — NVM cell parameters", &result.render());
    println!(
        "Re-derivation agreement with the paper's starred values (±50%): {:.0}%",
        result.rederivation_agreement(0.5) * 100.0
    );

    c.bench_function("heuristic_engine_completes_all_nvms", |b| {
        let engine = HeuristicEngine::new(technologies::all_nvms_reported());
        b.iter(|| {
            for cell in technologies::all_nvms_reported() {
                let (done, _) = engine.complete(cell).expect("completes");
                std::hint::black_box(done);
            }
        })
    });

    c.bench_function("cellfile_round_trip_catalog", |b| {
        let catalog = nvm_llc::cell::Catalog::paper();
        b.iter(|| {
            let text = nvm_llc::cell::cellfile::catalog_to_string(&catalog);
            let cells = nvm_llc::cell::cellfile::parse_many(&text).expect("parses");
            std::hint::black_box(cells)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
