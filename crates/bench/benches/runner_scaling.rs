//! Worker-pool scaling of the evaluation engine: a Figure 1-shaped
//! (workload × technology) matrix at 1/2/4/8 workers, plus the trace
//! cache cold vs warm. The 1-thread sample is the legacy serial path;
//! dividing its time by the 4-worker time gives the headline speedup
//! reported in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::experiments::{evaluator, Configuration};
use nvm_llc::trace::workloads;
use nvm_llc::Scale;

fn bench(c: &mut Criterion) {
    let ws = workloads::single_threaded();

    let mut group = c.benchmark_group("runner_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("fig1_matrix_{threads}_threads"), |b| {
            let eval = evaluator(Configuration::FixedCapacity, Scale::SMOKE).threads(threads);
            // Pre-populate the trace cache so every worker count replays
            // identical traces and only simulation time is measured.
            for w in &ws {
                let _ = w.generate_shared(
                    Scale::SMOKE.seed,
                    w.scaled_accesses(Scale::SMOKE.base_accesses),
                );
            }
            b.iter(|| std::hint::black_box(eval.run_all(&ws)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trace_cache");
    group.sample_size(10);
    let tonto = workloads::by_name("tonto").unwrap();
    group.bench_function("generate_cold", |b| {
        b.iter(|| {
            nvm_llc::trace::cache::clear();
            std::hint::black_box(tonto.generate_shared(Scale::SMOKE.seed, 50_000))
        })
    });
    group.bench_function("fetch_warm", |b| {
        let _ = tonto.generate_shared(Scale::SMOKE.seed, 50_000);
        b.iter(|| std::hint::black_box(tonto.generate_shared(Scale::SMOKE.seed, 50_000)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
