//! Regenerates Figure 1 (fixed-capacity speedup / LLC energy / ED²P) and
//! times one full workload-row evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::experiments::{evaluator, fig1, Configuration};
use nvm_llc::trace::workloads;
use nvm_llc::Scale;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let fig = fig1::run(Scale::DEFAULT);
    print_artifact("Figure 1 — fixed-capacity evaluation", &fig.render());

    c.bench_function("fig1_row_tonto_all_technologies", |b| {
        let eval = evaluator(Configuration::FixedCapacity, Scale::SMOKE);
        let w = workloads::by_name("tonto").unwrap();
        b.iter(|| std::hint::black_box(eval.run_workload(&w)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
