//! Regenerates Table V (workloads and LLC mpki on the SRAM baseline) and
//! times the simulator's event throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvm_llc::circuit::reference;
use nvm_llc::experiments::table5;
use nvm_llc::sim::{ArchConfig, System};
use nvm_llc::trace::workloads;
use nvm_llc::Scale;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let result = table5::run(Scale::DEFAULT);
    print_artifact("Table V — workloads and LLC mpki", &result.render());

    let trace = workloads::by_name("leela").unwrap().generate(2019, 100_000);
    let mut group = c.benchmark_group("simulator_throughput");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("replay_leela_100k_sram", |b| {
        let system = System::new(ArchConfig::gainestown(reference::sram_baseline()));
        b.iter(|| std::hint::black_box(system.run(&trace)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
