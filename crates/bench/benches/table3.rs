//! Regenerates Table III (LLC models, fixed-capacity and fixed-area) and
//! Table IV (architecture), timing the circuit modeler.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::cell::technologies;
use nvm_llc::circuit::CacheModeler;
use nvm_llc::experiments::{table3, table4};
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let result = table3::run();
    print_artifact("Table III — Gainestown LLC models", &result.render());
    println!(
        "Generated/paper geometric-mean ratios: write latency {:.2}, leakage {:.2}, area {:.2}",
        result.geomean_ratio(|m| m.write_latency().value()),
        result.geomean_ratio(|m| m.leakage.value()),
        result.geomean_ratio(|m| m.area.value()),
    );
    print_artifact(
        "Table IV — simulated architecture",
        &table4::render_default(),
    );

    c.bench_function("model_2mb_llc_all_technologies", |b| {
        b.iter(|| {
            for cell in technologies::all_nvms() {
                let m = CacheModeler::new(cell)
                    .model(2 * 1024 * 1024)
                    .expect("models");
                std::hint::black_box(m);
            }
        })
    });

    c.bench_function("fixed_area_capacity_search_zhang", |b| {
        let modeler = CacheModeler::new(technologies::zhang());
        b.iter(|| {
            let m = nvm_llc::circuit::fixed_area::paper_fixed_area_model(&modeler)
                .expect("fits budget");
            std::hint::black_box(m)
        })
    });

    c.bench_function("design_space_search_chung", |b| {
        let modeler = CacheModeler::new(technologies::chung());
        b.iter(|| std::hint::black_box(modeler.solve_optimal(2 * 1024 * 1024).expect("solves")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
