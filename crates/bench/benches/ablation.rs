//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! off-critical-path LLC writes (the paper's §V-A.7 assumption) and
//! replacement policy sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::circuit::reference;
use nvm_llc::sim::{
    simulate_hybrid, ArchConfig, HybridConfig, LlcWritePolicy, Replacement, System,
};
use nvm_llc::trace::workloads;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    // --- Off-critical-path ablation -------------------------------------
    let mut body =
        String::from("Write-policy ablation: slowdown vs off-critical-path (paper §V-A.7)\n");
    body.push_str(&format!(
        "{:<12} {:>16} {:>16} {:>12}\n",
        "technology", "port-contention", "blocking", "write [ns]"
    ));
    let trace = workloads::by_name("mg").unwrap().generate(2019, 40_000);
    for name in ["SRAM", "Xue", "Hayakawa", "Kang", "Zhang"] {
        let llc = reference::by_name(&reference::fixed_capacity(), name).unwrap();
        let run = |policy| {
            System::new(ArchConfig::gainestown(llc.clone()).with_llc_write_policy(policy))
                .with_warmup(0.25)
                .run(&trace)
                .exec_time
                .value()
        };
        let off = run(LlcWritePolicy::OffCriticalPath);
        let port = run(LlcWritePolicy::PortContention);
        let blocking = run(LlcWritePolicy::Blocking);
        body.push_str(&format!(
            "{:<12} {:>15.2}x {:>15.2}x {:>12.1}\n",
            llc.display_name(),
            port / off,
            blocking / off,
            llc.write_latency().value()
        ));
    }
    print_artifact("Ablation — LLC write criticality", &body);

    // --- Replacement-policy ablation -------------------------------------
    let mut body = String::from("Replacement ablation: LLC mpki, LRU vs random\n");
    let llc = reference::by_name(&reference::fixed_capacity(), "SRAM").unwrap();
    for name in ["gobmk", "leela", "mg"] {
        let trace = workloads::by_name(name).unwrap().generate(2019, 40_000);
        let mpki = |replacement| {
            System::new(ArchConfig::gainestown(llc.clone()))
                .with_replacement(replacement)
                .with_warmup(0.25)
                .run(&trace)
                .stats
                .llc_mpki()
        };
        body.push_str(&format!(
            "{:<8} LRU {:>8.2}  random {:>8.2}\n",
            name,
            mpki(Replacement::Lru),
            mpki(Replacement::Random)
        ));
    }
    print_artifact("Ablation — replacement policy", &body);

    // --- Write-reduction techniques ----------------------------------
    let mut body = String::from(
        "Technique ablation on Kang_P (PCRAM), deepsjeng: normalized LLC dynamic energy
",
    );
    let kang = reference::by_name(&reference::fixed_capacity(), "Kang").unwrap();
    let trace = workloads::by_name("deepsjeng")
        .unwrap()
        .generate(2019, 60_000);
    let base = System::new(ArchConfig::gainestown(kang.clone()))
        .with_warmup(0.25)
        .run(&trace);
    let cases: [(&str, ArchConfig); 3] = [
        (
            "differential writes (40% flips)",
            ArchConfig::gainestown(kang.clone()).with_differential_writes(0.4),
        ),
        (
            "dead-block bypass",
            ArchConfig::gainestown(kang.clone()).with_llc_bypass(),
        ),
        (
            "detailed DRAM backend",
            ArchConfig::gainestown(kang.clone()).with_detailed_dram(),
        ),
    ];
    body.push_str(&format!(
        "{:<32} {:>10} {:>10} {:>10}
",
        "technique", "energy", "time", "fills"
    ));
    for (label, config) in cases {
        let r = System::new(config).with_warmup(0.25).run(&trace);
        body.push_str(&format!(
            "{:<32} {:>9.3}x {:>9.3}x {:>10}
",
            label,
            r.llc_dynamic_energy.value() / base.llc_dynamic_energy.value(),
            r.exec_time.value() / base.exec_time.value(),
            r.stats.llc_fills,
        ));
    }
    print_artifact("Ablation — write-reduction techniques", &body);

    // --- Hybrid SRAM/NVM LLC ------------------------------------------
    let mut body = String::from(
        "Hybrid 4-SRAM/12-NVM-way LLC vs pure configurations (ft, write-balanced)
",
    );
    let models = reference::fixed_capacity();
    let sram = reference::by_name(&models, "SRAM").unwrap();
    let xue = reference::by_name(&models, "Xue").unwrap();
    let trace = workloads::by_name("ft").unwrap().generate(2019, 15_000);
    let arch = ArchConfig::gainestown(sram.clone());
    let hybrid = simulate_hybrid(
        &arch,
        &HybridConfig::four_of_sixteen(sram.clone(), xue.clone()),
        &trace,
    );
    let pure_sram = System::new(ArchConfig::gainestown(sram)).run(&trace);
    let pure_nvm = System::new(ArchConfig::gainestown(xue)).run(&trace);
    for (label, r) in [
        ("pure SRAM", &pure_sram),
        ("pure Xue_S", &pure_nvm),
        ("hybrid", &hybrid.result),
    ] {
        body.push_str(&format!(
            "{:<12} time {:>9.4} ms   LLC energy {:>9.4} mJ
",
            label,
            r.exec_time.value() * 1e3,
            r.llc_energy().value() * 1e3,
        ));
    }
    body.push_str(&format!(
        "hybrid internals: {} SRAM hits, {} NVM hits, {} migrations, {} NVM array writes
",
        hybrid.hybrid.sram_hits,
        hybrid.hybrid.nvm_hits,
        hybrid.hybrid.migrations,
        hybrid.hybrid.nvm_writes
    ));
    print_artifact("Ablation — hybrid SRAM/NVM LLC", &body);

    // --- Microarchitectural fidelity knobs -----------------------------
    let mut body = String::from(
        "Fidelity knobs on the SRAM baseline, cg (miss-heavy): time vs default model
",
    );
    let llc = reference::by_name(&reference::fixed_capacity(), "SRAM").unwrap();
    let trace = workloads::by_name("cg").unwrap().generate(2019, 40_000);
    let base = System::new(ArchConfig::gainestown(llc.clone()))
        .with_warmup(0.25)
        .run(&trace);
    let knob_cases: [(&str, ArchConfig); 4] = [
        (
            "10 MSHRs",
            ArchConfig::gainestown(llc.clone()).with_mshrs(10),
        ),
        (
            "1 MSHR (serialized misses)",
            ArchConfig::gainestown(llc.clone()).with_mshrs(1),
        ),
        (
            "inclusive LLC",
            ArchConfig::gainestown(llc.clone()).with_inclusive_llc(),
        ),
        (
            "L2 next-line prefetch",
            ArchConfig::gainestown(llc.clone()).with_l2_prefetch(),
        ),
    ];
    body.push_str(&format!(
        "{:<30} {:>8} {:>10} {:>14}
",
        "knob", "time", "mpki", "note"
    ));
    for (label, config) in knob_cases {
        let r = System::new(config).with_warmup(0.25).run(&trace);
        let note = if r.stats.prefetches > 0 {
            format!("{} prefetches", r.stats.prefetches)
        } else if r.stats.inclusion_invalidations > 0 {
            format!("{} invalidations", r.stats.inclusion_invalidations)
        } else {
            String::new()
        };
        body.push_str(&format!(
            "{:<30} {:>7.3}x {:>10.1} {:>14}
",
            label,
            r.exec_time.value() / base.exec_time.value(),
            r.stats.llc_mpki(),
            note,
        ));
    }
    print_artifact("Ablation — microarchitectural fidelity knobs", &body);

    c.bench_function("blocking_writes_zhang_mg_20k", |b| {
        let llc = reference::by_name(&reference::fixed_capacity(), "Zhang").unwrap();
        let trace = workloads::by_name("mg").unwrap().generate(2019, 5_000);
        let system = System::new(
            ArchConfig::gainestown(llc).with_llc_write_policy(LlcWritePolicy::Blocking),
        );
        b.iter(|| std::hint::black_box(system.run(&trace)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
