//! Regenerates the extension studies built on top of the paper: the
//! Section VII lifetime characterization, the feature-selection traces,
//! and reuse-distance miss-ratio curves; times the reuse-distance kernel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvm_llc::experiments::{dl_extension, lifetime, selection};
use nvm_llc::prism::reuse::reuse_histogram;
use nvm_llc::trace::workloads;
use nvm_llc::Scale;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    print_artifact(
        "Extension — lifetime characterization (paper §VII)",
        &lifetime::run(Scale::DEFAULT).render(),
    );
    print_artifact(
        "Extension — feature selection (Section VI, operationalized)",
        &selection::run(Scale::DEFAULT).render(),
    );
    print_artifact(
        "Extension — deep-learning workloads (Fathom/TBD pointer)",
        &dl_extension::run(Scale::DEFAULT).render(),
    );

    let mut body = String::from("Miss-ratio curves at the paper's capacity points\n");
    body.push_str(&format!(
        "{:<11} {:>8} {:>8} {:>8} {:>8}\n",
        "bmk", "2MB", "8MB", "32MB", "128MB"
    ));
    for name in ["bzip2", "gobmk", "mg", "deepsjeng", "leela", "cg"] {
        let w = workloads::by_name(name).unwrap();
        let trace = w.generate(2019, w.scaled_accesses(Scale::DEFAULT.base_accesses));
        let h = reuse_histogram(&trace);
        body.push_str(&format!(
            "{:<11} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%\n",
            name,
            h.miss_ratio_at(32 * 1024) * 100.0,
            h.miss_ratio_at(128 * 1024) * 100.0,
            h.miss_ratio_at(512 * 1024) * 100.0,
            h.miss_ratio_at(2048 * 1024) * 100.0,
        ));
    }
    print_artifact("Extension — reuse-distance analysis", &body);

    let trace = workloads::by_name("gobmk").unwrap().generate(2019, 100_000);
    let mut group = c.benchmark_group("reuse_distance");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("histogram_gobmk_100k", |b| {
        b.iter(|| std::hint::black_box(reuse_histogram(&trace)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
