//! Regenerates Table VI (architecture-agnostic workload features) and
//! times the PRISM-style profiler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvm_llc::experiments::table6;
use nvm_llc::prism::profiler;
use nvm_llc::trace::workloads;
use nvm_llc::Scale;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let result = table6::run(Scale::DEFAULT);
    print_artifact("Table VI — workload features", &result.render());

    let trace = workloads::by_name("cg").unwrap().generate(2019, 25_000);
    let mut group = c.benchmark_group("prism_throughput");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("characterize_cg_100k_events", |b| {
        b.iter(|| std::hint::black_box(profiler::characterize("cg", &trace)))
    });
    group.finish();

    c.bench_function("trace_generation_deepsjeng_100k", |b| {
        let w = workloads::by_name("deepsjeng").unwrap();
        b.iter(|| std::hint::black_box(w.generate(2019, 100_000)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
