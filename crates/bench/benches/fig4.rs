//! Regenerates Figure 4 (feature correlation heatmaps) and times the
//! correlation framework.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::analysis::{CorrelationMatrix, Observation};
use nvm_llc::experiments::fig4;
use nvm_llc::prism::FeatureVector;
use nvm_llc::Scale;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let fig = fig4::run(Scale::DEFAULT);
    print_artifact("Figure 4 — feature correlations", &fig.render());

    c.bench_function("correlation_matrix_16_observations", |b| {
        let observations: Vec<Observation> = (0..16)
            .map(|i| {
                let x = i as f64;
                Observation {
                    features: FeatureVector::new(
                        format!("w{i}"),
                        [x, x * 0.5, x * 2.0, x, 100.0 - x, x, x * x, x, 7.0, x],
                    ),
                    energy: 3.0 * x + 1.0,
                    speedup: 1.0 / (x + 1.0),
                }
            })
            .collect();
        b.iter(|| std::hint::black_box(CorrelationMatrix::compute("bench", &observations)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
