//! Functional/timing split microbenchmarks: the cost of one functional
//! pass (Phase A, `System::record`) vs one timing replay (Phase B,
//! `System::replay`) vs the fused `System::run`, the batched lockstep
//! replay (`System::replay_batch`) against 11 per-technology replays,
//! and the Figure 1-shaped matrix where 11 fixed-capacity technologies
//! share a single geometry — the case the tape cache and the batched
//! engine were built for. `cargo run -p nvm-llc-bench --bin tape_bench
//! --release` dumps the headline numbers to `BENCH_tape.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::experiments::{evaluator, Configuration};
use nvm_llc::prelude::*;
use nvm_llc::trace::workloads;
use nvm_llc::Scale;

fn bench(c: &mut Criterion) {
    let trace = workloads::by_name("tonto")
        .unwrap()
        .generate_shared(Scale::SMOKE.seed, 50_000);
    let models = reference::fixed_capacity();
    let sram = reference::by_name(&models, "SRAM").unwrap();
    let system = System::new(ArchConfig::gainestown(sram)).with_warmup(0.25);

    let mut group = c.benchmark_group("tape_phases");
    group.sample_size(10);
    group.bench_function("record_functional_pass", |b| {
        b.iter(|| std::hint::black_box(system.record(&trace)))
    });
    let tape = system.record(&trace);
    group.bench_function("replay_timing_pass", |b| {
        b.iter(|| std::hint::black_box(system.replay(&tape)))
    });
    group.bench_function("fused_direct_run", |b| {
        b.iter(|| std::hint::black_box(system.run(&trace)))
    });
    // The tentpole micro-comparison: all 11 fixed-capacity technologies
    // replaying the one tape, per-technology (11 decodes) vs batched
    // (one `DecodedTape`, 11 engines in lockstep).
    let family: Vec<System> = models
        .iter()
        .map(|m| System::new(ArchConfig::gainestown(m.clone())).with_warmup(0.25))
        .collect();
    group.bench_function("replay_per_tech_11", |b| {
        b.iter(|| {
            for s in &family {
                std::hint::black_box(s.replay(&tape));
            }
        })
    });
    group.bench_function("replay_batch_11", |b| {
        let refs: Vec<&System> = family.iter().collect();
        b.iter(|| std::hint::black_box(System::replay_batch(&refs, &tape)))
    });
    group.finish();

    // The matrix the split targets: every fixed-capacity technology
    // shares one LLC geometry, so a warm tape cache turns 11 functional
    // passes per workload into 1. `direct` re-simulates each cell the
    // pre-split way; `warm_tape` measures `run_all` with tapes recorded.
    let ws = workloads::single_threaded();
    let eval = |techs: usize| {
        let baseline = reference::by_name(&models, "SRAM").unwrap();
        let nvms: Vec<_> = models
            .iter()
            .filter(|m| m.name != "SRAM")
            .take(techs - 1)
            .cloned()
            .collect();
        Evaluator::new(baseline, nvms)
            .base_accesses(Scale::SMOKE.base_accesses)
            .seed(Scale::SMOKE.seed)
            .threads(1)
    };
    for w in &ws {
        let _ = w.generate_shared(
            Scale::SMOKE.seed,
            w.scaled_accesses(Scale::SMOKE.base_accesses),
        );
    }
    let mut group = c.benchmark_group("tape_matrix");
    group.sample_size(10);
    for techs in [1usize, 11] {
        group.bench_function(format!("direct_{techs}_techs"), |b| {
            let configs: Vec<_> = std::iter::once(reference::by_name(&models, "SRAM").unwrap())
                .chain(
                    models
                        .iter()
                        .filter(|m| m.name != "SRAM")
                        .take(techs - 1)
                        .cloned(),
                )
                .collect();
            b.iter(|| {
                for w in &ws {
                    let trace = w.generate_shared(
                        Scale::SMOKE.seed,
                        w.scaled_accesses(Scale::SMOKE.base_accesses),
                    );
                    for model in &configs {
                        std::hint::black_box(
                            System::new(ArchConfig::gainestown(model.clone()))
                                .with_warmup(0.25)
                                .run(&trace),
                        );
                    }
                }
            })
        });
        group.bench_function(format!("warm_tape_{techs}_techs"), |b| {
            let e = eval(techs).batched(false);
            let _ = e.run_all(&ws); // record every tape once
            b.iter(|| std::hint::black_box(e.run_all(&ws)))
        });
        group.bench_function(format!("warm_batched_{techs}_techs"), |b| {
            let e = eval(techs);
            let _ = e.run_all(&ws); // record every tape once
            b.iter(|| std::hint::black_box(e.run_all(&ws)))
        });
    }
    group.finish();

    // Keep the shared-evaluator smoke path exercised too, so this bench
    // fails loudly if the experiments-facing API drifts.
    let mut group = c.benchmark_group("tape_smoke");
    group.sample_size(10);
    group.bench_function("fixed_capacity_row_warm", |b| {
        let e = evaluator(Configuration::FixedCapacity, Scale::SMOKE).threads(1);
        let w = workloads::by_name("tonto").unwrap();
        let _ = e.run_workload(&w);
        b.iter(|| std::hint::black_box(e.run_workload(&w)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
