//! Regenerates the Section V-C core sweep and times an 8-core simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::circuit::reference;
use nvm_llc::experiments::core_sweep;
use nvm_llc::sim::{ArchConfig, System};
use nvm_llc::trace::workloads;
use nvm_llc::Scale;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let sweep = core_sweep::run(Scale::DEFAULT);
    print_artifact("Section V-C — core sweep", &sweep.render());

    c.bench_function("simulate_mg_8_cores_hayakawa", |b| {
        let llc = reference::by_name(&reference::fixed_area(), "Hayakawa").unwrap();
        let trace = workloads::by_name("mg")
            .unwrap()
            .with_threads_weak_scaling(8)
            .generate(2019, 10_000);
        let system = System::new(ArchConfig::gainestown(llc).with_cores(8));
        b.iter(|| std::hint::black_box(system.run(&trace)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
