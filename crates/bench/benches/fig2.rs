//! Regenerates Figure 2 (fixed-area speedup / LLC energy / ED²P) and
//! times a capacity-sensitive row.

use criterion::{criterion_group, criterion_main, Criterion};
use nvm_llc::experiments::{evaluator, fig2, Configuration};
use nvm_llc::trace::workloads;
use nvm_llc::Scale;
use nvm_llc_bench::print_artifact;

fn bench(c: &mut Criterion) {
    let fig = fig2::run(Scale::DEFAULT);
    print_artifact("Figure 2 — fixed-area evaluation", &fig.render());

    c.bench_function("fig2_row_gobmk_all_technologies", |b| {
        let eval = evaluator(Configuration::FixedArea, Scale::SMOKE);
        let w = workloads::by_name("gobmk").unwrap();
        b.iter(|| std::hint::black_box(eval.run_workload(&w)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
