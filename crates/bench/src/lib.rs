//! Shared helpers for the table/figure benches (see the `benches/`
//! directory of this crate).
//!
//! Each bench prints its regenerated paper artifact once, then times the
//! underlying kernel with criterion so regressions in the hot paths are
//! visible.

/// Prints a banner followed by the artifact body, flushing stdout so the
/// output survives criterion's own logging.
pub fn print_artifact(title: &str, body: &str) {
    use std::io::Write as _;
    let rule = "=".repeat(title.len().min(100));
    println!("\n{rule}\n{title}\n{rule}\n{body}");
    let _ = std::io::stdout().flush();
}
