//! Headline numbers for the functional/timing split and the batched
//! replay engine, dumped to `BENCH_tape.json` at the repository root.
//!
//! Reported measurements (best of three, single worker thread so the
//! tape effect is not conflated with pool parallelism):
//!
//! * per-phase cost of one cell: `System::record` (functional pass),
//!   `System::replay` (timing pass), and the fused `System::run`;
//! * the fixed-capacity matrix (11 technologies sharing one 2 MB LLC
//!   geometry) four ways: all-direct (pre-split behavior, one fused
//!   run per cell), cold tape (record once per workload + replay), warm
//!   per-technology replay (PR 2's path, 11 separate tape decodes per
//!   workload), and warm batched replay (one `DecodedTape` driving all
//!   11 timing engines in lockstep).
//!
//! Acceptance bars: `warm_speedup_vs_direct >= 3` (the split),
//! `batched_speedup_vs_per_tech >= 2` (the SoA chunk kernels; CI's
//! bench-smoke job holds a tighter 4.4x floor on the same number),
//! `obs_overhead_pct <= 3` (spans and counters stay out of the hot
//! path; a median across interleaved rounds so 1-CPU scheduler blips
//! don't flake it), and `writebacks_endurance < writebacks_lru` (the
//! endurance-aware replacement policy's measured writeback cut); CI
//! fails the bench-smoke job outside any of them.

use std::time::Instant;

use nvm_llc::prelude::*;

const BASE_ACCESSES: usize = 20_000;
const SEED: u64 = 2019;
const REPEATS: usize = 3;
// The chunk kernels shrank the warm matrix to a few milliseconds, so
// the instrumented/uninstrumented ratio is sensitive to scheduler
// noise; more interleaved rounds keep the best-of comparison stable.
const OVERHEAD_REPEATS: usize = 8;

fn best_of(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let models = reference::fixed_capacity();
    let sram = reference::by_name(&models, "SRAM").unwrap();
    let nvms: Vec<_> = models
        .iter()
        .filter(|m| m.name != "SRAM")
        .cloned()
        .collect();
    let ws = workloads::single_threaded();
    let traces: Vec<_> = ws
        .iter()
        .map(|w| w.generate_shared(SEED, w.scaled_accesses(BASE_ACCESSES)))
        .collect();

    // Per-phase costs on one representative cell (tonto on the shared
    // 2 MB geometry).
    let system = System::new(ArchConfig::gainestown(sram.clone()))
        .with_warmup(nvm_llc::sim::runner::DEFAULT_WARMUP);
    let trace = &traces[ws.iter().position(|w| w.name() == "tonto").unwrap()];
    let record_ms = best_of(REPEATS, || {
        std::hint::black_box(system.record(trace));
    });
    let tape = system.record(trace);
    let replay_ms = best_of(REPEATS, || {
        std::hint::black_box(system.replay(&tape));
    });
    let fused_ms = best_of(REPEATS, || {
        std::hint::black_box(system.run(trace));
    });

    // The matrix, all-direct: one fused functional+timing simulation per
    // cell, exactly what every cell cost before the split.
    let direct_ms = best_of(REPEATS, || {
        for trace in &traces {
            for model in &models {
                std::hint::black_box(
                    System::new(ArchConfig::gainestown(model.clone()))
                        .with_warmup(nvm_llc::sim::runner::DEFAULT_WARMUP)
                        .run(trace),
                );
            }
        }
    });

    let (policy_sram, policy_nvms) = (sram.clone(), nvms.clone());
    let evaluator = Evaluator::new(sram.clone(), nvms.clone())
        .base_accesses(BASE_ACCESSES)
        .seed(SEED)
        .threads(1);
    let per_tech = Evaluator::new(sram, nvms)
        .base_accesses(BASE_ACCESSES)
        .seed(SEED)
        .threads(1)
        .batched(false);

    // Span-backed phase attribution: the decode and chunk-kernel spans
    // accumulate into the obs histograms; deltas around a timed section
    // attribute its wall time to SoA decode vs. chunked replay.
    let decode_span = nvm_llc::obs::metrics::histogram(
        "nvmllc_tape_decode_seconds",
        "Wall time of the `tape_decode` span.",
    );
    let chunk_span = nvm_llc::obs::metrics::histogram(
        "nvmllc_tape_replay_chunk_seconds",
        "Wall time of one batched-replay event chunk.",
    );

    // Cold: the cache is emptied first, so each iteration pays one
    // functional pass per workload plus the batched replay.
    let decode_s_before = decode_span.sum();
    let cold_ms = best_of(REPEATS, || {
        nvm_llc::sim::tape::cache::clear();
        std::hint::black_box(evaluator.run_all(&ws));
    });
    // Every cold iteration re-records and re-decodes each workload's
    // tape, so the decode span accumulated REPEATS matrices' worth.
    let decode_ms = (decode_span.sum() - decode_s_before) * 1e3 / REPEATS as f64;

    // Warm, per-technology (PR 2's reference path): every geometry's
    // tape is already recorded; each of the 11 cells decodes the packed
    // tape on its own.
    let _ = per_tech.run_all(&ws);
    let warm_ms = best_of(REPEATS, || {
        std::hint::black_box(per_tech.run_all(&ws));
    });

    // Warm, batched: one decode per workload drives all 11 timing
    // engines chunk by chunk over the struct-of-arrays `DecodedTape`.
    let chunk_s_before = chunk_span.sum();
    let batched_ms = best_of(REPEATS, || {
        std::hint::black_box(evaluator.run_all(&ws));
    });
    // Time spent inside the chunked kernels per warm matrix (the rest of
    // `replay_batched_ms` is evaluator bookkeeping and finalization).
    let replay_chunked_ms = (chunk_span.sum() - chunk_s_before) * 1e3 / REPEATS as f64;

    // Observability overhead: the identical warm batched matrix with
    // every span inert (`obs::set_enabled(false)`) against the
    // instrumented default. One repeat of each variant per round,
    // interleaved, so clock drift and cache warming hit both equally.
    // Each round yields its own instrumented/uninstrumented ratio and
    // the reported figure is the **median across rounds**: on a 1-CPU
    // runner a single descheduling blip lands in one round's ratio and
    // the median discards it, where the old best-of-each-side quotient
    // paired minima from different rounds and flaked. Counters stay on
    // in both runs — they are one relaxed atomic op per event — so this
    // isolates the span/clock cost, which is what the 3% budget is
    // about.
    let mut overhead_ratios = Vec::with_capacity(OVERHEAD_REPEATS);
    for _ in 0..OVERHEAD_REPEATS {
        nvm_llc::obs::set_enabled(true);
        let instrumented_ms = best_of(1, || {
            std::hint::black_box(evaluator.run_all(&ws));
        });
        nvm_llc::obs::set_enabled(false);
        let uninstrumented_ms = best_of(1, || {
            std::hint::black_box(evaluator.run_all(&ws));
        });
        overhead_ratios.push(instrumented_ms / uninstrumented_ms);
    }
    nvm_llc::obs::set_enabled(true);
    overhead_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median_ratio = overhead_ratios[overhead_ratios.len() / 2];
    let obs_overhead_pct = (median_ratio - 1.0) * 100.0;

    // The policy axis' headline: endurance-aware victim selection cuts
    // the matrix's total DRAM writebacks against the LRU default on the
    // one bench workload whose footprint pressures the 2 MB LLC into
    // evicting dirty lines (gobmk). CI holds `writebacks_endurance <
    // writebacks_lru` on this block.
    let policy_workload = workloads::by_name("gobmk").unwrap();
    let total_writebacks = |policy: PolicyKind| -> u64 {
        let row = Evaluator::new(policy_sram.clone(), policy_nvms.clone())
            .base_accesses(BASE_ACCESSES)
            .seed(SEED)
            .threads(1)
            .policy(policy)
            .run_workload(&policy_workload);
        row.baseline.stats.dram_writebacks
            + row
                .entries
                .iter()
                .map(|e| e.result.stats.dram_writebacks)
                .sum::<u64>()
    };
    let writebacks_lru = total_writebacks(PolicyKind::Lru);
    let writebacks_endurance = total_writebacks(PolicyKind::Endurance);
    let writeback_reduction_pct =
        (1.0 - writebacks_endurance as f64 / writebacks_lru as f64) * 100.0;

    let stats = nvm_llc::sim::tape::cache::stats();
    let replay_speedup = fused_ms / replay_ms;
    let warm_speedup = direct_ms / warm_ms;
    let cold_speedup = direct_ms / cold_ms;
    let batched_speedup = warm_ms / batched_ms;

    let json = format!(
        "{{\n  \"bench\": \"tape_replay\",\n  \"config\": {{\n    \"workloads\": {},\n    \"technologies\": {},\n    \"base_accesses\": {},\n    \"threads\": 1,\n    \"repeats\": {},\n    \"chunk_events\": {}\n  }},\n  \"phase_ms\": {{\n    \"record_functional\": {:.3},\n    \"replay_timing\": {:.3},\n    \"fused_run\": {:.3},\n    \"decode_ms\": {:.3},\n    \"replay_speedup_vs_fused\": {:.2}\n  }},\n  \"matrix_ms\": {{\n    \"all_direct\": {:.3},\n    \"cold_tape\": {:.3},\n    \"warm_tape\": {:.3},\n    \"replay_batched_ms\": {:.3},\n    \"replay_chunked_ms\": {:.3},\n    \"cold_speedup_vs_direct\": {:.2},\n    \"warm_speedup_vs_direct\": {:.2},\n    \"batched_speedup_vs_per_tech\": {:.2}\n  }},\n  \"obs_overhead_pct\": {:.2},\n  \"policy\": {{\n    \"workload\": \"{}\",\n    \"writebacks_lru\": {},\n    \"writebacks_endurance\": {},\n    \"writeback_reduction_pct\": {:.1}\n  }},\n  \"tape_cache\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \"bytes\": {},\n    \"raw_bytes\": {},\n    \"evictions\": {}\n  }}\n}}\n",
        ws.len(),
        models.len(),
        BASE_ACCESSES,
        REPEATS,
        nvm_llc::sim::REPLAY_CHUNK_EVENTS,
        record_ms,
        replay_ms,
        fused_ms,
        decode_ms,
        replay_speedup,
        direct_ms,
        cold_ms,
        warm_ms,
        batched_ms,
        replay_chunked_ms,
        cold_speedup,
        warm_speedup,
        batched_speedup,
        obs_overhead_pct,
        policy_workload.name(),
        writebacks_lru,
        writebacks_endurance,
        writeback_reduction_pct,
        stats.hits,
        stats.misses,
        stats.bytes,
        stats.raw_bytes,
        stats.evictions,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tape.json");
    std::fs::write(path, &json).expect("write BENCH_tape.json");
    print!("{json}");
    eprintln!("tape cache after run: {stats}");

    assert!(
        warm_speedup >= 3.0,
        "warm-tape matrix must be >= 3x faster than the all-direct path \
         (got {warm_speedup:.2}x)"
    );
    assert!(
        batched_speedup >= 2.0,
        "the SoA chunk kernels must keep batched replay well ahead of \
         per-technology replay (got {batched_speedup:.2}x; CI holds a \
         tighter 4.4x floor)"
    );
    // The obs-overhead gate is a hard assert locally but demotes to a
    // warning when NVM_LLC_OBS_OVERHEAD_WARN_ONLY is set: shared 1-CPU
    // CI runners make the instrumented/uninstrumented ratio too noisy
    // to gate a merge on, while the local floor still catches real
    // regressions.
    if obs_overhead_pct > 3.0 {
        let message = format!(
            "instrumented warm batched replay must stay within 3% of the \
             uninstrumented run (got {obs_overhead_pct:.2}%)"
        );
        if std::env::var_os("NVM_LLC_OBS_OVERHEAD_WARN_ONLY").is_some() {
            eprintln!("WARNING (gate demoted by NVM_LLC_OBS_OVERHEAD_WARN_ONLY): {message}");
        } else {
            panic!("{message}");
        }
    }
    assert!(
        writebacks_endurance < writebacks_lru,
        "the endurance-aware policy must cut total DRAM writebacks vs \
         LRU on {} (got {writebacks_endurance} vs {writebacks_lru})",
        policy_workload.name(),
    );
}
