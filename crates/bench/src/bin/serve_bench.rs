//! Loopback load measurements for the `nvm-llcd` evaluation service,
//! dumped to `BENCH_serve.json` at the repository root.
//!
//! The generator runs the daemon in-process on an ephemeral loopback
//! port and measures the three request regimes a deployment sees:
//!
//! * **cold** — first-ever `/row` for a workload: trace generation, one
//!   functional pass, eleven timing replays, store write-back;
//! * **warm (memory)** — the same daemon again: the coalescing map has
//!   moved on, but every cell hits the in-memory result slots rebuilt
//!   from the tape/result tiers;
//! * **warm (store)** — a restarted daemon on the same `--store-dir`:
//!   every cell is a disk hit, no simulation at all.
//!
//! A closing burst phase drives 16 concurrent clients over the warm
//! workloads and reports aggregate requests/sec, plus the daemon's own
//! `/statsz` counters.
//!
//! Acceptance bars: every response is 200, and the warm-store mean must
//! beat the cold mean (persistence must pay for itself).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use nvm_llc::serve::{http, ServeConfig, Server};

const BASE_ACCESSES: usize = 20_000;
const WORKLOADS: [&str; 4] = ["tonto", "x264", "milc", "leela"];
const BURST_CLIENTS: usize = 16;
const BURST_ROUNDS: usize = 8;

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn timed_get(addr: std::net::SocketAddr, target: &str) -> f64 {
    let start = Instant::now();
    let (status, body) = http::get(addr, target).expect("loopback request");
    assert_eq!(status, 200, "{target}: {body}");
    start.elapsed().as_secs_f64() * 1e3
}

fn row_target(workload: &str) -> String {
    format!("/row?workload={workload}&accesses={BASE_ACCESSES}")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("nvm-llcd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: BURST_CLIENTS,
        max_evals: 4,
        base_accesses: BASE_ACCESSES,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // Cold and warm-memory regimes on the first daemon.
    let first = Server::start(config()).expect("start daemon");
    let addr = first.addr();
    let cold_ms: Vec<f64> = WORKLOADS
        .iter()
        .map(|w| timed_get(addr, &row_target(w)))
        .collect();
    let warm_memory_ms: Vec<f64> = WORKLOADS
        .iter()
        .map(|w| timed_get(addr, &row_target(w)))
        .collect();
    first.shutdown();

    // Warm-store regime: a restarted daemon, same directory.
    let second = Server::start(config()).expect("restart daemon");
    let addr = second.addr();
    let warm_store_ms: Vec<f64> = WORKLOADS
        .iter()
        .map(|w| timed_get(addr, &row_target(w)))
        .collect();

    // Burst: concurrent clients cycling over the warm workloads.
    let barrier = Arc::new(Barrier::new(BURST_CLIENTS));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..BURST_CLIENTS {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..BURST_ROUNDS {
                    let workload = WORKLOADS[(client + round) % WORKLOADS.len()];
                    timed_get(addr, &row_target(workload));
                }
            });
        }
    });
    let burst_s = start.elapsed().as_secs_f64();
    let burst_requests = BURST_CLIENTS * BURST_ROUNDS;
    let throughput = burst_requests as f64 / burst_s;

    let (status, statsz) = http::get(addr, "/statsz").expect("statsz");
    assert_eq!(status, 200);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let cold = mean(&cold_ms);
    let warm_memory = mean(&warm_memory_ms);
    let warm_store = mean(&warm_store_ms);
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"config\": {{\n    \"workloads\": {},\n    \"base_accesses\": {},\n    \"workers\": {},\n    \"burst_clients\": {},\n    \"burst_requests\": {}\n  }},\n  \"row_latency_ms\": {{\n    \"cold\": {:.3},\n    \"warm_memory\": {:.3},\n    \"warm_store\": {:.3},\n    \"cold_over_warm_store\": {:.2}\n  }},\n  \"burst\": {{\n    \"requests_per_sec\": {:.1},\n    \"wall_s\": {:.3}\n  }},\n  \"statsz\": {}\n}}\n",
        WORKLOADS.len(),
        BASE_ACCESSES,
        BURST_CLIENTS,
        BURST_CLIENTS,
        burst_requests,
        cold,
        warm_memory,
        warm_store,
        cold / warm_store,
        throughput,
        burst_s,
        statsz.trim_end(),
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    print!("{json}");

    assert!(
        warm_store < cold,
        "a restarted daemon must serve warm rows faster than cold ones \
         (cold {cold:.1} ms, warm-store {warm_store:.1} ms)"
    );
}
