//! Loopback load measurements for the `nvm-llcd` evaluation service,
//! dumped to `BENCH_serve.json` at the repository root.
//!
//! The generator runs the daemon in-process on an ephemeral loopback
//! port and measures the three request regimes a deployment sees:
//!
//! * **cold** — first-ever `/row` for a workload: trace generation, one
//!   functional pass, eleven timing replays, store write-back;
//! * **warm (memory)** — the same daemon again: the coalescing map has
//!   moved on, but every cell hits the in-memory result slots rebuilt
//!   from the tape/result tiers;
//! * **warm (store)** — a restarted daemon on the same `--store-dir`:
//!   every cell is a disk hit, no simulation at all.
//!
//! A **transport** phase compares close-per-request against pipelined
//! keep-alive over `/healthz` — the two modes run *interleaved in the
//! same process on the same daemon*, so scheduler drift hits both
//! equally. A **burst** phase drives 16 concurrent clients over the
//! warm workloads. A **cluster** phase stands up a 3-shard
//! consistent-hash cluster plus a router on loopback and checks that
//! routed rows are byte-identical to a standalone daemon's.
//!
//! Acceptance bars: every response is 200, the warm-store mean beats
//! the cold mean (persistence must pay for itself), keep-alive beats
//! close-per-request by at least 2x (connection reuse must pay for
//! itself), and every routed row matches the standalone bytes.

use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use nvm_llc::serve::cluster::RouterConfig;
use nvm_llc::serve::{cluster, http, ServeConfig, Server};
use nvm_llc::sim::persist;

const BASE_ACCESSES: usize = 20_000;
const WORKLOADS: [&str; 4] = ["tonto", "x264", "milc", "leela"];
const BURST_CLIENTS: usize = 16;
const BURST_ROUNDS: usize = 8;

/// Transport comparison shape: `TRANSPORT_ROUNDS` interleaved
/// (close, keep-alive) pairs of `TRANSPORT_REQUESTS` each, keep-alive
/// pipelined `PIPELINE_DEPTH` requests ahead.
const TRANSPORT_ROUNDS: usize = 4;
const TRANSPORT_REQUESTS: usize = 200;
const PIPELINE_DEPTH: usize = 25;

/// Cluster phase: per-shard evaluation size, small enough that three
/// cold shard evaluations stay cheap.
const CLUSTER_ACCESSES: usize = 6_000;

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn timed_get(addr: SocketAddr, target: &str) -> f64 {
    let start = Instant::now();
    let (status, body) = http::get(addr, target).expect("loopback request");
    assert_eq!(status, 200, "{target}: {body}");
    start.elapsed().as_secs_f64() * 1e3
}

fn row_target(workload: &str) -> String {
    format!("/row?workload={workload}&accesses={BASE_ACCESSES}")
}

/// `TRANSPORT_REQUESTS` close-per-request `/healthz` round trips:
/// every request pays connect + request + response + teardown.
fn close_round(addr: SocketAddr) -> f64 {
    let start = Instant::now();
    for _ in 0..TRANSPORT_REQUESTS {
        let (status, _) = http::get(addr, "/healthz").expect("close-mode request");
        assert_eq!(status, 200);
    }
    start.elapsed().as_secs_f64()
}

/// `TRANSPORT_REQUESTS` `/healthz` round trips over one keep-alive
/// connection, pipelined `PIPELINE_DEPTH` at a time.
fn keepalive_round(addr: SocketAddr) -> f64 {
    let start = Instant::now();
    let mut conn = http::ClientConn::connect(addr).expect("keep-alive connect");
    let mut sent = 0;
    while sent < TRANSPORT_REQUESTS {
        let batch = PIPELINE_DEPTH.min(TRANSPORT_REQUESTS - sent);
        for _ in 0..batch {
            conn.send("/healthz", &[]).expect("pipeline send");
        }
        conn.flush().expect("pipeline flush");
        for _ in 0..batch {
            let response = conn.recv().expect("pipeline recv");
            assert_eq!(response.status, 200);
            assert!(!response.close, "server closed a keep-alive connection");
        }
        sent += batch;
    }
    start.elapsed().as_secs_f64()
}

/// Picks one `(workload, accesses)` row request owned by each shard, so
/// the cluster phase provably exercises every shard. The ring is
/// deterministic, so this search is too.
fn rows_covering_all_shards(shard_count: usize) -> Vec<(String, usize)> {
    let map = cluster::ShardMap::new(shard_count);
    let mut picks: Vec<Option<(String, usize)>> = vec![None; shard_count];
    for workload in WORKLOADS {
        for step in 0..shard_count {
            let accesses = CLUSTER_ACCESSES + step * 500;
            let key = persist::request_key(
                "fixed_capacity",
                workload,
                None,
                accesses,
                nvm_llc::sim::PolicyKind::Lru,
            );
            let owner = map.owner(&key);
            if picks[owner].is_none() {
                picks[owner] = Some((workload.to_owned(), accesses));
            }
        }
    }
    picks
        .into_iter()
        .map(|p| p.expect("a row owned by every shard"))
        .collect()
}

/// Reserves `n` distinct loopback ports: bind, record, drop. The gap
/// between drop and the shard's own bind is a benign race on loopback.
fn reserve_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr"))
        .collect()
}

struct ClusterReport {
    shard_requests: Vec<u64>,
    rows_checked: usize,
    router_row_ms: f64,
}

/// Stands up shards + router, routes one row per shard through the
/// router, and checks byte-identity against a standalone daemon.
fn cluster_phase(tmp: &std::path::Path, standalone: SocketAddr) -> ClusterReport {
    const SHARDS: usize = 3;
    let addrs = reserve_ports(SHARDS);
    let peers: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let shards: Vec<Server> = (0..SHARDS)
        .map(|id| {
            Server::start(ServeConfig {
                addr: peers[id].clone(),
                workers: 4,
                base_accesses: CLUSTER_ACCESSES,
                store_dir: Some(tmp.join(format!("shard-{id}"))),
                cluster: Some(cluster::ClusterConfig {
                    shard_id: id,
                    shard_count: SHARDS,
                    peers: peers.clone(),
                }),
                ..ServeConfig::default()
            })
            .expect("start shard")
        })
        .collect();
    let router = Server::start_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        peers: peers.clone(),
        ..RouterConfig::default()
    })
    .expect("start router");

    let rows = rows_covering_all_shards(SHARDS);
    let mut router_ms = Vec::new();
    for (workload, accesses) in &rows {
        let target = format!("/row?workload={workload}&accesses={accesses}");
        let start = Instant::now();
        let (status, via_router) = http::get(router.addr(), &target).expect("routed row");
        router_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "{target}: {via_router}");
        let (status, direct) = http::get(standalone, &target).expect("standalone row");
        assert_eq!(status, 200, "{target}: {direct}");
        assert_eq!(
            via_router, direct,
            "routed row must be byte-identical to the standalone daemon ({target})"
        );
    }

    // Every shard must have answered at least one routed request.
    let shard_requests: Vec<u64> = shards
        .iter()
        .map(|shard| {
            let (status, stats) = http::get(shard.addr(), "/statsz").expect("shard statsz");
            assert_eq!(status, 200);
            let field = stats
                .split("\"requests\":")
                .nth(1)
                .expect("requests field in shard statsz");
            let digits: String = field.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().expect("numeric requests field")
        })
        .collect();
    for (id, &served) in shard_requests.iter().enumerate() {
        // >= 2: the routed row plus this /statsz probe itself.
        assert!(served >= 2, "shard {id} served nothing: {shard_requests:?}");
    }

    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    ClusterReport {
        shard_requests,
        rows_checked: rows.len(),
        router_row_ms: mean(&router_ms),
    }
}

fn main() {
    let tmp = std::env::temp_dir().join(format!("nvm-llcd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let dir = tmp.join("standalone");
    let config = || ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: BURST_CLIENTS,
        max_evals: 4,
        base_accesses: BASE_ACCESSES,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // Cold and warm-memory regimes on the first daemon.
    let first = Server::start(config()).expect("start daemon");
    let addr = first.addr();
    let cold_ms: Vec<f64> = WORKLOADS
        .iter()
        .map(|w| timed_get(addr, &row_target(w)))
        .collect();
    let warm_memory_ms: Vec<f64> = WORKLOADS
        .iter()
        .map(|w| timed_get(addr, &row_target(w)))
        .collect();
    first.shutdown();

    // Warm-store regime: a restarted daemon, same directory.
    let second = Server::start(config()).expect("restart daemon");
    let addr = second.addr();
    let warm_store_ms: Vec<f64> = WORKLOADS
        .iter()
        .map(|w| timed_get(addr, &row_target(w)))
        .collect();

    // Transport comparison: strict alternation, so both modes sample
    // the same machine state.
    let mut close_s = 0.0;
    let mut keepalive_s = 0.0;
    for _ in 0..TRANSPORT_ROUNDS {
        close_s += close_round(addr);
        keepalive_s += keepalive_round(addr);
    }
    let transport_requests = (TRANSPORT_ROUNDS * TRANSPORT_REQUESTS) as f64;
    let rps_close = transport_requests / close_s;
    let rps_keepalive = transport_requests / keepalive_s;
    let speedup = rps_keepalive / rps_close;

    // Burst: concurrent clients cycling over the warm workloads.
    let barrier = Arc::new(Barrier::new(BURST_CLIENTS));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..BURST_CLIENTS {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..BURST_ROUNDS {
                    let workload = WORKLOADS[(client + round) % WORKLOADS.len()];
                    timed_get(addr, &row_target(workload));
                }
            });
        }
    });
    let burst_s = start.elapsed().as_secs_f64();
    let burst_requests = BURST_CLIENTS * BURST_ROUNDS;
    let throughput = burst_requests as f64 / burst_s;

    // Cluster: 3 shards + router, byte-compared against this daemon.
    let report = cluster_phase(&tmp, addr);

    let (status, statsz) = http::get(addr, "/statsz").expect("statsz");
    assert_eq!(status, 200);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&tmp);

    let cold = mean(&cold_ms);
    let warm_memory = mean(&warm_memory_ms);
    let warm_store = mean(&warm_store_ms);
    let shard_requests: Vec<String> = report.shard_requests.iter().map(u64::to_string).collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"config\": {{\n    \"workloads\": {},\n    \"base_accesses\": {},\n    \"workers\": {},\n    \"burst_clients\": {},\n    \"burst_requests\": {},\n    \"transport_requests_per_mode\": {},\n    \"pipeline_depth\": {}\n  }},\n  \"row_latency_ms\": {{\n    \"cold\": {:.3},\n    \"warm_memory\": {:.3},\n    \"warm_store\": {:.3},\n    \"cold_over_warm_store\": {:.2}\n  }},\n  \"transport\": {{\n    \"requests_per_sec_close\": {:.1},\n    \"requests_per_sec_keepalive\": {:.1},\n    \"keepalive_speedup\": {:.2}\n  }},\n  \"burst\": {{\n    \"requests_per_sec\": {:.1},\n    \"wall_s\": {:.3}\n  }},\n  \"cluster\": {{\n    \"shards\": {},\n    \"rows_checked\": {},\n    \"rows_byte_identical\": true,\n    \"router_row_ms\": {:.3},\n    \"shard_requests\": [{}]\n  }},\n  \"statsz\": {}\n}}\n",
        WORKLOADS.len(),
        BASE_ACCESSES,
        BURST_CLIENTS,
        BURST_CLIENTS,
        burst_requests,
        TRANSPORT_ROUNDS * TRANSPORT_REQUESTS,
        PIPELINE_DEPTH,
        cold,
        warm_memory,
        warm_store,
        cold / warm_store,
        rps_close,
        rps_keepalive,
        speedup,
        throughput,
        burst_s,
        report.shard_requests.len(),
        report.rows_checked,
        report.router_row_ms,
        shard_requests.join(", "),
        statsz.trim_end(),
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    print!("{json}");

    assert!(
        warm_store < cold,
        "a restarted daemon must serve warm rows faster than cold ones \
         (cold {cold:.1} ms, warm-store {warm_store:.1} ms)"
    );
    assert!(
        speedup >= 2.0,
        "keep-alive must at least double close-per-request throughput \
         (close {rps_close:.0} rps, keep-alive {rps_keepalive:.0} rps, {speedup:.2}x)"
    );
}
