//! Benchmark suite taxonomy (paper Section IV, Table V).

use std::fmt;
use std::str::FromStr;

/// The four benchmark suites the paper draws workloads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Suite {
    /// SPEC cpu2006 — single-threaded CS/scientific kernels.
    Cpu2006,
    /// PARSEC 3.0 — image/video processing, multi-threaded (vips) and
    /// single-threaded (x264 as configured by the paper).
    Parsec,
    /// NAS Parallel Benchmarks 3.3.1 — multi-threaded scientific kernels.
    Npb,
    /// SPEC cpu2017 — the AI inference workloads (deepsjeng, leela,
    /// exchange2).
    Cpu2017,
    /// Deep-learning extension suite in the spirit of Fathom/TBD — the
    /// benchmark families the paper names as the next step beyond the
    /// cpu2017 AI trio (Section IV: "more focused on deep learning
    /// tasks"). Not part of the paper's evaluation; used by the
    /// extension experiments.
    Fathom,
}

impl Suite {
    /// All suites: the paper's four plus the deep-learning extension.
    pub const ALL: [Suite; 5] = [
        Suite::Cpu2006,
        Suite::Parsec,
        Suite::Npb,
        Suite::Cpu2017,
        Suite::Fathom,
    ];

    /// The paper's original four suites (Table V).
    pub const PAPER: [Suite; 4] = [Suite::Cpu2006, Suite::Parsec, Suite::Npb, Suite::Cpu2017];

    /// Short display label matching Table V's suite column.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Cpu2006 => "cpu2006",
            Suite::Parsec => "PARSEC3.0",
            Suite::Npb => "NPB 3.3.1",
            Suite::Cpu2017 => "cpu2017",
            Suite::Fathom => "fathom-ext",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Suite {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cpu2006" => Ok(Suite::Cpu2006),
            "parsec" | "parsec3.0" => Ok(Suite::Parsec),
            "npb" | "npb 3.3.1" | "npb3.3.1" => Ok(Suite::Npb),
            "cpu2017" => Ok(Suite::Cpu2017),
            "fathom" | "fathom-ext" => Ok(Suite::Fathom),
            other => Err(format!("unknown suite `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for s in Suite::ALL {
            assert_eq!(s.label().parse::<Suite>().unwrap(), s);
        }
        assert!("spec95".parse::<Suite>().is_err());
    }
}
