//! A fast approximate Zipf/power-law sampler.
//!
//! Workload hot sets are modeled as Zipf-distributed block popularity:
//! rank *k* is accessed with probability ∝ `k^(-α)`. We sample with the
//! continuous inverse-CDF approximation, which is O(1) per draw and
//! needs no table — accurate enough for workload synthesis (the target
//! is an entropy/footprint *shape*, not an exact Zipf law).

use rand::Rng;

/// A Zipf-like sampler over ranks `0..n`.
///
/// # Examples
///
/// ```
/// use nvm_llc_trace::zipf::Zipf;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let zipf = Zipf::new(1000, 0.9);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    alpha: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with skew `alpha ≥ 0`
    /// (`alpha = 0` is uniform; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite — both are
    /// generator construction bugs.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "zipf alpha must be finite and non-negative"
        );
        Zipf { n, alpha }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws a rank in `0..n`, lower ranks more likely for `alpha > 0`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random::<f64>().max(1e-12);
        let n = self.n as f64;
        let x = if (self.alpha - 1.0).abs() < 1e-9 {
            // α = 1: inverse CDF of 1/x on [1, n+1] is exponential in u.
            (n + 1.0).powf(u)
        } else {
            let one_minus = 1.0 - self.alpha;
            // Continuous power-law inverse CDF on [1, n+1].
            (((n + 1.0).powf(one_minus) - 1.0) * u + 1.0).powf(1.0 / one_minus)
        };
        ((x.floor() as u64).saturating_sub(1)).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn histogram(zipf: Zipf, draws: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; zipf.n() as usize];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [1u64, 2, 7, 1000] {
            let z = Zipf::new(n, 0.8);
            for _ in 0..1000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let counts = histogram(Zipf::new(10, 0.0), 100_000);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.3, "{counts:?}");
    }

    #[test]
    fn high_alpha_concentrates_on_low_ranks() {
        let counts = histogram(Zipf::new(1000, 1.2), 100_000);
        let head: u64 = counts[..10].iter().sum();
        assert!(head as f64 > 0.5 * 100_000.0, "head got {head} of 100000");
        // Rank 0 must dominate rank 100.
        assert!(counts[0] > 10 * counts[100].max(1));
    }

    #[test]
    fn alpha_one_special_case_works() {
        let counts = histogram(Zipf::new(100, 1.0), 50_000);
        assert!(counts[0] > counts[50]);
        assert_eq!(counts.iter().sum::<u64>(), 50_000);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_panics() {
        let _ = Zipf::new(10, -1.0);
    }
}
