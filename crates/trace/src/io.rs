//! Binary trace serialization — bring-your-own-trace interoperability.
//!
//! The paper's pipeline consumes Pin-captured traces; this module defines
//! a compact binary container so externally captured traces (or expensive
//! generated ones) can be stored and replayed instead of regenerated:
//!
//! ```text
//! magic "NVMT" | version u16 | threads u8 | reserved u8 | count u64
//! then per event: tid u8 | kind u8 | gap u32 | addr u64   (14 bytes LE)
//! ```

use std::io::{self, Read, Write};

use crate::access::{AccessKind, Trace, TraceEvent};

/// File magic.
const MAGIC: &[u8; 4] = b"NVMT";
/// Current format version.
const VERSION: u16 = 1;
/// Bytes per serialized event.
const EVENT_BYTES: usize = 14;

/// Errors from trace deserialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// Malformed event payload.
    Corrupt(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceIoError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace to any [`Write`] sink (pass `&mut writer` to keep
/// ownership).
///
/// # Errors
///
/// Propagates I/O failures from the sink.
pub fn write_trace<W: Write>(mut sink: W, trace: &Trace) -> Result<(), TraceIoError> {
    sink.write_all(MAGIC)?;
    sink.write_all(&VERSION.to_le_bytes())?;
    sink.write_all(&[trace.threads(), 0])?;
    sink.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = [0u8; EVENT_BYTES];
    for event in trace {
        buf[0] = event.tid;
        buf[1] = match event.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        };
        buf[2..6].copy_from_slice(&event.gap_instructions.to_le_bytes());
        buf[6..14].copy_from_slice(&event.addr.to_le_bytes());
        sink.write_all(&buf)?;
    }
    sink.flush()?;
    Ok(())
}

/// Reads a trace from any [`Read`] source (pass `&mut reader` to keep
/// ownership).
///
/// # Errors
///
/// [`TraceIoError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut source: R) -> Result<Trace, TraceIoError> {
    let mut header = [0u8; 16];
    source.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let threads = header[6];
    if threads == 0 {
        return Err(TraceIoError::Corrupt("zero threads".into()));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));

    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut buf = [0u8; EVENT_BYTES];
    for i in 0..count {
        source
            .read_exact(&mut buf)
            .map_err(|e| TraceIoError::Corrupt(format!("event {i}: {e}")))?;
        let tid = buf[0];
        if tid >= threads {
            return Err(TraceIoError::Corrupt(format!(
                "event {i}: tid {tid} out of range"
            )));
        }
        let kind = match buf[1] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => {
                return Err(TraceIoError::Corrupt(format!(
                    "event {i}: unknown kind {other}"
                )))
            }
        };
        events.push(TraceEvent {
            tid,
            kind,
            gap_instructions: u32::from_le_bytes(buf[2..6].try_into().expect("4 bytes")),
            addr: u64::from_le_bytes(buf[6..14].try_into().expect("8 bytes")),
        });
    }
    Ok(Trace::new(events, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn round_trip(trace: &Trace) -> Trace {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, trace).expect("writes to memory");
        read_trace(bytes.as_slice()).expect("reads back")
    }

    #[test]
    fn generated_trace_round_trips() {
        let trace = workloads::by_name("ft").unwrap().generate(9, 2_000);
        let back = round_trip(&trace);
        assert_eq!(back.threads(), trace.threads());
        assert_eq!(back.events(), trace.events());
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new(vec![], 3);
        let back = round_trip(&trace);
        assert_eq!(back.threads(), 3);
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"JUNKxxxxxxxxxxxxxxxx"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &Trace::new(vec![], 1)).unwrap();
        bytes[4] = 99;
        assert!(matches!(
            read_trace(bytes.as_slice()),
            Err(TraceIoError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncated_payload_is_corrupt() {
        let trace = workloads::by_name("tonto").unwrap().generate(1, 10);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            read_trace(bytes.as_slice()),
            Err(TraceIoError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_tid_is_corrupt() {
        let trace = Trace::new(
            vec![TraceEvent {
                tid: 0,
                addr: 64,
                kind: AccessKind::Read,
                gap_instructions: 1,
            }],
            1,
        );
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        bytes[16] = 7; // corrupt the event's tid
        assert!(matches!(
            read_trace(bytes.as_slice()),
            Err(TraceIoError::Corrupt(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("nvm_llc_trace_io_test.nvmt");
        let trace = workloads::by_name("leela").unwrap().generate(4, 1_000);
        write_trace(std::fs::File::create(&path).unwrap(), &trace).unwrap();
        let back = read_trace(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back.events(), trace.events());
        let _ = std::fs::remove_file(&path);
    }
}
