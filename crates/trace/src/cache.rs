//! Process-wide trace cache: generate each synthetic trace exactly once.
//!
//! Every experiment in the repository replays traces keyed by
//! `(workload name, threads, seed, accesses per thread)` — fig1, fig4,
//! table5, and the selection study all regenerate identical traces from
//! scratch. This module memoizes generation behind [`Arc`] handles so a
//! repeated key costs a map lookup instead of a full generator run, and so
//! parallel evaluation workers share one immutable trace instead of
//! cloning events.
//!
//! Guarantees:
//!
//! * **Exactly-once generation.** Concurrent fetches of the same key race
//!   to install a slot, but only one caller runs the generator (the others
//!   block on the slot's [`OnceLock`]); every caller receives a
//!   pointer-equal `Arc<Trace>`.
//! * **Collision safety.** Two distinct profiles that happen to share a
//!   name and thread count (e.g. a weak-scaling copy with a larger
//!   footprint) never alias: the full profile is compared before a cached
//!   trace is reused.
//! * **Process lifetime.** Entries are never evicted; [`clear`] exists for
//!   benchmarks that need a cold cache. A full evaluation's working set is
//!   tens of traces, far below memory pressure.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::access::Trace;
use crate::profile::WorkloadProfile;

/// Cache key: the reproducibility tuple every experiment runner uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    threads: u8,
    seed: u64,
    accesses_per_thread: usize,
}

/// One key's entries: `(full profile, lazily generated trace)` pairs.
/// Almost always a single element; more only if differently-parameterized
/// profiles share a `(name, threads)` pair.
type Entries = Vec<(WorkloadProfile, Arc<OnceLock<Arc<Trace>>>)>;

fn cache() -> &'static Mutex<HashMap<Key, Entries>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Entries>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetches (generating at most once per process) the trace for
/// `profile.generate(seed, accesses_per_thread)`.
///
/// Repeated fetches of the same `(profile, seed, accesses_per_thread)`
/// return pointer-equal `Arc`s:
///
/// ```
/// use std::sync::Arc;
/// use nvm_llc_trace::{cache, workloads};
///
/// let w = workloads::by_name("tonto").unwrap();
/// let a = cache::fetch(&w, 7, 1_000);
/// let b = cache::fetch(&w, 7, 1_000);
/// assert!(Arc::ptr_eq(&a, &b));
/// assert_eq!(a.len(), 1_000);
/// ```
pub fn fetch(profile: &WorkloadProfile, seed: u64, accesses_per_thread: usize) -> Arc<Trace> {
    let key = Key {
        name: profile.name().to_owned(),
        threads: profile.threads(),
        seed,
        accesses_per_thread,
    };
    // Phase 1: find or install this profile's slot under the map lock.
    let slot = {
        let mut map = cache().lock().expect("trace cache lock");
        let entries = map.entry(key).or_default();
        match entries.iter().find(|(p, _)| p == profile) {
            Some((_, slot)) => Arc::clone(slot),
            None => {
                let slot = Arc::new(OnceLock::new());
                entries.push((profile.clone(), Arc::clone(&slot)));
                slot
            }
        }
    };
    // Phase 2: generate outside the map lock so distinct keys generate in
    // parallel; OnceLock serializes same-key racers onto one generation.
    let mut fresh = false;
    let trace = Arc::clone(slot.get_or_init(|| {
        fresh = true;
        let _span = nvm_llc_obs::span!("trace_generate");
        Arc::new(profile.generate(seed, accesses_per_thread))
    }));
    if fresh {
        metrics::misses().inc();
    } else {
        metrics::hits().inc();
    }
    trace
}

/// Process-wide counters for this cache, registered in the
/// [`nvm_llc_obs`] registry.
pub mod metrics {
    use nvm_llc_obs::metrics::{counter, Counter};

    /// `nvmllc_trace_cache_hits_total`
    pub fn hits() -> &'static Counter {
        counter(
            "nvmllc_trace_cache_hits_total",
            "Trace cache fetches served from an already generated trace.",
        )
    }

    /// `nvmllc_trace_cache_misses_total`
    pub fn misses() -> &'static Counter {
        counter(
            "nvmllc_trace_cache_misses_total",
            "Trace cache fetches that ran the workload generator.",
        )
    }

    /// Pre-registers this module's metrics so scrapes show zeros before
    /// the first fetch.
    pub fn register() {
        hits();
        misses();
        nvm_llc_obs::metrics::histogram(
            "nvmllc_trace_generate_seconds",
            "Wall time of the `trace_generate` span.",
        );
    }
}

/// Drops every cached trace (cold-cache benchmarking; in-flight `Arc`s
/// stay alive until their holders drop them).
pub fn clear() {
    cache().lock().expect("trace cache lock").clear();
}

/// Number of cached `(profile, seed, accesses)` slots.
pub fn len() -> usize {
    cache()
        .lock()
        .expect("trace cache lock")
        .values()
        .map(Vec::len)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Suite;

    fn profile(name: &str) -> WorkloadProfile {
        WorkloadProfile::builder(name, Suite::Npb)
            .footprint_blocks(4096)
            .build()
    }

    #[test]
    fn same_key_is_pointer_equal_and_matches_direct_generation() {
        let p = profile("cache-test-a");
        let a = fetch(&p, 11, 500);
        let b = fetch(&p, 11, 500);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.events(), p.generate(11, 500).events());
    }

    #[test]
    fn distinct_seeds_and_lengths_get_distinct_traces() {
        let p = profile("cache-test-b");
        let a = fetch(&p, 1, 400);
        let b = fetch(&p, 2, 400);
        let c = fetch(&p, 1, 401);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 401);
    }

    #[test]
    fn same_name_different_parameters_do_not_alias() {
        // Weak-scaling copies keep the workload name; the cache must still
        // tell them apart by the full profile.
        let small = profile("cache-test-c");
        let big = WorkloadProfile::builder("cache-test-c", Suite::Npb)
            .footprint_blocks(65_536)
            .build();
        let a = fetch(&small, 3, 300);
        let b = fetch(&big, 3, 300);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn concurrent_fetches_share_one_generation() {
        let p = profile("cache-test-d");
        let traces: Vec<Arc<Trace>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| fetch(&p, 5, 2_000)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
    }
}
