//! # nvm-llc-trace — memory traces and synthetic workloads
//!
//! The workload layer of the paper reproduction. The paper runs SPEC
//! cpu2006/cpu2017, PARSEC 3.0, and NPB 3.3.1 under Sniper; those binaries
//! and their Pin-captured traces are licensed artifacts, so this crate
//! substitutes seeded synthetic generators calibrated per-workload against
//! the paper's published characterization (Table V mpki, Table VI memory
//! features). See DESIGN.md §2 for the substitution argument.
//!
//! ```
//! use nvm_llc_trace::workloads;
//!
//! let deepsjeng = workloads::by_name("deepsjeng").expect("table 5 workload");
//! let trace = deepsjeng.generate(42, 10_000);
//! assert_eq!(trace.len(), 10_000);
//! assert!(trace.reads() > trace.writes()); // 68% reads
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod cache;
pub mod io;
pub mod profile;
pub mod suite;
pub mod workloads;
pub mod zipf;

pub use access::{AccessKind, Trace, TraceEvent, BLOCK_BYTES};
pub use profile::{WorkloadProfile, WorkloadProfileBuilder};
pub use suite::Suite;

#[cfg(test)]
mod proptests {
    use crate::profile::WorkloadProfile;
    use crate::suite::Suite;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any valid profile generates in-range, deterministic traces.
        #[test]
        fn generator_is_total_and_deterministic(
            footprint in 1024u64..1_000_000,
            rf in 0.05f64..0.95,
            hot in 0.001f64..0.9,
            hp in 0.0f64..1.0,
            alpha in 0.0f64..1.5,
            stream in 0.0f64..1.0,
            wfp in 0.01f64..1.0,
            threads in 1u8..5,
            seed in 0u64..1000,
        ) {
            let p = WorkloadProfile::builder("prop", Suite::Npb)
                .footprint_blocks(footprint)
                .read_fraction(rf)
                .hot_fraction(hot)
                .hot_probability(hp)
                .zipf_alpha(alpha)
                .stream_fraction(stream)
                .write_footprint_fraction(wfp)
                .threads(threads)
                .build();
            let a = p.generate(seed, 200);
            let b = p.generate(seed, 200);
            prop_assert_eq!(a.events(), b.events());
            prop_assert_eq!(a.len(), 200 * usize::from(threads));
            prop_assert_eq!(a.reads() + a.writes(), a.len() as u64);
            prop_assert!(a.total_instructions() >= a.len() as u64);
        }

        /// Zipf sampling never leaves its range for arbitrary parameters.
        #[test]
        fn zipf_in_range(n in 1u64..100_000, alpha in 0.0f64..3.0, seed in 0u64..100) {
            use rand::{rngs::SmallRng, SeedableRng};
            let z = crate::zipf::Zipf::new(n, alpha);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
