//! Memory access records and traces.
//!
//! A [`Trace`] is the interface between the workload layer and both the
//! system simulator (which replays it against a cache hierarchy) and the
//! PRISM-style characterization framework (which computes
//! architecture-agnostic features from it).

use std::fmt;

/// Cache block size assumed throughout the system (Table IV: 64 B blocks).
pub const BLOCK_BYTES: u64 = 64;

/// Monotone trace-identity source. Starts at 1 so the derived
/// `Trace::default()` (uid 0, no events) can never alias a built trace.
fn next_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
}

impl AccessKind {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Whether this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// One memory access plus the non-memory instructions that preceded it.
///
/// Packing the preceding instruction count into each event keeps traces
/// compact while giving the timing model everything it needs to charge
/// base CPI between memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issuing thread (0-based; threads map 1:1 onto cores, Table IV).
    pub tid: u8,
    /// Byte address of the access.
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Non-memory instructions executed by this thread since its previous
    /// memory access.
    pub gap_instructions: u32,
}

impl TraceEvent {
    /// The 64 B-block address of this access.
    pub fn block(&self) -> u64 {
        self.addr / BLOCK_BYTES
    }

    /// Instructions this event accounts for (the access itself plus the
    /// preceding gap).
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap_instructions) + 1
    }
}

/// An interleaved multi-thread memory trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    threads: u8,
    uid: u64,
    content_hash: u128,
}

/// 128-bit FNV-1a over every event field plus the thread count: a
/// process-independent identity for persistent (on-disk) memoization,
/// where [`Trace::uid`]'s process-local counter cannot be used.
fn content_hash(events: &[TraceEvent], threads: u8) -> u128 {
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58du128;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u128::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix(u64::from(threads));
    for e in events {
        mix(e.addr);
        mix(u64::from(e.tid)
            | (u64::from(e.kind.is_write()) << 8)
            | (u64::from(e.gap_instructions) << 9));
    }
    hash
}

impl Trace {
    /// Builds a trace from pre-interleaved events for `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if any event's `tid` is out of range — traces are built by
    /// generators, so a bad tid is a construction bug, not an input error.
    pub fn new(events: Vec<TraceEvent>, threads: u8) -> Self {
        assert!(threads > 0, "a trace needs at least one thread");
        assert!(
            events.iter().all(|e| e.tid < threads),
            "event tid out of range"
        );
        let content_hash = content_hash(&events, threads);
        Trace {
            events,
            threads,
            uid: next_uid(),
            content_hash,
        }
    }

    /// Process-unique identity of this trace object, assigned at
    /// construction and shared by clones (a clone has identical events).
    ///
    /// Downstream memoization (the simulator's outcome-tape cache) keys on
    /// this instead of hashing millions of events: traces obtained from
    /// [`crate::cache`] are themselves deduplicated, so equal-content
    /// traces normally share one uid via the same `Arc`.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Content-derived identity: a 128-bit digest of the thread count and
    /// every event, stable across processes and runs. Persistent caches
    /// (the simulator's on-disk result store) key on this; in-process
    /// memoization keeps using the cheaper [`Trace::uid`].
    pub fn content_hash(&self) -> u128 {
        self.content_hash
    }

    /// Number of threads.
    pub fn threads(&self) -> u8 {
        self.threads
    }

    /// All events in interleaved program order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of memory accesses.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Total instructions represented (memory + gap instructions).
    pub fn total_instructions(&self) -> u64 {
        self.events.iter().map(TraceEvent::instructions).sum()
    }

    /// Total reads.
    pub fn reads(&self) -> u64 {
        self.events.iter().filter(|e| e.kind.is_read()).count() as u64
    }

    /// Total writes.
    pub fn writes(&self) -> u64 {
        self.events.iter().filter(|e| e.kind.is_write()).count() as u64
    }

    /// Events of one thread, in order.
    pub fn thread_events(&self, tid: u8) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.tid == tid)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u8, addr: u64, kind: AccessKind, gap: u32) -> TraceEvent {
        TraceEvent {
            tid,
            addr,
            kind,
            gap_instructions: gap,
        }
    }

    #[test]
    fn block_addressing_uses_64_byte_lines() {
        assert_eq!(ev(0, 0, AccessKind::Read, 0).block(), 0);
        assert_eq!(ev(0, 63, AccessKind::Read, 0).block(), 0);
        assert_eq!(ev(0, 64, AccessKind::Read, 0).block(), 1);
    }

    #[test]
    fn counts_and_instructions() {
        let t = Trace::new(
            vec![
                ev(0, 0, AccessKind::Read, 3),
                ev(1, 64, AccessKind::Write, 1),
                ev(0, 128, AccessKind::Read, 0),
            ],
            2,
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
        assert_eq!(t.total_instructions(), 4 + 2 + 1);
        assert_eq!(t.thread_events(0).count(), 2);
        assert_eq!(t.threads(), 2);
    }

    #[test]
    #[should_panic(expected = "tid out of range")]
    fn rejects_out_of_range_tid() {
        let _ = Trace::new(vec![ev(3, 0, AccessKind::Read, 0)], 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let _ = Trace::new(vec![], 0);
    }

    #[test]
    fn uids_are_unique_per_construction_and_shared_by_clones() {
        let a = Trace::new(vec![ev(0, 0, AccessKind::Read, 0)], 1);
        let b = Trace::new(vec![ev(0, 0, AccessKind::Read, 0)], 1);
        assert_ne!(a.uid(), b.uid(), "distinct constructions, distinct uids");
        assert_eq!(a.uid(), a.clone().uid(), "a clone has identical events");
        assert_ne!(a.uid(), 0, "built traces never collide with default()");
        assert_eq!(Trace::default().uid(), 0);
    }

    #[test]
    fn content_hash_follows_content_not_identity() {
        let a = Trace::new(vec![ev(0, 64, AccessKind::Read, 3)], 1);
        let b = Trace::new(vec![ev(0, 64, AccessKind::Read, 3)], 1);
        // Same events: same content hash despite distinct uids.
        assert_ne!(a.uid(), b.uid());
        assert_eq!(a.content_hash(), b.content_hash());
        // Any field change moves the hash.
        let addr = Trace::new(vec![ev(0, 128, AccessKind::Read, 3)], 1);
        let kind = Trace::new(vec![ev(0, 64, AccessKind::Write, 3)], 1);
        let gap = Trace::new(vec![ev(0, 64, AccessKind::Read, 4)], 1);
        let threads = Trace::new(vec![ev(0, 64, AccessKind::Read, 3)], 2);
        for other in [&addr, &kind, &gap, &threads] {
            assert_ne!(a.content_hash(), other.content_hash());
        }
        // And the empty default is distinct from any built trace.
        assert_ne!(a.content_hash(), Trace::default().content_hash());
    }

    #[test]
    fn iterates_by_reference() {
        let t = Trace::new(vec![ev(0, 0, AccessKind::Read, 0)], 1);
        let mut n = 0;
        for e in &t {
            assert_eq!(e.addr, 0);
            n += 1;
        }
        assert_eq!(n, 1);
    }
}
